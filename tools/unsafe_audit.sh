#!/usr/bin/env bash
# Audits the workspace's unsafe-code policy:
#
#   1. `unsafe` appears ONLY in crates/par — every other crate carries
#      `#![forbid(unsafe_code)]` in its lib root (also checked here), so
#      a violation elsewhere would already fail the build; this script
#      makes the policy reviewable and catches a dropped forbid attr.
#   2. crates/par opts into `#![deny(unsafe_op_in_unsafe_fn)]` and every
#      line containing `unsafe` is preceded (within 8 lines) by a
#      `SAFETY:` comment or a `# Safety` doc section explaining why the
#      invariants hold.
#
#   tools/unsafe_audit.sh      exits non-zero with a report on violation
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# -- 1a. No `unsafe` token outside crates/par. -------------------------
# The forbid attribute itself mentions `unsafe_code`; exclude attr lines.
if grep -rn --include='*.rs' -w 'unsafe' crates tests/src \
  | grep -v '^crates/par/' \
  | grep -v 'forbid(unsafe_code)' \
  | grep -v '^[^:]*:[0-9]*:[[:space:]]*//'; then
  echo "unsafe_audit: \`unsafe\` found outside crates/par (above)" >&2
  fail=1
fi

# -- 1b. Every non-par lib root forbids unsafe code. -------------------
for lib in crates/*/src/lib.rs tests/src/lib.rs; do
  [[ "$lib" == crates/par/* ]] && continue
  if ! grep -q '^#!\[forbid(unsafe_code)\]' "$lib"; then
    echo "unsafe_audit: $lib is missing #![forbid(unsafe_code)]" >&2
    fail=1
  fi
done

# -- 2a. crates/par denies implicit unsafe inside unsafe fn. -----------
if ! grep -q '^#!\[deny(unsafe_op_in_unsafe_fn)\]' crates/par/src/lib.rs; then
  echo "unsafe_audit: crates/par/src/lib.rs missing #![deny(unsafe_op_in_unsafe_fn)]" >&2
  fail=1
fi

# -- 2b. Every unsafe site in crates/par has a nearby SAFETY comment. --
# awk keeps a sliding window: a line whose code (not comment) part
# mentions `unsafe` must have seen "SAFETY" or "# Safety" in the
# previous 8 lines.
while IFS= read -r src; do
  if ! awk -v src="$src" '
    { hist[NR % 9] = $0 }
    /SAFETY|# Safety/ { last_safety = NR }
    {
      line = $0
      sub(/\/\/.*/, "", line)          # ignore comment text itself
      if (line ~ /(^|[^[:alnum:]_])unsafe([^[:alnum:]_]|$)/ \
          && $0 !~ /deny\(unsafe_op_in_unsafe_fn\)/) {
        if (last_safety == 0 || NR - last_safety > 8) {
          printf "unsafe_audit: %s:%d: unsafe without a SAFETY comment within 8 lines\n", src, NR
          bad = 1
        }
      }
    }
    END { exit bad }
  ' "$src"; then
    fail=1
  fi
done < <(grep -rl --include='*.rs' -w 'unsafe' crates/par/src || true)

if [[ "$fail" -ne 0 ]]; then
  echo "unsafe_audit: FAILED" >&2
  exit 1
fi
echo "unsafe_audit: OK"
