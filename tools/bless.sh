#!/usr/bin/env bash
# One documented command for every re-bless in the repository, replacing
# the scattered `VT_BLESS=1 cargo test ...` invocations:
#
#   tools/bless.sh            re-bless all golden snapshots + tools/api.txt
#   tools/bless.sh --golden   golden snapshots only (tests/golden/*.json)
#   tools/bless.sh --api      public API surface only (tools/api.txt)
#   tools/bless.sh --bench    re-record the perf baseline (BENCH_0.json);
#                             NOT part of the default: it moves the
#                             regression gate, so only run it on the
#                             reference machine after reviewing the drift
#
# Golden snapshots covered (each test re-writes its own files under
# VT_BLESS=1, then the suite is re-run without it to prove the blessed
# files verify):
#
#   golden        tests/golden/<kernel>.<arch>.json   full run stats
#   metrics       tests/golden/*.prom                 Prometheus exposition
#   model_golden  tests/golden/model.json             static model output
#   cpi           tests/golden/cpi.<kernel>.json      CPI stacks
#   hotspots      tests/golden/hotspots.<kernel>.json per-PC profiles
#
# Review the resulting diff before committing: a bless is an assertion
# that the new numbers are *correct*, not just current.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_TESTS=(golden metrics model_golden cpi hotspots)

do_golden=0
do_api=0
do_bench=0
case "${1:-}" in
"") do_golden=1 do_api=1 ;;
--golden) do_golden=1 ;;
--api) do_api=1 ;;
--bench) do_bench=1 ;;
-h | --help)
  sed -n '2,/^set -euo/p' "$0" | head -n -1 | sed 's/^# \{0,1\}//'
  exit 0
  ;;
*)
  echo "bless.sh: unknown argument \`$1\` (try --help)" >&2
  exit 2
  ;;
esac

if [[ $do_golden == 1 ]]; then
  for t in "${GOLDEN_TESTS[@]}"; do
    echo "== bless: $t"
    VT_BLESS=1 cargo test -q -p vt-tests --test "$t" >/dev/null
  done
  echo "== verify: blessed goldens pass without VT_BLESS"
  for t in "${GOLDEN_TESTS[@]}"; do
    cargo test -q -p vt-tests --test "$t" >/dev/null
  done
  echo "bless: goldens OK ($(git status --porcelain tests/golden | wc -l) file(s) changed)"
fi

if [[ $do_api == 1 ]]; then
  echo "== bless: public API surface"
  tools/api_surface.sh --bless
fi

if [[ $do_bench == 1 ]]; then
  echo "== bless: perf baseline (release build, full suite)"
  cargo run -q --release -p vt-bench --bin vtbench -- --out BENCH_0.json >/dev/null
  echo "bless: BENCH_0.json re-recorded; the perf-regression gate now"
  echo "       measures against this machine's numbers"
fi
