#!/usr/bin/env python3
"""Regenerates the committed trace corpus under traces/.

Deterministic (no randomness beyond a fixed LCG seed), stdlib-only.
Run from the repo root:

    python3 tools/gen_traces.py

Valid traces exercise the full record grammar: coalesced and scattered
global accesses, shared-memory traffic, partial last warps, divergent
masks, barriers, atomics, and ragged (prefix) stream lengths across
thread blocks. Corrupt traces under traces/corrupt/ each exhibit exactly
one defect and must all be rejected by `vttrace --check` (exit 1) — the
fuzz suite in tests/tests/traces.rs and lint.sh both depend on that.
"""

import os

ROOT = os.path.join(os.path.dirname(__file__), "..", "traces")


class Lcg:
    """Tiny deterministic generator (same constants as vt-prng's seed mix)."""

    def __init__(self, seed):
        self.s = seed & 0xFFFFFFFF

    def next(self):
        self.s = (self.s * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.s


def header(name, grid, block, shmem, nregs):
    return (
        f"-kernel name = {name}\n"
        f"-grid dim = ({grid},1,1)\n"
        f"-block dim = ({block},1,1)\n"
        f"-shmem = {shmem}\n"
        f"-nregs = {nregs}\n\n"
    )


def rec(pc, mask, cls, addrs=None):
    line = f"{pc:04x} {mask:08x} {cls}"
    if addrs is not None:
        line += " 4 " + " ".join(f"0x{a:x}" for a in addrs)
    return line + "\n"


def lanes(mask):
    return [l for l in range(32) if mask >> l & 1]


def warp_block(warp, records):
    return f"warp = {warp}\ninsts = {len(records)}\n" + "".join(records)


def tb(n, *warps):
    return "#BEGIN_TB\nthread block = " + str(n) + "\n" + "".join(warps) + "#END_TB\n"


def full(nlanes=32):
    return 0xFFFFFFFF if nlanes >= 32 else (1 << nlanes) - 1


def vecadd():
    """Straight-line, fully coalesced: c[i] = a[i] + b[i], 2 TBs x 2 warps."""
    out = header("vecadd", 2, 64, 0, 16)
    for t in range(2):
        warps = []
        for w in range(2):
            gid0 = (t * 64 + w * 32) * 4
            m = full()
            warps.append(
                warp_block(
                    w,
                    [
                        rec(0x00, m, "ALU"),
                        rec(0x08, m, "LDG", [0x1000 + gid0 + 4 * l for l in lanes(m)]),
                        rec(0x10, m, "LDG", [0x2000 + gid0 + 4 * l for l in lanes(m)]),
                        rec(0x18, m, "MAD"),
                        rec(0x20, m, "STG", [0x3000 + gid0 + 4 * l for l in lanes(m)]),
                        rec(0x28, m, "EXIT"),
                    ],
                )
            )
        out += tb(t, *warps)
    return out


def divergent():
    """Divergence, shared memory, barrier, atomics, and a partial last
    warp (block of 48 threads -> warp 1 has 16 lanes)."""
    r = Lcg(0x5EED)
    out = header("divergent", 1, 48, 256, 24)
    warps = []
    for w, nl in ((0, 32), (1, 16)):
        m = full(nl)
        odd = m & 0xAAAAAAAA
        gather = [0x4000 + (r.next() % 512) * 4 for _ in lanes(m)]
        # Warp-disjoint shared addresses: replay stays race-free, so the
        # functional image is identical across architectures.
        smem = [(128 * w + 4 * l) % 256 for l in lanes(odd)]
        warps.append(
            warp_block(
                w,
                [
                    rec(0x00, m, "ALU"),
                    rec(0x08, m, "LDG", gather),
                    rec(0x10, odd, "STS", smem),
                    rec(0x18, m, "BAR"),
                    rec(0x20, odd, "LDS", smem),
                    rec(0x28, m, "SFU"),
                    rec(0x30, m, "ATOM", [0x8000 for _ in lanes(m)]),
                    rec(0x38, m, "EXIT"),
                ],
            )
        )
    return out + tb(0, *warps)


def multiblock():
    """4 single-warp TBs with ragged (prefix) stream lengths: slot
    unification must pad the short streams with zero masks."""
    seq = ["ALU", "LDG", "MAD", "STG", "ALU", "SFU"]
    out = header("multiblock", 4, 32, 0, 12)
    m = full()
    for t in range(4):
        n = len(seq) - t  # 6, 5, 4, 3 records
        records = []
        for s, cls in enumerate(seq[:n]):
            addrs = None
            if cls == "LDG":
                addrs = [0x100 * (t + 1) + 4 * l for l in lanes(m)]
            elif cls == "STG":
                addrs = [0x4000 + 0x80 * t + 4 * l for l in lanes(m)]
            records.append(rec(8 * s, m, cls, addrs))
        records.append(rec(8 * n, m, "EXIT"))
        out += tb(t, warp_block(0, records))
    return out


def corrupt(valid):
    """One file per defect class; each must be rejected, never panic."""
    cut = valid.find("0x2000")
    files = {
        # parse-time rejections
        "truncated.trace": valid[:cut],
        "garbage.trace": "\x00\x01\x7f\xc3\x28 not a trace \x02\n\xff" * 4,
        "missing_header.trace": valid.replace("-nregs = 16\n", ""),
        "badclass.trace": valid.replace(" MAD\n", " FROB\n", 1),
        "badmask.trace": divergent().replace("0000ffff ALU", "00ffffff ALU", 1),
        "dupwarp.trace": valid.replace("warp = 1\n", "warp = 0\n", 1),
        "dupblock.trace": valid.replace("thread block = 1\n", "thread block = 0\n"),
        "badcount.trace": valid.replace("insts = 6\n", "insts = 9\n", 1),
        "misaligned.trace": valid.replace("0x1000 ", "0x1001 ", 1),
        "smem_oob.trace": divergent().replace("LDS 4 0x4", "LDS 4 0x100", 1),
        "addrcount.trace": valid.replace("0x1000 ", "", 1),
        "after_exit.trace": valid.replace(
            "insts = 6\n0000 ffffffff ALU\n",
            "insts = 7\n0000 ffffffff ALU\n",
            1,
        ).replace("0028 ffffffff EXIT\n", "0028 ffffffff EXIT\n0030 ffffffff ALU\n", 1),
        # lower-time rejections (parse cleanly, cannot be unified/replayed)
        "slot_mismatch.trace": valid.replace("0018 ffffffff MAD", "0018 ffffffff SFU", 1),
        "barmask.trace": divergent().replace("ffffffff BAR", "0000ffff BAR", 1),
        "hugespan.trace": valid.replace("0x3000 ", "0x40003000 ", 1),
    }
    return files


def main():
    os.makedirs(os.path.join(ROOT, "corrupt"), exist_ok=True)
    valid = {
        "vecadd.trace": vecadd(),
        "divergent.trace": divergent(),
        "multiblock.trace": multiblock(),
    }
    for name, text in valid.items():
        with open(os.path.join(ROOT, name), "w") as f:
            f.write(text)
    for name, text in corrupt(valid["vecadd.trace"]).items():
        with open(os.path.join(ROOT, "corrupt", name), "w") as f:
            f.write(text)
    # Invalid UTF-8: must surface as an I/O-level rejection, not a panic.
    with open(os.path.join(ROOT, "corrupt", "binary.trace"), "wb") as f:
        f.write(bytes([0xFF, 0xFE, 0x00, 0x9D, 0x80] * 13))
    print(f"wrote {len(valid)} valid + {len(corrupt(valid['vecadd.trace']))} corrupt traces")


if __name__ == "__main__":
    main()
