#!/usr/bin/env bash
# Dumps the workspace's public API surface: the declaration line of
# every `pub` item in the library crates, with location stripped down to
# the file, sorted for stable diffs. `lint.sh` compares the output with
# the committed tools/api.txt so every public-API change is a reviewed,
# committed artifact.
#
#   tools/api_surface.sh           print the current surface
#   tools/api_surface.sh --bless   rewrite tools/api.txt from the source
#
# `pub(crate)`/`pub(super)` items are deliberately excluded (not public
# API), and only the first line of a declaration is captured — enough to
# catch added/removed/renamed items and most signature changes.
set -euo pipefail
cd "$(dirname "$0")/.."

dump() {
  grep -rn --include='*.rs' -E \
    '^[[:space:]]*pub( unsafe)?( async)? (fn|struct|enum|union|trait|type|const|static|mod|use)\b' \
    crates/*/src \
    | sed -E 's|^([^:]+):[0-9]+:[[:space:]]*|\1: |; s/[[:space:]]+\{?[[:space:]]*$//' \
    | LC_ALL=C sort
}

if [[ "${1:-}" == "--bless" ]]; then
  dump > tools/api.txt
  echo "api_surface: blessed $(wc -l < tools/api.txt) public items into tools/api.txt"
else
  dump
fi
