//! Lowering: a validated [`Trace`] to an executable [`Kernel`].
//!
//! ## Scheme
//!
//! All warp record streams are unified into a single sequence of
//! lock-step *slots*: slot `s` is the `s`-th (non-`EXIT`) record of
//! every warp. Every warp that has a record at slot `s` must agree on
//! its opcode class ([`TraceError::SlotMismatch`] otherwise), so one
//! shared replay program can be generated; warps whose stream is
//! shorter (or absent from the trace) replay the remaining slots with
//! an all-zero mask.
//!
//! The recorded behaviour is *data*, not code:
//!
//! * a **mask table** (`[slot][warp] → u32` in the kernel's global
//!   image) holds each warp's recorded active mask per slot; each lane
//!   predicates the slot body on its own bit. Slots where every warp is
//!   fully active skip the table read and the predication entirely.
//! * an **address table** per memory slot (`[warp*32+lane] → u32`)
//!   holds each lane's recorded byte address. Global addresses are
//!   rebased: the trace's global footprint `[min, max]` (capped at
//!   [`MAX_HEAP_BYTES`]) becomes a zeroed replay heap, preserving the
//!   exact intra-warp coalescing/divergence pattern of the recording.
//!   Shared addresses are used verbatim (parse already bounds them).
//!
//! Slot bodies re-create the recorded pipeline demand: `ALU`/`MAD`
//! fold into a running accumulator, `SFU` routes through the SFU
//! pipeline, loads feed the accumulator, stores/atomics write it out,
//! `BAR` replays as an unpredicated CTA barrier (every warp executes
//! the shared program, so no barrier can deadlock — parse and
//! [`TraceError::BarrierMask`] enforce recorded CTA uniformity). An
//! epilogue stores each thread's accumulator to a per-thread output
//! word, giving goldens a functional fingerprint of the whole replay.
//!
//! The replay adds deterministic *table-read* traffic that the original
//! GPU did not execute; it is the price of data-driven replay and is
//! identical across architectures, so differential comparisons remain
//! meaningful (see DESIGN.md §16).

use crate::error::TraceError;
use crate::parse::{OpClass, Trace};
use vt_isa::{AtomOp, Kernel, KernelBuilder, Operand, Reg, SfuOp, Sreg, WARP_SIZE};

/// Hard ceiling on unified replay slots per trace.
pub const MAX_SLOTS: usize = 4096;
/// Hard ceiling on the rebased global footprint a trace may touch.
pub const MAX_HEAP_BYTES: u64 = 16 * 1024 * 1024;
/// Hard ceiling on replay-table words (mask table and address tables
/// each), bounding the lowered kernel's global image.
pub const MAX_TABLE_WORDS: usize = 4 * 1024 * 1024;

/// Per-slot unification result.
struct Slot {
    class: OpClass,
    /// Recorded mask per global warp index (`tb * warps_per_cta + warp`);
    /// zero for absent/finished warps.
    masks: Vec<u32>,
    /// True when every warp of every block is fully active at this slot,
    /// so predication (and the mask-table read) can be skipped.
    uniform: bool,
}

impl Trace {
    /// Lowers the trace to an executable kernel with the recorded launch
    /// geometry, register and shared-memory footprint.
    ///
    /// # Errors
    ///
    /// [`TraceError::SlotMismatch`], [`TraceError::BarrierMask`],
    /// [`TraceError::AddressRange`] or [`TraceError::TooLong`] when the
    /// streams cannot be unified into a bounded replay program; never
    /// panics.
    pub fn lower(&self) -> Result<Kernel, TraceError> {
        let w_per_cta = self.warps_per_cta() as usize;
        let total_warps = self.grid as usize * w_per_cta;
        let slots = self.unify_slots(w_per_cta, total_warps)?;

        // --- global footprint ------------------------------------------------
        let mut gmin = u64::MAX;
        let mut gmax = 0u64;
        for b in &self.blocks {
            for w in &b.warps {
                for i in &w.insts {
                    if i.class.is_global_mem() {
                        for &a in &i.addrs {
                            gmin = gmin.min(a);
                            gmax = gmax.max(a + 4);
                        }
                    }
                }
            }
        }
        let heap_span = if gmin == u64::MAX { 0 } else { gmax - gmin };
        if heap_span > MAX_HEAP_BYTES {
            return Err(TraceError::AddressRange {
                msg: format!("footprint {heap_span} bytes exceeds {MAX_HEAP_BYTES}"),
            });
        }

        let mask_words = slots.len() * total_warps;
        let mem_slots = slots.iter().filter(|s| s.class.has_addresses()).count();
        let addr_words = mem_slots * total_warps * WARP_SIZE as usize;
        if mask_words > MAX_TABLE_WORDS || addr_words > MAX_TABLE_WORDS {
            return Err(TraceError::TooLong {
                msg: format!(
                    "replay tables need {mask_words}+{addr_words} words (cap {MAX_TABLE_WORDS})"
                ),
            });
        }

        // --- data layout -----------------------------------------------------
        let mut b = KernelBuilder::new(self.name.clone());
        let heap_base = b.alloc_global((heap_span / 4) as usize);
        let mask_base = b.alloc_global_init(&self.mask_table(&slots, total_warps));
        let mut addr_bases = vec![0u32; slots.len()];
        for (s, slot) in slots.iter().enumerate() {
            if slot.class.has_addresses() {
                let table = self.addr_table(s, slot, total_warps, w_per_cta, heap_base, gmin)?;
                addr_bases[s] = b.alloc_global_init(&table);
            }
        }
        let out_base = b.alloc_global(self.grid as usize * self.block as usize);

        // --- codegen ---------------------------------------------------------
        let wg = b.reg(); // global warp index
        let wgoff = b.reg(); // wg * 4, mask-table row offset
        let gloff = b.reg(); // (wg*32 + lane) * 4, addr-table row offset
        let acc = b.reg(); // running accumulator
        let tmp = b.reg();
        let p = b.reg(); // per-lane predicate
        let addr = b.reg(); // replayed byte address
        let maskr = b.reg(); // this warp's recorded mask
        b.mad(
            wg,
            Operand::Sreg(Sreg::CtaId),
            Operand::Imm(w_per_cta as u32),
            Operand::Sreg(Sreg::WarpId),
        );
        b.shl(wgoff, Operand::Reg(wg), Operand::Imm(2));
        b.shl(gloff, Operand::Reg(wg), Operand::Imm(5));
        b.add(gloff, Operand::Reg(gloff), Operand::Sreg(Sreg::Lane));
        b.shl(gloff, Operand::Reg(gloff), Operand::Imm(2));
        b.mov(acc, Operand::Imm(1));

        for (s, slot) in slots.iter().enumerate() {
            if slot.class == OpClass::Bar {
                b.bar();
                continue;
            }
            let body = |b: &mut KernelBuilder| {
                emit_slot_body(b, slot.class, s, addr_bases[s], gloff, acc, tmp, addr);
            };
            if slot.uniform {
                body(&mut b);
            } else {
                let row = mask_base + (s * total_warps * 4) as u32;
                b.ld_global(maskr, Operand::Reg(wgoff), row as i32);
                b.shr(p, Operand::Reg(maskr), Operand::Sreg(Sreg::Lane));
                b.and_(p, Operand::Reg(p), Operand::Imm(1));
                b.if_(Operand::Reg(p), body);
            }
        }

        // Epilogue: out[gid] = acc, a functional fingerprint per thread.
        b.global_thread_id(tmp);
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out_base as i32, Operand::Reg(acc));

        b.pad_regs(self.nregs as u16);
        b.pad_smem(self.shmem_bytes);
        b.build(self.grid, self.block)
            .map_err(|e| TraceError::Isa { msg: e.to_string() })
    }

    /// Unifies all warp streams into lock-step slots, checking class
    /// agreement and barrier uniformity.
    fn unify_slots(&self, w_per_cta: usize, total_warps: usize) -> Result<Vec<Slot>, TraceError> {
        let n_slots = self
            .blocks
            .iter()
            .flat_map(|b| &b.warps)
            .map(|w| w.insts.len())
            .max()
            .unwrap_or(0);
        if n_slots > MAX_SLOTS {
            return Err(TraceError::TooLong {
                msg: format!("{n_slots} replay slots (cap {MAX_SLOTS})"),
            });
        }
        let mut slots = Vec::with_capacity(n_slots);
        for s in 0..n_slots {
            let mut class: Option<OpClass> = None;
            let mut masks = vec![0u32; total_warps];
            let mut uniform = true;
            for blk in &self.blocks {
                let mut present = vec![false; w_per_cta];
                for w in &blk.warps {
                    let Some(inst) = w.insts.get(s) else {
                        continue;
                    };
                    present[w.warp as usize] = true;
                    match class {
                        None => class = Some(inst.class),
                        Some(c) if c == inst.class => {}
                        Some(c) => {
                            return Err(TraceError::SlotMismatch {
                                slot: s,
                                msg: format!(
                                    "{} (tb {}, warp {}, line {}) vs {}",
                                    inst.class.mnemonic(),
                                    blk.tb,
                                    w.warp,
                                    inst.line,
                                    c.mnemonic()
                                ),
                            });
                        }
                    }
                    let full = self.lane_mask(w.warp);
                    if inst.class == OpClass::Bar && inst.mask != full {
                        return Err(TraceError::BarrierMask {
                            slot: s,
                            tb: blk.tb,
                        });
                    }
                    if inst.mask != full {
                        uniform = false;
                    }
                    masks[blk.tb as usize * w_per_cta + w.warp as usize] = inst.mask;
                }
                if present.iter().any(|&x| !x) {
                    uniform = false;
                }
            }
            let class = class.expect("slot index below max stream length");
            slots.push(Slot {
                class,
                masks,
                uniform,
            });
        }
        Ok(slots)
    }

    /// Slot-major mask table: `words[s * total_warps + wg]`.
    fn mask_table(&self, slots: &[Slot], total_warps: usize) -> Vec<u32> {
        let mut words = vec![0u32; slots.len() * total_warps];
        for (s, slot) in slots.iter().enumerate() {
            words[s * total_warps..(s + 1) * total_warps].copy_from_slice(&slot.masks);
        }
        words
    }

    /// Per-lane address table for memory slot `s`: `words[wg * 32 + lane]`.
    /// Global addresses are rebased onto the replay heap; recorded
    /// addresses map to lanes in ascending set-bit order of the mask.
    fn addr_table(
        &self,
        s: usize,
        slot: &Slot,
        total_warps: usize,
        w_per_cta: usize,
        heap_base: u32,
        gmin: u64,
    ) -> Result<Vec<u32>, TraceError> {
        let mut words = vec![0u32; total_warps * WARP_SIZE as usize];
        for blk in &self.blocks {
            for w in &blk.warps {
                let Some(inst) = w.insts.get(s) else {
                    continue;
                };
                let wg = blk.tb as usize * w_per_cta + w.warp as usize;
                let mut ai = 0usize;
                for lane in 0..WARP_SIZE {
                    if inst.mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = inst.addrs[ai];
                    ai += 1;
                    let replay = if slot.class.is_global_mem() {
                        u64::from(heap_base) + (a - gmin)
                    } else {
                        a
                    };
                    let replay = u32::try_from(replay).map_err(|_| TraceError::AddressRange {
                        msg: format!("rebased address {replay:#x} exceeds 32 bits"),
                    })?;
                    words[wg * WARP_SIZE as usize + lane as usize] = replay;
                }
            }
        }
        Ok(words)
    }
}

/// Emits the replay body for one (non-barrier) slot. `s` varies the
/// immediates so different slots fold distinguishable values into the
/// accumulator.
#[allow(clippy::too_many_arguments)]
fn emit_slot_body(
    b: &mut KernelBuilder,
    class: OpClass,
    s: usize,
    addr_base: u32,
    gloff: Reg,
    acc: Reg,
    tmp: Reg,
    addr: Reg,
) {
    let v = (s as u32) & 0xffff;
    match class {
        OpClass::Alu => {
            b.mad(acc, Operand::Reg(acc), Operand::Imm(3), Operand::Imm(v + 1));
        }
        OpClass::Mad => {
            b.mad(acc, Operand::Reg(acc), Operand::Imm(5), Operand::Imm(v + 3));
        }
        OpClass::Sfu => {
            b.and_(tmp, Operand::Reg(acc), Operand::Imm(0xff));
            b.u2f(tmp, Operand::Reg(tmp));
            b.sfu(SfuOp::Rcp, tmp, Operand::Reg(tmp));
            b.f2u(tmp, Operand::Reg(tmp));
            b.add(acc, Operand::Reg(acc), Operand::Reg(tmp));
        }
        OpClass::Ldg => {
            b.ld_global(addr, Operand::Reg(gloff), addr_base as i32);
            b.ld_global(tmp, Operand::Reg(addr), 0);
            b.add(acc, Operand::Reg(acc), Operand::Reg(tmp));
        }
        OpClass::Stg => {
            b.ld_global(addr, Operand::Reg(gloff), addr_base as i32);
            b.st_global(Operand::Reg(addr), 0, Operand::Reg(acc));
        }
        OpClass::Lds => {
            b.ld_global(addr, Operand::Reg(gloff), addr_base as i32);
            b.ld_shared(tmp, Operand::Reg(addr), 0);
            b.add(acc, Operand::Reg(acc), Operand::Reg(tmp));
        }
        OpClass::Sts => {
            b.ld_global(addr, Operand::Reg(gloff), addr_base as i32);
            b.st_shared(Operand::Reg(addr), 0, Operand::Reg(acc));
        }
        OpClass::Atom => {
            b.ld_global(addr, Operand::Reg(gloff), addr_base as i32);
            b.atom(AtomOp::Add, None, Operand::Reg(addr), 0, Operand::Imm(1));
        }
        OpClass::Bar | OpClass::Exit => unreachable!("handled by caller / stripped at parse"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;
    use vt_isa::interp::Interpreter;

    fn mem_record(class: &str, pc: u32, mask: u32, base: u64, stride: u64) -> String {
        let addrs: Vec<String> = (0..32)
            .filter(|l| mask & (1 << l) != 0)
            .map(|l| format!("{:#x}", base + l as u64 * stride))
            .collect();
        format!("{pc:04x} {mask:08x} {class} 4 {}", addrs.join(" "))
    }

    fn two_warp_trace() -> String {
        let mut t = String::from(
            "-kernel name = lower-t\n-grid dim = (2,1,1)\n-block dim = (64,1,1)\n\
             -shmem = 256\n-nregs = 20\n",
        );
        for tb in 0u64..2 {
            t.push_str("#BEGIN_TB\n");
            t.push_str(&format!("thread block = {tb}\n"));
            for w in 0..2 {
                t.push_str(&format!("warp = {w}\ninsts = 7\n"));
                t.push_str("0000 ffffffff ALU\n");
                t.push_str(&mem_record("LDG", 8, 0xffff_ffff, 0x1000 + tb * 0x800, 4));
                t.push_str("\n0010 ffffffff BAR\n");
                // Divergent shared store: odd lanes only.
                t.push_str(&mem_record("STS", 0x18, 0xaaaa_aaaa, 0, 8));
                t.push_str("\n0020 ffffffff SFU\n");
                t.push_str(&mem_record("ATOM", 0x28, 0xffff_ffff, 0x9000, 0));
                t.push_str("\n0030 ffffffff EXIT\n");
            }
            t.push_str("#END_TB\n");
        }
        t
    }

    #[test]
    fn lowers_and_executes() {
        let trace = parse_str(&two_warp_trace()).unwrap();
        let k = trace.lower().unwrap();
        assert_eq!(k.name(), "lower-t");
        assert_eq!(k.num_ctas(), 2);
        assert_eq!(k.threads_per_cta(), 64);
        assert_eq!(k.regs_per_thread(), 20);
        assert_eq!(k.smem_bytes_per_cta(), 256);
        let res = Interpreter::new(&k).unwrap().run().unwrap();
        assert!(res.warp_instrs() > 0);
    }

    #[test]
    fn replay_heap_is_rebased_and_atomics_land() {
        let trace = parse_str(&two_warp_trace()).unwrap();
        let k = trace.lower().unwrap();
        // Heap is the first allocation; footprint [0x1000, 0x9004) rebases
        // to heap offset 0. The ATOM slot adds 1 at 0x9000-0x1000 = 0x8000,
        // 32 lanes x 2 warps x 2 CTAs = 128 increments.
        let res = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(res.mem().load(0x8000), Some(128));
    }

    #[test]
    fn uniform_trace_skips_predication() {
        let uniform = "\
-kernel name = u\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\n-shmem = 0\n-nregs = 8\n\
#BEGIN_TB\nthread block = 0\nwarp = 0\ninsts = 3\n\
0000 ffffffff ALU\n0008 ffffffff MAD\n0010 ffffffff EXIT\n#END_TB\n";
        let k = parse_str(uniform).unwrap().lower().unwrap();
        // Prologue (6) + 2 slot bodies (1 each) + epilogue (3) + exit: no
        // branches at all means predication was skipped.
        let has_branch = (0..k.program().len())
            .any(|pc| format!("{}", k.program().fetch(pc)).starts_with("brc"));
        assert!(!has_branch, "uniform full-mask trace must not predicate");
    }

    #[test]
    fn rejects_slot_class_mismatch() {
        let t = two_warp_trace().replacen("0000 ffffffff ALU", "0000 ffffffff MAD", 1);
        let err = parse_str(&t).unwrap().lower().unwrap_err();
        assert!(
            matches!(err, TraceError::SlotMismatch { slot: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_partial_barrier_mask() {
        let t = two_warp_trace().replacen("0010 ffffffff BAR", "0010 0000ffff BAR", 1);
        let err = parse_str(&t).unwrap().lower().unwrap_err();
        assert!(matches!(err, TraceError::BarrierMask { .. }), "{err}");
    }

    #[test]
    fn rejects_oversized_global_footprint() {
        let t = two_warp_trace().replace("0x9000", "0x40009000");
        let err = parse_str(&t).unwrap().lower().unwrap_err();
        assert!(matches!(err, TraceError::AddressRange { .. }), "{err}");
    }

    #[test]
    fn shorter_streams_replay_with_zero_masks() {
        // Warp 1 records fewer slots than warp 0: the tail slots must be
        // predicated off for warp 1, not executed or mismatched.
        let t = "\
-kernel name = ragged\n-grid dim = (1,1,1)\n-block dim = (64,1,1)\n-shmem = 0\n-nregs = 8\n\
#BEGIN_TB\nthread block = 0\n\
warp = 0\ninsts = 4\n0000 ffffffff ALU\n0008 ffffffff ALU\n0010 ffffffff ALU\n0018 ffffffff EXIT\n\
warp = 1\ninsts = 2\n0000 ffffffff ALU\n0008 ffffffff EXIT\n\
#END_TB\n";
        let k = parse_str(t).unwrap().lower().unwrap();
        let res = Interpreter::new(&k).unwrap().run().unwrap();
        assert!(res.warp_instrs() > 0);
    }
}
