//! # vt-traces — the trace ingestion frontend
//!
//! Parses accel-sim-style kernel traces (the text shape of
//! `trace_parser.hpp`/`trace_warp_inst.hpp`: a kernel header followed by
//! per-warp instruction records carrying PC, opcode class, active mask
//! and per-thread addresses) and lowers them into `vt-isa` kernels plus
//! launch geometry, so recorded GPU executions replay through the same
//! `Session`/golden/differential machinery as the synthetic suite.
//!
//! The pipeline is two total functions, neither of which panics on
//! malformed input:
//!
//! * [`parse_str`] / [`parse_file`] — text to a validated [`Trace`]
//!   (header, thread blocks, warp record streams), or a [`TraceError`]
//!   naming the line and defect;
//! * [`Trace::lower`] — a [`Trace`] to an executable [`vt_isa::Kernel`]:
//!   warp streams are unified into lock-step *slots*, per-slot active
//!   masks and per-lane addresses are materialised as tables in the
//!   kernel's global memory image, and a data-driven replay program is
//!   generated that predicates each slot on its recorded mask and
//!   re-issues each memory record at its recorded (rebased) address.
//!
//! [`load_kernel`] composes both. The `vttrace` CLI (in `vt-bench`)
//! wraps this crate with `--check` / `--run` / `--json` modes.
//!
//! ## Trace text format
//!
//! ```text
//! -kernel name = vecadd
//! -grid dim = (2,1,1)
//! -block dim = (64,1,1)
//! -shmem = 0
//! -nregs = 16
//!
//! #BEGIN_TB
//! thread block = 0
//! warp = 0
//! insts = 3
//! 0000 ffffffff ALU
//! 0008 ffffffff LDG 4 0x1000 0x1004 ... (one address per set mask bit)
//! 0010 ffffffff EXIT
//! warp = 1
//! ...
//! #END_TB
//! ```
//!
//! Opcode classes: `ALU`, `MAD`, `SFU` (compute), `LDG`, `STG`, `ATOM`
//! (global memory, with addresses), `LDS`, `STS` (shared memory, with
//! CTA-local addresses), `BAR` (full-mask CTA barrier), `EXIT`
//! (stream terminator). Anything else is a [`TraceError::Syntax`].
#![forbid(unsafe_code)]

pub mod error;
pub mod lower;
pub mod parse;

pub use error::TraceError;
pub use parse::{parse_file, parse_str, OpClass, Trace, TraceBlock, TraceInst, TraceWarp};

/// Parses `path` and lowers the trace to an executable kernel — the
/// one-call frontend used by `vttrace --run`.
///
/// # Errors
///
/// Any [`TraceError`] from parsing or lowering; never panics.
pub fn load_kernel(path: &str) -> Result<vt_isa::Kernel, TraceError> {
    parse_file(path)?.lower()
}
