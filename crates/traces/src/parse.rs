//! Text-format trace parser: accel-sim-shaped kernel traces to a
//! validated in-memory [`Trace`].
//!
//! The parser is a line-oriented state machine. It is *total*: every
//! malformed input maps to a [`TraceError`]; no input panics. All
//! structural constraints that can be checked locally are checked here
//! (header completeness, geometry sanity, mask/lane containment,
//! address counts and alignment, duplicate blocks/warps, declared
//! record counts, truncation); cross-warp constraints (slot class
//! unification, barrier uniformity, footprint caps) are checked by
//! [`Trace::lower`](crate::lower).

use crate::error::TraceError;
use vt_isa::WARP_SIZE;

/// Hard ceiling on `-grid dim` (CTAs per launch) accepted from a trace.
pub const MAX_GRID: u32 = 4096;
/// Hard ceiling on `-block dim` (threads per CTA) accepted from a trace.
pub const MAX_BLOCK: u32 = 1024;
/// Hard ceiling on `-nregs` accepted from a trace.
pub const MAX_NREGS: u32 = 255;
/// Hard ceiling on `-shmem` bytes accepted from a trace.
pub const MAX_SHMEM: u32 = 96 * 1024;
/// Hard ceiling on a single warp's declared `insts` count.
pub const MAX_WARP_INSTS: usize = 65_536;

/// Opcode class of one trace record — the coarse pipeline/space
/// taxonomy accel-sim traces carry, not a full ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-issue integer/float ALU work.
    Alu,
    /// Multiply-add (kept distinct so replay preserves the FMA mix).
    Mad,
    /// Special-function-unit work (rcp/sqrt/transcendental).
    Sfu,
    /// Global load (carries per-lane addresses).
    Ldg,
    /// Global store (carries per-lane addresses).
    Stg,
    /// Shared-memory load (carries CTA-local addresses).
    Lds,
    /// Shared-memory store (carries CTA-local addresses).
    Sts,
    /// Global atomic read-modify-write (carries per-lane addresses).
    Atom,
    /// CTA-wide barrier.
    Bar,
    /// End of the warp's stream.
    Exit,
}

impl OpClass {
    /// Parses a trace-text mnemonic.
    pub fn parse(tok: &str) -> Option<OpClass> {
        Some(match tok {
            "ALU" => OpClass::Alu,
            "MAD" => OpClass::Mad,
            "SFU" => OpClass::Sfu,
            "LDG" => OpClass::Ldg,
            "STG" => OpClass::Stg,
            "LDS" => OpClass::Lds,
            "STS" => OpClass::Sts,
            "ATOM" => OpClass::Atom,
            "BAR" => OpClass::Bar,
            "EXIT" => OpClass::Exit,
            _ => return None,
        })
    }

    /// The trace-text mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::Alu => "ALU",
            OpClass::Mad => "MAD",
            OpClass::Sfu => "SFU",
            OpClass::Ldg => "LDG",
            OpClass::Stg => "STG",
            OpClass::Lds => "LDS",
            OpClass::Sts => "STS",
            OpClass::Atom => "ATOM",
            OpClass::Bar => "BAR",
            OpClass::Exit => "EXIT",
        }
    }

    /// Records of this class carry per-lane addresses.
    pub fn has_addresses(self) -> bool {
        self.is_global_mem() || self.is_shared_mem()
    }

    /// Global-memory-space record (addresses are device-global bytes).
    pub fn is_global_mem(self) -> bool {
        matches!(self, OpClass::Ldg | OpClass::Stg | OpClass::Atom)
    }

    /// Shared-memory-space record (addresses are CTA-local bytes).
    pub fn is_shared_mem(self) -> bool {
        matches!(self, OpClass::Lds | OpClass::Sts)
    }
}

/// One per-warp instruction record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInst {
    /// Program counter as recorded (informational; replay is slot-indexed).
    pub pc: u32,
    /// Active lane mask.
    pub mask: u32,
    /// Opcode class.
    pub class: OpClass,
    /// One byte address per set mask bit, in ascending lane order.
    /// Empty for classes without addresses.
    pub addrs: Vec<u64>,
    /// 1-based source line, for diagnostics.
    pub line: usize,
}

/// One warp's record stream within a thread block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWarp {
    /// Warp id within the CTA.
    pub warp: u32,
    /// Records in issue order, `EXIT` terminator stripped.
    pub insts: Vec<TraceInst>,
}

/// One traced thread block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBlock {
    /// Block id within the grid.
    pub tb: u32,
    /// Warps present in the trace, sorted by warp id. Warps absent here
    /// executed nothing (they replay with all-zero masks).
    pub warps: Vec<TraceWarp>,
}

/// A fully parsed, locally validated kernel trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Kernel name from the header.
    pub name: String,
    /// Grid size in CTAs (`-grid dim`, x extent; y/z must be 1).
    pub grid: u32,
    /// CTA size in threads (`-block dim`, x extent; y/z must be 1).
    pub block: u32,
    /// Static shared memory per CTA in bytes (`-shmem`).
    pub shmem_bytes: u32,
    /// Registers per thread (`-nregs`).
    pub nregs: u32,
    /// Thread blocks, sorted by block id; all `grid` blocks present.
    pub blocks: Vec<TraceBlock>,
}

impl Trace {
    /// Warps per CTA implied by the block size.
    pub fn warps_per_cta(&self) -> u32 {
        self.block.div_ceil(WARP_SIZE)
    }

    /// Legal lane mask for warp `w` (partial for the last warp of a
    /// non-multiple-of-32 block).
    pub fn lane_mask(&self, warp: u32) -> u32 {
        let lo = warp * WARP_SIZE;
        let hi = self.block.min(lo + WARP_SIZE);
        let lanes = hi.saturating_sub(lo);
        if lanes >= 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        }
    }

    /// Total dynamic (non-`EXIT`) warp records across the trace.
    pub fn total_records(&self) -> u64 {
        self.blocks
            .iter()
            .flat_map(|b| &b.warps)
            .map(|w| w.insts.len() as u64)
            .sum()
    }
}

// ----- numeric helpers ----------------------------------------------------

fn syntax(line: usize, msg: impl Into<String>) -> TraceError {
    TraceError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn parse_dec(tok: &str, line: usize, what: &str) -> Result<u32, TraceError> {
    tok.parse::<u32>()
        .map_err(|_| syntax(line, format!("bad {what} `{tok}`")))
}

fn parse_hex32(tok: &str, line: usize, what: &str) -> Result<u32, TraceError> {
    let t = tok.strip_prefix("0x").unwrap_or(tok);
    u32::from_str_radix(t, 16).map_err(|_| syntax(line, format!("bad {what} `{tok}`")))
}

fn parse_hex64(tok: &str, line: usize, what: &str) -> Result<u64, TraceError> {
    let t = tok.strip_prefix("0x").unwrap_or(tok);
    u64::from_str_radix(t, 16).map_err(|_| syntax(line, format!("bad {what} `{tok}`")))
}

/// Parses `(x,y,z)` and requires y = z = 1 (only 1-D geometry replays).
fn parse_dim3(val: &str, what: &str) -> Result<u32, TraceError> {
    let inner = val
        .trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| TraceError::Header {
            msg: format!("{what} must look like (x,1,1), got `{val}`"),
        })?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(TraceError::Header {
            msg: format!("{what} must have three components, got `{val}`"),
        });
    }
    let nums: Vec<u32> = parts
        .iter()
        .map(|p| {
            p.parse::<u32>().map_err(|_| TraceError::Header {
                msg: format!("bad {what} component `{p}`"),
            })
        })
        .collect::<Result<_, _>>()?;
    if nums[1] != 1 || nums[2] != 1 {
        return Err(TraceError::Geometry {
            msg: format!("{what} must be 1-D (y = z = 1), got `{val}`"),
        });
    }
    Ok(nums[0])
}

// ----- the parser ---------------------------------------------------------

struct Header {
    name: Option<String>,
    grid: Option<u32>,
    block: Option<u32>,
    shmem: Option<u32>,
    nregs: Option<u32>,
}

impl Header {
    fn set<T>(slot: &mut Option<T>, v: T, key: &str) -> Result<(), TraceError> {
        if slot.is_some() {
            return Err(TraceError::Header {
                msg: format!("duplicate header field `{key}`"),
            });
        }
        *slot = Some(v);
        Ok(())
    }

    fn finish(self) -> Result<(String, u32, u32, u32, u32), TraceError> {
        let missing = |k: &str| TraceError::Header {
            msg: format!("missing header field `{k}`"),
        };
        let name = self.name.ok_or_else(|| missing("kernel name"))?;
        let grid = self.grid.ok_or_else(|| missing("grid dim"))?;
        let block = self.block.ok_or_else(|| missing("block dim"))?;
        let shmem = self.shmem.ok_or_else(|| missing("shmem"))?;
        let nregs = self.nregs.ok_or_else(|| missing("nregs"))?;
        let geom = |msg: String| TraceError::Geometry { msg };
        if grid == 0 || grid > MAX_GRID {
            return Err(geom(format!("grid dim {grid} outside 1..={MAX_GRID}")));
        }
        if block == 0 || block > MAX_BLOCK {
            return Err(geom(format!("block dim {block} outside 1..={MAX_BLOCK}")));
        }
        if nregs == 0 || nregs > MAX_NREGS {
            return Err(geom(format!("nregs {nregs} outside 1..={MAX_NREGS}")));
        }
        if shmem > MAX_SHMEM {
            return Err(geom(format!("shmem {shmem} exceeds {MAX_SHMEM}")));
        }
        Ok((name, grid, block, shmem, nregs))
    }
}

/// Reads and parses a trace file. See [`parse_str`].
///
/// # Errors
///
/// [`TraceError::Io`] if the file cannot be read, otherwise any parse
/// error from [`parse_str`].
pub fn parse_file(path: &str) -> Result<Trace, TraceError> {
    let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
        path: path.to_string(),
        msg: e.to_string(),
    })?;
    parse_str(&text)
}

/// Parses trace text into a validated [`Trace`].
///
/// # Errors
///
/// A [`TraceError`] naming the first defect encountered; never panics.
pub fn parse_str(text: &str) -> Result<Trace, TraceError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"));
    let mut last_line = text.lines().count();
    if last_line == 0 {
        last_line = 1;
    }

    // --- header: `-key = value` lines until the first #BEGIN_TB -----------
    let mut hdr = Header {
        name: None,
        grid: None,
        block: None,
        shmem: None,
        nregs: None,
    };
    let mut pending: Option<(usize, &str)> = None;
    for (ln, l) in lines.by_ref() {
        if let Some(rest) = l.strip_prefix('-') {
            let (key, val) = rest.split_once('=').ok_or_else(|| TraceError::Header {
                msg: format!("line {ln}: header line without `=`: `{l}`"),
            })?;
            let (key, val) = (key.trim(), val.trim());
            match key {
                "kernel name" => Header::set(&mut hdr.name, val.to_string(), key)?,
                "grid dim" => Header::set(&mut hdr.grid, parse_dim3(val, key)?, key)?,
                "block dim" => Header::set(&mut hdr.block, parse_dim3(val, key)?, key)?,
                "shmem" => Header::set(&mut hdr.shmem, parse_dec(val, ln, "shmem")?, key)?,
                "nregs" => Header::set(&mut hdr.nregs, parse_dec(val, ln, "nregs")?, key)?,
                _ => {
                    return Err(TraceError::Header {
                        msg: format!("line {ln}: unknown header field `{key}`"),
                    })
                }
            }
        } else {
            pending = Some((ln, l));
            break;
        }
    }
    let (name, grid, block, shmem_bytes, nregs) = hdr.finish()?;
    let mut trace = Trace {
        name,
        grid,
        block,
        shmem_bytes,
        nregs,
        blocks: Vec::new(),
    };
    let warps_per_cta = trace.warps_per_cta();

    // --- body: #BEGIN_TB ... #END_TB sections ------------------------------
    let mut next = move || pending.take().or_else(|| lines.next());
    while let Some((ln, l)) = next() {
        if l != "#BEGIN_TB" {
            return Err(syntax(ln, format!("expected #BEGIN_TB, got `{l}`")));
        }
        // thread block = N
        let (ln, l) = next().ok_or(TraceError::Truncated { line: last_line })?;
        let tb = match l.strip_prefix("thread block") {
            Some(rest) => {
                let v = rest
                    .trim()
                    .strip_prefix('=')
                    .map(str::trim)
                    .ok_or_else(|| syntax(ln, format!("expected `thread block = N`, got `{l}`")))?;
                parse_dec(v, ln, "thread block id")?
            }
            None => {
                return Err(syntax(
                    ln,
                    format!("expected `thread block = N`, got `{l}`"),
                ))
            }
        };
        if tb >= grid {
            return Err(TraceError::Geometry {
                msg: format!("line {ln}: thread block {tb} outside grid of {grid}"),
            });
        }
        if trace.blocks.iter().any(|b| b.tb == tb) {
            return Err(TraceError::DuplicateBlock { line: ln, tb });
        }
        let mut blockrec = TraceBlock {
            tb,
            warps: Vec::new(),
        };

        // warp sections until #END_TB
        loop {
            let (ln, l) = next().ok_or(TraceError::Truncated { line: last_line })?;
            if l == "#END_TB" {
                break;
            }
            let warp = match l.strip_prefix("warp") {
                Some(rest) => {
                    let v = rest
                        .trim()
                        .strip_prefix('=')
                        .map(str::trim)
                        .ok_or_else(|| {
                            syntax(ln, format!("expected `warp = W` or #END_TB, got `{l}`"))
                        })?;
                    parse_dec(v, ln, "warp id")?
                }
                None => {
                    return Err(syntax(
                        ln,
                        format!("expected `warp = W` or #END_TB, got `{l}`"),
                    ))
                }
            };
            if warp >= warps_per_cta {
                return Err(TraceError::Geometry {
                    msg: format!(
                        "line {ln}: warp {warp} outside {warps_per_cta} warps of a {block}-thread block"
                    ),
                });
            }
            if blockrec.warps.iter().any(|w| w.warp == warp) {
                return Err(TraceError::DuplicateWarp { line: ln, tb, warp });
            }
            let (ln2, l2) = next().ok_or(TraceError::Truncated { line: last_line })?;
            let declared = match l2.strip_prefix("insts") {
                Some(rest) => {
                    let v = rest
                        .trim()
                        .strip_prefix('=')
                        .map(str::trim)
                        .ok_or_else(|| syntax(ln2, format!("expected `insts = K`, got `{l2}`")))?;
                    parse_dec(v, ln2, "insts count")? as usize
                }
                None => return Err(syntax(ln2, format!("expected `insts = K`, got `{l2}`"))),
            };
            if declared > MAX_WARP_INSTS {
                return Err(TraceError::TooLong {
                    msg: format!("warp {warp} declares {declared} insts (cap {MAX_WARP_INSTS})"),
                });
            }
            let lane_mask = trace.lane_mask(warp);
            let mut insts = Vec::with_capacity(declared.min(1024));
            let mut exited = false;
            while insts.len() < declared {
                let Some((ln3, l3)) = next() else {
                    return Err(TraceError::InstCount {
                        line: last_line,
                        warp,
                        declared,
                        got: insts.len(),
                    });
                };
                if l3 == "#END_TB" || l3.starts_with("warp") || l3 == "#BEGIN_TB" {
                    return Err(TraceError::InstCount {
                        line: ln3,
                        warp,
                        declared,
                        got: insts.len(),
                    });
                }
                if exited {
                    return Err(TraceError::TrailingAfterExit { line: ln3 });
                }
                let inst = parse_record(l3, ln3, lane_mask, shmem_bytes)?;
                if inst.class == OpClass::Exit {
                    exited = true;
                }
                insts.push(inst);
            }
            // Strip the EXIT terminator; replay is driven by stream length.
            if matches!(insts.last(), Some(i) if i.class == OpClass::Exit) {
                insts.pop();
            }
            blockrec.warps.push(TraceWarp { warp, insts });
        }
        blockrec.warps.sort_by_key(|w| w.warp);
        trace.blocks.push(blockrec);
    }

    if trace.blocks.len() as u32 != grid {
        return Err(TraceError::Geometry {
            msg: format!(
                "trace has {} thread blocks but grid dim is {grid}",
                trace.blocks.len()
            ),
        });
    }
    trace.blocks.sort_by_key(|b| b.tb);
    Ok(trace)
}

/// Parses one instruction record: `PC MASK CLASS [WIDTH ADDR...]`.
fn parse_record(
    l: &str,
    line: usize,
    lane_mask: u32,
    shmem_bytes: u32,
) -> Result<TraceInst, TraceError> {
    let toks: Vec<&str> = l.split_whitespace().collect();
    if toks.len() < 3 {
        return Err(syntax(
            line,
            format!("record needs PC MASK CLASS, got `{l}`"),
        ));
    }
    let pc = parse_hex32(toks[0], line, "PC")?;
    let mask = parse_hex32(toks[1], line, "mask")?;
    let class = OpClass::parse(toks[2])
        .ok_or_else(|| syntax(line, format!("unknown opcode class `{}`", toks[2])))?;
    if mask & !lane_mask != 0 {
        return Err(TraceError::MaskOutOfRange {
            line,
            mask,
            lane_mask,
        });
    }
    let addrs = if class.has_addresses() {
        if toks.len() < 4 {
            return Err(syntax(line, format!("{} record needs a width", toks[2])));
        }
        if toks[3] != "4" {
            return Err(syntax(
                line,
                format!("unsupported access width `{}` (only 4)", toks[3]),
            ));
        }
        let expected = mask.count_ones() as usize;
        let got = toks.len() - 4;
        if got != expected {
            return Err(TraceError::AddressCount {
                line,
                expected,
                got,
            });
        }
        let mut addrs = Vec::with_capacity(got);
        for t in &toks[4..] {
            let a = parse_hex64(t, line, "address")?;
            if a % 4 != 0 {
                return Err(TraceError::Misaligned { line, addr: a });
            }
            if class.is_shared_mem() && a + 4 > u64::from(shmem_bytes) {
                return Err(TraceError::SharedOutOfRange {
                    line,
                    addr: a,
                    smem_bytes: shmem_bytes,
                });
            }
            addrs.push(a);
        }
        addrs
    } else {
        if toks.len() != 3 {
            return Err(syntax(
                line,
                format!("{} record takes no operands, got `{l}`", toks[2]),
            ));
        }
        Vec::new()
    };
    Ok(TraceInst {
        pc,
        mask,
        class,
        addrs,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = "\
-kernel name = t
-grid dim = (1,1,1)
-block dim = (32,1,1)
-shmem = 16
-nregs = 8

#BEGIN_TB
thread block = 0
warp = 0
insts = 4
0000 ffffffff ALU
0008 ffffffff LDG 4 0x100 0x104 0x108 0x10c 0x110 0x114 0x118 0x11c 0x120 0x124 0x128 0x12c 0x130 0x134 0x138 0x13c 0x140 0x144 0x148 0x14c 0x150 0x154 0x158 0x15c 0x160 0x164 0x168 0x16c 0x170 0x174 0x178 0x17c
0010 0000000f STS 4 0x0 0x4 0x8 0xc
0018 ffffffff EXIT
#END_TB
";

    #[test]
    fn parses_valid_trace() {
        let t = parse_str(VALID).unwrap();
        assert_eq!(t.name, "t");
        assert_eq!((t.grid, t.block, t.shmem_bytes, t.nregs), (1, 32, 16, 8));
        assert_eq!(t.blocks.len(), 1);
        let w = &t.blocks[0].warps[0];
        // EXIT stripped.
        assert_eq!(w.insts.len(), 3);
        assert_eq!(w.insts[1].class, OpClass::Ldg);
        assert_eq!(w.insts[1].addrs.len(), 32);
        assert_eq!(w.insts[2].class, OpClass::Sts);
        assert_eq!(w.insts[2].addrs, vec![0, 4, 8, 12]);
    }

    #[test]
    fn rejects_missing_header_field() {
        let txt = VALID.replace("-nregs = 8\n", "");
        assert!(matches!(parse_str(&txt), Err(TraceError::Header { .. })));
    }

    #[test]
    fn rejects_mask_outside_partial_warp() {
        let txt = VALID
            .replace("(32,1,1)", "(24,1,1)")
            .replace("0000 ffffffff ALU", "0000 01ffffff ALU");
        assert!(matches!(
            parse_str(&txt),
            Err(TraceError::MaskOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_wrong_address_count() {
        let txt = VALID.replace(
            "0010 0000000f STS 4 0x0 0x4 0x8 0xc",
            "0010 0000000f STS 4 0x0",
        );
        assert!(matches!(
            parse_str(&txt),
            Err(TraceError::AddressCount {
                expected: 4,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn rejects_shared_address_beyond_shmem() {
        let txt = VALID.replace("0x0 0x4 0x8 0xc", "0x0 0x4 0x8 0x10");
        assert!(matches!(
            parse_str(&txt),
            Err(TraceError::SharedOutOfRange { addr: 0x10, .. })
        ));
    }

    #[test]
    fn rejects_misaligned_address() {
        let txt = VALID.replace("0x0 0x4 0x8 0xc", "0x0 0x4 0x8 0xe");
        assert!(matches!(
            parse_str(&txt),
            Err(TraceError::Misaligned { addr: 0xe, .. })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let cut = VALID.find("0010").unwrap();
        let err = parse_str(&VALID[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::InstCount { .. } | TraceError::Truncated { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_record_after_exit() {
        let txt = VALID.replace("insts = 4", "insts = 5").replace(
            "0018 ffffffff EXIT",
            "0018 ffffffff EXIT\n0020 ffffffff ALU",
        );
        assert!(matches!(
            parse_str(&txt),
            Err(TraceError::TrailingAfterExit { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_warp_and_block() {
        let dup_warp = VALID.replace(
            "#END_TB",
            "warp = 0\ninsts = 1\n0000 ffffffff EXIT\n#END_TB",
        );
        assert!(matches!(
            parse_str(&dup_warp),
            Err(TraceError::Geometry { .. }) // warp 1 of a 32-thread block would be geometry; warp 0 is duplicate
                | Err(TraceError::DuplicateWarp { .. })
        ));
        let two_tb = VALID.to_string()
            + "#BEGIN_TB\nthread block = 0\nwarp = 0\ninsts = 1\n0000 ffffffff EXIT\n#END_TB\n";
        assert!(matches!(
            parse_str(&two_tb),
            Err(TraceError::DuplicateBlock { tb: 0, .. })
        ));
    }

    #[test]
    fn rejects_missing_blocks() {
        let txt = VALID.replace("(1,1,1)", "(2,1,1)");
        assert!(matches!(parse_str(&txt), Err(TraceError::Geometry { .. })));
    }

    #[test]
    fn rejects_garbage() {
        for garbage in [
            "\u{0}\u{1}\u{2}",
            "hello world",
            "-kernel name",
            "#BEGIN_TB",
        ] {
            assert!(parse_str(garbage).is_err(), "{garbage:?}");
        }
    }
}
