//! Non-panicking error taxonomy for trace ingestion.
//!
//! Every defect a malformed trace can exhibit maps to a distinct
//! variant, so the `vttrace --check` validator (and the fuzz suite) can
//! assert that corrupt inputs are *rejected*, never mis-parsed and
//! never allowed to panic downstream.

use std::fmt;

/// Why a trace file could not be parsed or lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file could not be read at all.
    Io {
        /// Path that failed to open/read.
        path: String,
        /// OS-level error text.
        msg: String,
    },
    /// A line did not match the grammar (bad token, bad number, unknown
    /// opcode class, trailing junk).
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A required header field is missing, duplicated or malformed.
    Header {
        /// What was wrong.
        msg: String,
    },
    /// Header values describe an unlaunchable kernel (zero or oversized
    /// grid/block, >1-D geometry, absurd register/smem counts) or the
    /// trace body disagrees with the declared geometry.
    Geometry {
        /// What was wrong.
        msg: String,
    },
    /// An active mask has bits set outside the warp's lane population.
    MaskOutOfRange {
        /// 1-based source line.
        line: usize,
        /// The offending mask.
        mask: u32,
        /// The legal lane mask for that warp.
        lane_mask: u32,
    },
    /// A memory record carried a different number of addresses than the
    /// popcount of its active mask.
    AddressCount {
        /// 1-based source line.
        line: usize,
        /// popcount of the mask.
        expected: usize,
        /// addresses actually present.
        got: usize,
    },
    /// A memory address is not 4-byte aligned (the replay ISA is
    /// word-granular).
    Misaligned {
        /// 1-based source line.
        line: usize,
        /// The offending byte address.
        addr: u64,
    },
    /// A shared-memory address lies outside the CTA's declared
    /// shared-memory allocation.
    SharedOutOfRange {
        /// 1-based source line.
        line: usize,
        /// The offending byte address.
        addr: u64,
        /// Declared `-shmem` bytes.
        smem_bytes: u32,
    },
    /// The global-address footprint is too large to materialise as a
    /// replay heap.
    AddressRange {
        /// Footprint description.
        msg: String,
    },
    /// The same thread block appeared twice.
    DuplicateBlock {
        /// 1-based source line of the second occurrence.
        line: usize,
        /// Block id.
        tb: u32,
    },
    /// The same warp appeared twice within one thread block.
    DuplicateWarp {
        /// 1-based source line of the second occurrence.
        line: usize,
        /// Block id.
        tb: u32,
        /// Warp id.
        warp: u32,
    },
    /// A warp declared `insts = K` but its record stream ended early or
    /// a structural keyword interrupted it.
    InstCount {
        /// 1-based source line where the mismatch was detected.
        line: usize,
        /// Warp id.
        warp: u32,
        /// Declared record count.
        declared: usize,
        /// Records actually found.
        got: usize,
    },
    /// The file ended inside a structure (mid-block, mid-warp).
    Truncated {
        /// 1-based line number of end-of-file.
        line: usize,
    },
    /// Records appeared after a warp's `EXIT`.
    TrailingAfterExit {
        /// 1-based source line.
        line: usize,
    },
    /// Two warps disagree on the opcode class at the same stream slot,
    /// so no single lock-step replay program exists.
    SlotMismatch {
        /// Unified slot index.
        slot: usize,
        /// The two classes in conflict.
        msg: String,
    },
    /// A `BAR` record carried a partial active mask; barriers must be
    /// CTA-uniform to replay without deadlock.
    BarrierMask {
        /// Unified slot index.
        slot: usize,
        /// Block id.
        tb: u32,
    },
    /// The trace is too large to lower (slot count or replay-table
    /// footprint over the cap).
    TooLong {
        /// What exceeded which cap.
        msg: String,
    },
    /// The generated replay program failed `vt-isa` validation — a
    /// lowering bug, surfaced as an error instead of a panic.
    Isa {
        /// The underlying ISA error text.
        msg: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, msg } => write!(f, "{path}: {msg}"),
            TraceError::Syntax { line, msg } => write!(f, "line {line}: syntax error: {msg}"),
            TraceError::Header { msg } => write!(f, "header: {msg}"),
            TraceError::Geometry { msg } => write!(f, "geometry: {msg}"),
            TraceError::MaskOutOfRange {
                line,
                mask,
                lane_mask,
            } => write!(
                f,
                "line {line}: mask {mask:#010x} has bits outside lane mask {lane_mask:#010x}"
            ),
            TraceError::AddressCount {
                line,
                expected,
                got,
            } => write!(
                f,
                "line {line}: expected {expected} addresses (mask popcount), got {got}"
            ),
            TraceError::Misaligned { line, addr } => {
                write!(f, "line {line}: address {addr:#x} is not 4-byte aligned")
            }
            TraceError::SharedOutOfRange {
                line,
                addr,
                smem_bytes,
            } => write!(
                f,
                "line {line}: shared address {addr:#x} outside -shmem = {smem_bytes}"
            ),
            TraceError::AddressRange { msg } => write!(f, "global address range: {msg}"),
            TraceError::DuplicateBlock { line, tb } => {
                write!(f, "line {line}: thread block {tb} appears twice")
            }
            TraceError::DuplicateWarp { line, tb, warp } => {
                write!(
                    f,
                    "line {line}: warp {warp} appears twice in thread block {tb}"
                )
            }
            TraceError::InstCount {
                line,
                warp,
                declared,
                got,
            } => write!(
                f,
                "line {line}: warp {warp} declared insts = {declared} but has {got} records"
            ),
            TraceError::Truncated { line } => {
                write!(
                    f,
                    "line {line}: unexpected end of file inside a thread block"
                )
            }
            TraceError::TrailingAfterExit { line } => {
                write!(f, "line {line}: record after EXIT")
            }
            TraceError::SlotMismatch { slot, msg } => {
                write!(f, "slot {slot}: opcode class mismatch across warps: {msg}")
            }
            TraceError::BarrierMask { slot, tb } => write!(
                f,
                "slot {slot}: BAR with partial active mask in thread block {tb}"
            ),
            TraceError::TooLong { msg } => write!(f, "trace too large: {msg}"),
            TraceError::Isa { msg } => write!(f, "lowered program rejected by ISA: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}
