//! Static occupancy model: per-resource resident-CTA bounds and the
//! per-architecture residency policies that consume them.
//!
//! The bound arithmetic itself lives in [`vt_isa::limits`] — the single
//! source of truth shared with the timing simulator's configuration — so
//! this module only adds what a *static* model needs on top: the
//! [`ResidencyModel`] each architecture variant applies to the bounds
//! (mirroring `vt-sim`'s admission policies without depending on the
//! simulator crate), and the [`OccupancyModel`] wrapper `vtlint --model`
//! and the cross-validation oracle consume.
//!
//! The architecture labels in [`standard_archs`] deliberately match
//! `vt_core::Architecture::label()`; the integration-test oracle asserts
//! that the two crates' lowerings agree for every variant so the
//! duplicated policy table cannot drift.

use vt_isa::Kernel;

pub use vt_isa::limits::{CtaBounds, Limiter, SmLimits};

/// How an architecture turns the per-resource bounds into a resident-CTA
/// bound. This is the static mirror of `vt_sim::AdmissionPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidencyModel {
    /// Baseline hardware: scheduling and capacity limits both apply.
    SchedulingAndCapacity,
    /// Virtual Thread family: only the capacity limit applies, with an
    /// optional cap on resident (virtual) CTAs modelling a finite
    /// context buffer.
    CapacityOnly {
        /// Maximum resident CTAs per SM, if the context buffer bounds it.
        max_resident_ctas: Option<u32>,
    },
}

impl ResidencyModel {
    /// The resident-CTA bound this policy extracts from `bounds`.
    pub fn resident_bound(&self, bounds: &CtaBounds) -> u32 {
        match self {
            ResidencyModel::SchedulingAndCapacity => bounds.baseline(),
            ResidencyModel::CapacityOnly { max_resident_ctas } => {
                let cap = bounds.capacity();
                match max_resident_ctas {
                    Some(max) => cap.min(*max),
                    None => cap,
                }
            }
        }
    }
}

/// One architecture variant as the static model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchModel {
    /// Label matching `vt_core::Architecture::label()`.
    pub label: &'static str,
    /// Residency policy the variant applies.
    pub residency: ResidencyModel,
}

/// The four architectures under comparison, in the order the experiment
/// harness tabulates them: baseline, Virtual Thread, ideal, and the
/// memory-backed swap variant. VT, ideal and memswap all admit to the
/// capacity limit; they differ only in *active*-CTA handling, which does
/// not change peak residency.
pub fn standard_archs() -> [ArchModel; 4] {
    let capacity = ResidencyModel::CapacityOnly {
        max_resident_ctas: None,
    };
    [
        ArchModel {
            label: "baseline",
            residency: ResidencyModel::SchedulingAndCapacity,
        },
        ArchModel {
            label: "vt",
            residency: capacity,
        },
        ArchModel {
            label: "ideal",
            residency: capacity,
        },
        ArchModel {
            label: "memswap",
            residency: capacity,
        },
    ]
}

/// Static occupancy of one kernel under one set of SM limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyModel {
    /// The per-resource resident-CTA bounds.
    pub bounds: CtaBounds,
    /// The binding resource class under the baseline policy.
    pub limiter: Limiter,
    /// Warps per CTA (for the table output).
    pub warps_per_cta: u32,
}

impl OccupancyModel {
    /// Computes the model for `kernel` under `limits`.
    pub fn compute(limits: &SmLimits, kernel: &Kernel) -> OccupancyModel {
        let bounds = limits.bounds(kernel);
        OccupancyModel {
            bounds,
            limiter: bounds.limiter(),
            warps_per_cta: kernel.warps_per_cta(),
        }
    }

    /// The peak residency the dynamic engine should observe on an SM that
    /// is assigned `ctas_assigned` CTAs of the grid: the resource bound,
    /// clamped by the work actually available.
    pub fn predicted_peak(&self, residency: &ResidencyModel, ctas_assigned: u32) -> u32 {
        residency.resident_bound(&self.bounds).min(ctas_assigned)
    }

    /// How many times more CTAs the capacity-only policies can host than
    /// the baseline (the paper's residency-gain headline; 1.0 means VT
    /// cannot add residency).
    pub fn vt_headroom(&self) -> f64 {
        let base = self.bounds.baseline();
        if base == 0 {
            return 0.0;
        }
        f64::from(self.bounds.capacity()) / f64::from(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::KernelBuilder;

    fn kernel(threads: u32, regs: u16, smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        b.pad_regs(regs);
        b.pad_smem(smem);
        b.exit();
        b.build(1, threads).unwrap()
    }

    #[test]
    fn residency_models_split_on_the_scheduling_limit() {
        let m = OccupancyModel::compute(&SmLimits::fermi(), &kernel(64, 16, 0));
        assert_eq!(m.limiter, Limiter::CtaSlots);
        let base = ResidencyModel::SchedulingAndCapacity.resident_bound(&m.bounds);
        let cap = ResidencyModel::CapacityOnly {
            max_resident_ctas: None,
        }
        .resident_bound(&m.bounds);
        assert_eq!(base, 8);
        assert_eq!(cap, 32, "128 KiB / (2 warps × 32 × 16 regs × 4 B)");
        assert!(m.vt_headroom() > 2.0);
    }

    #[test]
    fn context_buffer_cap_clamps_the_capacity_bound() {
        let m = OccupancyModel::compute(&SmLimits::fermi(), &kernel(64, 16, 0));
        let capped = ResidencyModel::CapacityOnly {
            max_resident_ctas: Some(12),
        };
        assert_eq!(capped.resident_bound(&m.bounds), 12);
    }

    #[test]
    fn predicted_peak_is_grid_clamped() {
        let m = OccupancyModel::compute(&SmLimits::fermi(), &kernel(64, 16, 0));
        let cap = ResidencyModel::CapacityOnly {
            max_resident_ctas: None,
        };
        assert_eq!(m.predicted_peak(&cap, 3), 3, "only 3 CTAs to run");
        assert_eq!(m.predicted_peak(&cap, 100), 32, "resource bound");
    }

    #[test]
    fn standard_archs_cover_the_four_variants_once() {
        let archs = standard_archs();
        assert_eq!(archs.len(), 4);
        assert_eq!(archs[0].label, "baseline");
        assert_eq!(archs[0].residency, ResidencyModel::SchedulingAndCapacity);
        for a in &archs[1..] {
            assert!(matches!(
                a.residency,
                ResidencyModel::CapacityOnly {
                    max_resident_ctas: None
                }
            ));
        }
    }

    #[test]
    fn capacity_limited_kernels_have_no_headroom() {
        let m = OccupancyModel::compute(&SmLimits::fermi(), &kernel(256, 42, 0));
        assert!(!m.limiter.is_scheduling());
        assert!((m.vt_headroom() - 1.0).abs() < 1e-9);
    }
}
