//! Reaching definitions and the uninitialized-read lint.
//!
//! The universe has one bit per instruction (a definition site when the
//! instruction writes a register) plus one *entry definition* per
//! register representing the launch-time state. A read is flagged when
//! the entry definition still reaches it — some path writes nothing to
//! the register first. Registers are zero-initialised at launch, so the
//! finding is a warning rather than an error.

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitSet, Direction, Meet, Problem, Solution};
use crate::diag::{Diagnostic, Rule, Severity};
use vt_isa::{Program, Reg};

/// Reaching-definition sets for every instruction.
pub struct Reaching {
    /// Definition sites of each register (bits are instruction PCs).
    pub sites_of: Vec<BitSet>,
    sol: Solution,
    len: usize,
    num_regs: usize,
}

impl Reaching {
    /// Runs the forward may-analysis over `program`.
    pub fn compute(program: &Program, cfg: &Cfg, num_regs: u16) -> Reaching {
        let n = program.len();
        let regs = usize::from(num_regs);
        let bits = n + regs;
        let mut sites_of = vec![BitSet::new(n); regs];
        for (pc, instr) in program.iter() {
            if let Some(d) = instr.dst() {
                sites_of[usize::from(d.0)].insert(pc);
            }
        }
        let mut gen = vec![BitSet::new(bits); n];
        let mut kill = vec![BitSet::new(bits); n];
        for (pc, instr) in program.iter() {
            if let Some(d) = instr.dst() {
                let r = usize::from(d.0);
                gen[pc].insert(pc);
                for site in sites_of[r].iter() {
                    if site != pc {
                        kill[pc].insert(site);
                    }
                }
                kill[pc].insert(n + r);
            }
        }
        // At entry, every register holds its launch value.
        let mut boundary = BitSet::new(bits);
        for r in 0..regs {
            boundary.insert(n + r);
        }
        let sol = solve(&Problem {
            cfg,
            bits,
            direction: Direction::Forward,
            meet: Meet::Union,
            gen,
            kill,
            boundary,
        });
        Reaching {
            sites_of,
            sol,
            len: n,
            num_regs: regs,
        }
    }

    /// Whether the launch-time (never-written) state of `r` may reach
    /// `pc`.
    pub fn entry_reaches(&self, pc: usize, r: Reg) -> bool {
        self.sol.input[pc].contains(self.len + usize::from(r.0))
    }

    /// The definition sites of `r` that may reach `pc`.
    pub fn defs_at(&self, pc: usize, r: Reg) -> Vec<usize> {
        // The solution's universe is wider than `sites_of` (it carries
        // the per-register entry bits too), so filter rather than
        // intersect.
        let sites = &self.sites_of[usize::from(r.0)];
        self.sol.input[pc]
            .iter()
            .filter(|&i| i < self.len && sites.contains(i))
            .collect()
    }

    /// Number of registers in the universe.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Flags reads that the entry definition may still reach.
    pub fn uninit_diags(&self, program: &Program, reachable: &BitSet) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for (pc, instr) in program.iter() {
            if !reachable.contains(pc) {
                continue;
            }
            let mut seen = Vec::new();
            for r in instr.src_regs() {
                if self.entry_reaches(pc, r) && !seen.contains(&r) {
                    seen.push(r);
                    diags.push(Diagnostic::at(
                        Severity::Warning,
                        Rule::UninitRead,
                        pc,
                        format!("{r} may be read before any write (it is zero at launch)"),
                    ));
                }
            }
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::op::{AluOp, Operand};
    use vt_isa::Instr;

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    fn analyse(p: &Program, regs: u16) -> (Cfg, Reaching) {
        let cfg = Cfg::build(p);
        let r = Reaching::compute(p, &cfg, regs);
        (cfg, r)
    }

    #[test]
    fn write_then_read_is_clean() {
        let p = Program::new(vec![
            mov(0, Operand::Imm(7)),
            mov(1, Operand::Reg(Reg(0))),
            Instr::Exit,
        ]);
        let (cfg, r) = analyse(&p, 2);
        assert!(r.uninit_diags(&p, &cfg.reachable()).is_empty());
        assert_eq!(r.defs_at(1, Reg(0)), vec![0]);
        assert!(!r.entry_reaches(1, Reg(0)));
    }

    #[test]
    fn read_before_write_warns() {
        let p = Program::new(vec![mov(1, Operand::Reg(Reg(0))), Instr::Exit]);
        let (cfg, r) = analyse(&p, 2);
        let diags = r.uninit_diags(&p, &cfg.reachable());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::UninitRead);
        assert_eq!(diags[0].pc, Some(0));
        assert!(diags[0].message.contains("r0"));
    }

    #[test]
    fn write_on_only_one_path_still_warns() {
        // 0: brc over the write; 1: write r0; 2: read r0.
        let p = Program::new(vec![
            Instr::BraCond {
                pred: Operand::Imm(1),
                when: vt_isa::op::BranchIf::Zero,
                target: 2,
                reconv: 2,
            },
            mov(0, Operand::Imm(5)),
            mov(1, Operand::Reg(Reg(0))),
            Instr::Exit,
        ]);
        let (cfg, r) = analyse(&p, 2);
        let diags = r.uninit_diags(&p, &cfg.reachable());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pc, Some(2));
        // Both the real def and the entry state reach the read.
        assert_eq!(r.defs_at(2, Reg(0)), vec![1]);
        assert!(r.entry_reaches(2, Reg(0)));
    }

    #[test]
    fn loop_carried_defs_all_reach() {
        // 0: init r0; 1: brc exit; 2: r0 += 1; 3: bra 1; 4: read r0.
        let p = Program::new(vec![
            mov(0, Operand::Imm(0)),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: vt_isa::op::BranchIf::Zero,
                target: 4,
                reconv: 4,
            },
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Instr::Bra { target: 1 },
            mov(1, Operand::Reg(Reg(0))),
            Instr::Exit,
        ]);
        let (cfg, r) = analyse(&p, 2);
        assert!(r.uninit_diags(&p, &cfg.reachable()).is_empty());
        assert_eq!(r.defs_at(4, Reg(0)), vec![0, 2]);
    }
}
