//! `vtlint` — static lints for virtual-thread kernels.
//!
//! ```text
//! vtlint [--json] [--suite] [FILE.vtasm ...]
//! ```
//!
//! Lints `.vtasm` files and/or every kernel of the built-in workload
//! suite. Human output prints one headline per kernel followed by its
//! diagnostics; `--json` emits an array of per-kernel reports instead.
//!
//! Exit status: `0` when no error-severity finding was produced, `1`
//! when at least one kernel has errors, `2` on usage, I/O or parse
//! problems.

use std::process::ExitCode;
use vt_analysis::{analyze, Report};
use vt_json::{Json, ToJson};
use vt_workloads::{suite, Scale};

struct Args {
    json: bool,
    suite: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        suite: false,
        files: Vec::new(),
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => args.json = true,
            "--suite" => args.suite = true,
            "--help" | "-h" => {
                return Err("usage: vtlint [--json] [--suite] [FILE.vtasm ...]".to_string())
            }
            _ if a.starts_with('-') => return Err(format!("unknown flag `{a}`")),
            _ => args.files.push(a),
        }
    }
    if !args.suite && args.files.is_empty() {
        return Err("nothing to lint: pass --suite and/or .vtasm files".to_string());
    }
    Ok(args)
}

fn collect(args: &Args) -> Result<Vec<Report>, String> {
    let mut reports = Vec::new();
    for path in &args.files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let kernel = vt_isa::asm::assemble(&src).map_err(|e| format!("{path}: {e}"))?;
        reports.push(analyze(&kernel));
    }
    if args.suite {
        for w in suite(&Scale::test()) {
            reports.push(analyze(&w.kernel));
        }
    }
    Ok(reports)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let reports = match collect(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("vtlint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        let arr = Json::Array(reports.iter().map(ToJson::to_json).collect());
        println!("{}", arr.pretty());
    } else {
        for r in &reports {
            println!("{}", r.headline());
            for d in &r.diagnostics {
                println!("  {d}");
            }
        }
        let errors: usize = reports.iter().map(Report::error_count).sum();
        let warnings: usize = reports.iter().map(Report::warning_count).sum();
        println!(
            "{} kernel{} linted: {errors} error{}, {warnings} warning{}",
            reports.len(),
            if reports.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    if reports.iter().any(Report::has_errors) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
