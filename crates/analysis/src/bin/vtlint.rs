//! `vtlint` — static lints and performance model for virtual-thread
//! kernels.
//!
//! ```text
//! vtlint [--json] [--model] [--suite] [FILE.vtasm ...]
//! ```
//!
//! Lints `.vtasm` files and/or every kernel of the built-in workload
//! suite. Human output prints one headline per kernel followed by its
//! diagnostics; `--json` emits machine-readable output instead.
//!
//! `--model` switches from correctness lints to the static performance
//! model: per-resource resident-CTA bounds, scheduling-vs-capacity
//! limiter classification, per-architecture residency predictions,
//! coalescing/bank-conflict estimates and divergence nesting. Human
//! output is a fixed-width table (one row per kernel) followed by the
//! model lints; with `--json` it is an array of model objects.
//!
//! # JSON schema
//!
//! Without `--model`, the output is an array of report objects:
//!
//! ```json
//! [{"kernel": "...", "declared_regs": n, "used_regs": n,
//!   "register_pressure": n, "barriers": n, "barrier_intervals": n,
//!   "errors": n, "warnings": n,
//!   "diagnostics": [{"severity": "error|warning|info", "rule": "...",
//!                    "pc": n | null, "message": "..."}]}]
//! ```
//!
//! With `--model`, an array of model objects:
//!
//! ```json
//! [{"kernel": "...", "threads_per_cta": n, "warps_per_cta": n,
//!   "regs_per_thread": n, "smem_bytes_per_cta": n,
//!   "bounds": {"by_cta_slots": n, "by_warp_slots": n,
//!              "by_registers": n, "by_shared_memory": n | null},
//!   "limiter": "cta-slots|warp-slots|registers|shared-memory|balanced",
//!   "scheduling_limited": bool,
//!   "residency": {"baseline": n, "vt": n, "ideal": n, "memswap": n},
//!   "residency_gain": x, "predicts_vt_gain": bool,
//!   "divergence_nesting": n, "register_pressure": n,
//!   "mem_sites": [{"pc": n, "space": "g|s", "store": bool,
//!                  "stride": n | null, "segments_per_warp": n | null,
//!                  "bank_conflict_ways": n | null}],
//!   "diagnostics": [...]}]
//! ```
//!
//! # Exit status
//!
//! * `0` — no error-severity finding. **Warnings and infos exit 0**: a
//!   suspicious-but-legal kernel (may-races, uncoalesced accesses, dead
//!   stores) must not fail CI pipelines that gate on the exit code.
//! * `1` — at least one kernel produced an error-severity finding
//!   (divergent barriers, barrier mismatches: the kernel can deadlock).
//!   The model's findings are all warnings, so `--model` runs exit 0.
//! * `2` — usage, I/O or parse problems.

use std::process::ExitCode;
use vt_analysis::{analyze, model, ModelConfig, Report};
use vt_json::{Json, ToJson};
use vt_workloads::{full_suite, Scale};

struct Args {
    json: bool,
    model: bool,
    suite: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        model: false,
        suite: false,
        files: Vec::new(),
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => args.json = true,
            "--model" => args.model = true,
            "--suite" => args.suite = true,
            "--help" | "-h" => {
                return Err(
                    "usage: vtlint [--json] [--model] [--suite] [FILE.vtasm ...]".to_string(),
                )
            }
            _ if a.starts_with('-') => return Err(format!("unknown flag `{a}`")),
            _ => args.files.push(a),
        }
    }
    if !args.suite && args.files.is_empty() {
        return Err("nothing to lint: pass --suite and/or .vtasm files".to_string());
    }
    Ok(args)
}

fn kernels(args: &Args) -> Result<Vec<vt_isa::Kernel>, String> {
    let mut out = Vec::new();
    for path in &args.files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        out.push(vt_isa::asm::assemble(&src).map_err(|e| format!("{path}: {e}"))?);
    }
    if args.suite {
        out.extend(full_suite(&Scale::test()).into_iter().map(|w| w.kernel));
    }
    Ok(out)
}

fn run_lints(args: &Args, kernels: &[vt_isa::Kernel]) -> ExitCode {
    let reports: Vec<Report> = kernels.iter().map(analyze).collect();
    if args.json {
        let arr = Json::Array(reports.iter().map(ToJson::to_json).collect());
        println!("{}", arr.pretty());
    } else {
        for r in &reports {
            println!("{}", r.headline());
            for d in &r.diagnostics {
                println!("  {d}");
            }
        }
        let errors: usize = reports.iter().map(Report::error_count).sum();
        let warnings: usize = reports.iter().map(Report::warning_count).sum();
        println!(
            "{} kernel{} linted: {errors} error{}, {warnings} warning{}",
            reports.len(),
            if reports.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    // Errors-only gate: warnings must not break pipelines.
    if reports.iter().any(Report::has_errors) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_model(args: &Args, kernels: &[vt_isa::Kernel]) -> ExitCode {
    let cfg = ModelConfig::default();
    let models: Vec<_> = kernels.iter().map(|k| model(k, &cfg)).collect();
    if args.json {
        let arr = Json::Array(models.iter().map(ToJson::to_json).collect());
        println!("{}", arr.pretty());
    } else {
        print!("{}", vt_analysis::model::table(&models));
        let mut flagged = 0usize;
        for m in &models {
            for d in &m.diagnostics {
                if flagged == 0 {
                    println!();
                }
                flagged += 1;
                println!("{}: {d}", m.kernel);
            }
        }
        let sched = models.iter().filter(|m| m.scheduling_limited()).count();
        println!(
            "\n{} kernel{} modelled: {sched} scheduling-limited, {} capacity-limited, \
             {flagged} memory/divergence finding{}",
            models.len(),
            if models.len() == 1 { "" } else { "s" },
            models.len() - sched,
            if flagged == 1 { "" } else { "s" },
        );
    }
    // The model's findings are all warnings; only usage errors fail.
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let kernels = match kernels(&args) {
        Ok(k) => k,
        Err(msg) => {
            eprintln!("vtlint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.model {
        run_model(&args, &kernels)
    } else {
        run_lints(&args, &kernels)
    }
}
