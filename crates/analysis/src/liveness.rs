//! Liveness analysis: dead stores and register pressure.
//!
//! A backward may-analysis over registers. Two consumers:
//!
//! * **dead-store** — a pure instruction (no memory or control side
//!   effects) whose destination is not live afterwards did nothing.
//! * **register pressure** — the maximum number of simultaneously-live
//!   registers at any reachable program point, the analyzer's lower
//!   bound on how many architectural registers the kernel really needs.

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitSet, Direction, Meet, Problem, Solution};
use crate::diag::{Diagnostic, Rule, Severity};
use vt_isa::Program;

/// Live-register sets around every instruction.
pub struct Liveness {
    sol: Solution,
}

impl Liveness {
    /// Runs the backward may-analysis.
    pub fn compute(program: &Program, cfg: &Cfg, num_regs: u16) -> Liveness {
        let n = program.len();
        let bits = usize::from(num_regs);
        let mut gen = vec![BitSet::new(bits); n];
        let mut kill = vec![BitSet::new(bits); n];
        for (pc, instr) in program.iter() {
            for r in instr.src_regs() {
                gen[pc].insert(usize::from(r.0));
            }
            if let Some(d) = instr.dst() {
                // A register both read and written (e.g. `add r0, r0, 1`)
                // stays in gen: the read happens before the write.
                if !gen[pc].contains(usize::from(d.0)) {
                    kill[pc].insert(usize::from(d.0));
                }
            }
        }
        let sol = solve(&Problem {
            cfg,
            bits,
            direction: Direction::Backward,
            meet: Meet::Union,
            gen,
            kill,
            boundary: BitSet::new(bits),
        });
        Liveness { sol }
    }

    /// Registers live immediately before `pc`.
    pub fn live_in(&self, pc: usize) -> &BitSet {
        &self.sol.input[pc]
    }

    /// Registers live immediately after `pc`.
    pub fn live_out(&self, pc: usize) -> &BitSet {
        &self.sol.output[pc]
    }

    /// Maximum live-set size over all reachable program points.
    pub fn pressure(&self, reachable: &BitSet) -> u16 {
        let mut max = 0;
        for pc in 0..self.sol.input.len() {
            if reachable.contains(pc) {
                max = max
                    .max(self.sol.input[pc].count())
                    .max(self.sol.output[pc].count());
            }
        }
        max as u16
    }

    /// Flags pure instructions whose destination is never read.
    pub fn dead_store_diags(&self, program: &Program, reachable: &BitSet) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for (pc, instr) in program.iter() {
            if !reachable.contains(pc) || !instr.is_pure() {
                continue;
            }
            let Some(d) = instr.dst() else { continue };
            if !self.sol.output[pc].contains(usize::from(d.0)) {
                diags.push(Diagnostic::at(
                    Severity::Warning,
                    Rule::DeadStore,
                    pc,
                    format!("{d} is written here but never read afterwards"),
                ));
            }
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::op::{AluOp, MemSpace, Operand, Reg};
    use vt_isa::Instr;

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    fn analyse(p: &Program, regs: u16) -> (BitSet, Liveness) {
        let cfg = Cfg::build(p);
        let l = Liveness::compute(p, &cfg, regs);
        (cfg.reachable(), l)
    }

    #[test]
    fn consumed_value_is_live() {
        let p = Program::new(vec![
            mov(0, Operand::Imm(1)),
            Instr::St {
                space: MemSpace::Global,
                addr: Operand::Imm(0),
                offset: 0,
                src: Operand::Reg(Reg(0)),
            },
            Instr::Exit,
        ]);
        let (reach, l) = analyse(&p, 1);
        assert!(l.live_out(0).contains(0));
        assert!(l.dead_store_diags(&p, &reach).is_empty());
        assert_eq!(l.pressure(&reach), 1);
    }

    #[test]
    fn unread_pure_def_is_dead() {
        let p = Program::new(vec![mov(0, Operand::Imm(1)), Instr::Exit]);
        let (reach, l) = analyse(&p, 1);
        let diags = l.dead_store_diags(&p, &reach);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::DeadStore);
        assert_eq!(diags[0].pc, Some(0));
    }

    #[test]
    fn loads_are_never_dead_stores() {
        // A load's destination being unused is a performance question,
        // not a dead *computation*: the memory access still happens.
        let p = Program::new(vec![
            Instr::Ld {
                space: MemSpace::Global,
                dst: Reg(0),
                addr: Operand::Imm(0),
                offset: 0,
            },
            Instr::Exit,
        ]);
        let (reach, l) = analyse(&p, 1);
        assert!(l.dead_store_diags(&p, &reach).is_empty());
    }

    #[test]
    fn overwritten_before_read_is_dead() {
        let p = Program::new(vec![
            mov(0, Operand::Imm(1)),
            mov(0, Operand::Imm(2)),
            Instr::St {
                space: MemSpace::Global,
                addr: Operand::Imm(0),
                offset: 0,
                src: Operand::Reg(Reg(0)),
            },
            Instr::Exit,
        ]);
        let (reach, l) = analyse(&p, 1);
        let diags = l.dead_store_diags(&p, &reach);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pc, Some(0));
    }

    #[test]
    fn pressure_counts_overlapping_lifetimes() {
        // r0 and r1 are both live across the second mov.
        let p = Program::new(vec![
            mov(0, Operand::Imm(1)),
            mov(1, Operand::Imm(2)),
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                a: Operand::Reg(Reg(0)),
                b: Operand::Reg(Reg(1)),
            },
            Instr::St {
                space: MemSpace::Global,
                addr: Operand::Imm(0),
                offset: 0,
                src: Operand::Reg(Reg(2)),
            },
            Instr::Exit,
        ]);
        let (reach, l) = analyse(&p, 3);
        assert_eq!(l.pressure(&reach), 2);
        assert!(l.live_in(2).contains(0) && l.live_in(2).contains(1));
    }

    #[test]
    fn self_update_keeps_register_live_through_loops() {
        // 0: init; 1: brc exit; 2: r0 += 1 (read+write); 3: bra 1;
        // 4: store r0.
        let p = Program::new(vec![
            mov(0, Operand::Imm(0)),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: vt_isa::op::BranchIf::Zero,
                target: 4,
                reconv: 4,
            },
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Instr::Bra { target: 1 },
            Instr::St {
                space: MemSpace::Global,
                addr: Operand::Imm(0),
                offset: 0,
                src: Operand::Reg(Reg(0)),
            },
            Instr::Exit,
        ]);
        let (reach, l) = analyse(&p, 1);
        assert!(l.dead_store_diags(&p, &reach).is_empty());
        assert!(l.live_in(1).contains(0));
    }
}
