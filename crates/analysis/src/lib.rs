//! Static analysis for virtual-thread kernels.
//!
//! `vt-analysis` inspects a [`vt_isa::Kernel`] without executing it and
//! produces a [`Report`] of findings:
//!
//! * **CFG / reconvergence** ([`cfg`]) — builds the instruction-level
//!   control-flow graph, computes post-dominators, and checks every
//!   `brc`'s declared reconvergence PC against its immediate
//!   post-dominator ([`Rule::BadReconv`]).
//! * **Dataflow** ([`dataflow`], [`defs`], [`liveness`]) — a generic
//!   bit-vector solver instantiated as reaching definitions
//!   ([`Rule::UninitRead`]) and liveness ([`Rule::DeadStore`], plus the
//!   register-pressure estimate).
//! * **Uniformity / barriers** ([`uniform`], [`barrier`]) — classifies
//!   definitions and control flow as CTA-uniform or divergent, then
//!   rejects barriers reachable under divergence
//!   ([`Rule::DivergentBarrier`]) and divergent branches whose arms
//!   contain different barrier counts ([`Rule::BarrierMismatch`]).
//! * **Shared-memory races** ([`race`]) — pairs shared accesses within a
//!   barrier interval and flags pairs two distinct lanes could aim at
//!   the same word ([`Rule::SharedRace`]).
//! * **Performance model** ([`occupancy`], [`memaccess`], [`model`]) —
//!   the static occupancy and VT-benefit model: exact per-resource
//!   resident-CTA bounds from the shared [`vt_isa::limits`] constants,
//!   scheduling-vs-capacity limiter classification, per-architecture
//!   residency predictions, coalescing-width and bank-conflict estimates
//!   per memory access ([`Rule::UncoalescedGlobal`],
//!   [`Rule::SmemBankConflict`]) and divergence nesting depth
//!   ([`Rule::DeepDivergence`]). Cross-validated against the timing
//!   simulator by the oracle tests in `tests/`.
//!
//! The `vtlint` binary drives all of this over `.vtasm` files or the
//! built-in workload suite (`--model` selects the performance model).
#![forbid(unsafe_code)]

pub mod barrier;
pub mod cfg;
pub mod dataflow;
pub mod defs;
pub mod diag;
pub mod liveness;
pub mod memaccess;
pub mod model;
pub mod occupancy;
pub mod race;
pub mod uniform;

pub use cfg::Cfg;
pub use dataflow::{solve, BitSet, Direction, Meet, Problem, Solution};
pub use defs::Reaching;
pub use diag::{Diagnostic, Report, Rule, Severity};
pub use liveness::Liveness;
pub use memaccess::MemSite;
pub use model::{model, ArchPrediction, KernelModel, ModelConfig};
pub use occupancy::{standard_archs, ArchModel, OccupancyModel, ResidencyModel};
pub use race::{classify, may_overlap, AddrClass, Base};
pub use uniform::Uniformity;

use vt_isa::Kernel;

/// Highest register index referenced by any instruction, plus one.
pub fn used_regs(program: &vt_isa::Program) -> u16 {
    let mut max = 0u32;
    for (_, instr) in program.iter() {
        if let Some(d) = instr.dst() {
            max = max.max(u32::from(d.0) + 1);
        }
        for r in instr.src_regs() {
            max = max.max(u32::from(r.0) + 1);
        }
    }
    max as u16
}

/// Runs every analysis pass over `kernel` and collects the findings.
pub fn analyze(kernel: &Kernel) -> Report {
    let program = kernel.program();
    let declared = kernel.regs_per_thread();
    let used = used_regs(program);
    // Analyse over the wider of the two so an over-referencing program
    // still gets a report instead of an index panic.
    let num_regs = declared.max(used);

    let cfg = Cfg::build(program);
    let reachable = cfg.reachable();
    let mut diagnostics = cfg.check_reconvergence(program);

    let reaching = Reaching::compute(program, &cfg, num_regs);
    diagnostics.extend(reaching.uninit_diags(program, &reachable));

    let liveness = Liveness::compute(program, &cfg, num_regs);
    diagnostics.extend(liveness.dead_store_diags(program, &reachable));
    let register_pressure = liveness.pressure(&reachable);

    let uniformity = Uniformity::compute(program, &reaching, &reachable);
    diagnostics.extend(barrier::check(program, &uniformity, &reachable));
    diagnostics.extend(race::check(
        program,
        &cfg,
        &reaching,
        &uniformity,
        &reachable,
        kernel.threads_per_cta(),
    ));

    if declared > used {
        diagnostics.push(Diagnostic::kernel(
            Severity::Info,
            Rule::OverDeclaredRegs,
            format!(
                "kernel declares {declared} registers per thread but only \
                 r0..r{} appear in the program",
                used.saturating_sub(1)
            ),
        ));
    }

    diagnostics.sort_by_key(|d| (d.pc.unwrap_or(usize::MAX), d.severity, d.rule));

    let barriers = barrier::count(program);
    Report {
        kernel: kernel.name().to_string(),
        declared_regs: declared,
        used_regs: used,
        register_pressure,
        barriers,
        barrier_intervals: barriers + 1,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::kernel::MemImage;
    use vt_isa::op::{AluOp, BranchIf, MemSpace, Operand, Reg, Sreg};
    use vt_isa::{Instr, Kernel, Program};

    fn kernel(name: &str, regs: u16, smem: u32, instrs: Vec<Instr>) -> Kernel {
        Kernel::new(
            name,
            Program::new(instrs),
            1,
            64,
            regs,
            smem,
            MemImage::zeroed(64),
        )
        .unwrap()
    }

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    #[test]
    fn clean_kernel_reports_no_findings() {
        let k = kernel(
            "clean",
            2,
            0,
            vec![
                mov(0, Operand::Sreg(Sreg::Tid)),
                Instr::Alu {
                    op: AluOp::Shl,
                    dst: Reg(1),
                    a: Operand::Reg(Reg(0)),
                    b: Operand::Imm(2),
                },
                Instr::St {
                    space: MemSpace::Global,
                    addr: Operand::Reg(Reg(1)),
                    offset: 0,
                    src: Operand::Reg(Reg(0)),
                },
                Instr::Exit,
            ],
        );
        let r = analyze(&k);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.used_regs, 2);
        assert_eq!(r.register_pressure, 2);
        assert_eq!(r.barrier_intervals, 1);
    }

    #[test]
    fn every_rule_fires_on_its_fixture() {
        // bad-reconv: joins at 2 but declares 3.
        let k = kernel(
            "bad-reconv",
            1,
            0,
            vec![
                Instr::BraCond {
                    pred: Operand::Imm(1),
                    when: BranchIf::Zero,
                    target: 2,
                    reconv: 3,
                },
                mov(0, Operand::Imm(1)),
                mov(0, Operand::Imm(2)),
                Instr::St {
                    space: MemSpace::Global,
                    addr: Operand::Imm(0),
                    offset: 0,
                    src: Operand::Reg(Reg(0)),
                },
                Instr::Exit,
            ],
        );
        assert!(analyze(&k)
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::BadReconv));

        // uninit-read + dead-store in one program.
        let k = kernel(
            "uninit",
            2,
            0,
            vec![mov(1, Operand::Reg(Reg(0))), Instr::Exit],
        );
        let r = analyze(&k);
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::UninitRead));
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::DeadStore));

        // divergent-barrier + barrier-mismatch: bar under a tid guard.
        let k = kernel(
            "div-bar",
            1,
            0,
            vec![
                mov(0, Operand::Sreg(Sreg::Tid)),
                Instr::BraCond {
                    pred: Operand::Reg(Reg(0)),
                    when: BranchIf::Zero,
                    target: 3,
                    reconv: 3,
                },
                Instr::Bar,
                Instr::Exit,
            ],
        );
        let r = analyze(&k);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DivergentBarrier));
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::BarrierMismatch));
        assert!(r.has_errors());

        // shared-race: every lane stores to the same word.
        let k = kernel(
            "race",
            1,
            64,
            vec![
                Instr::St {
                    space: MemSpace::Shared,
                    addr: Operand::Imm(0),
                    offset: 0,
                    src: Operand::Imm(1),
                },
                Instr::Exit,
            ],
        );
        assert!(analyze(&k)
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::SharedRace));

        // over-declared-regs: declares 8, uses 1.
        let k = kernel("padded", 8, 0, vec![mov(0, Operand::Imm(1)), Instr::Exit]);
        let r = analyze(&k);
        let over: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::OverDeclaredRegs)
            .collect();
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].severity, Severity::Info);
        assert_eq!(r.used_regs, 1);
        assert_eq!(r.declared_regs, 8);
    }

    #[test]
    fn diagnostics_come_out_sorted_by_pc() {
        let k = kernel(
            "sorted",
            4,
            0,
            vec![
                mov(3, Operand::Reg(Reg(2))),
                mov(1, Operand::Reg(Reg(0))),
                Instr::Exit,
            ],
        );
        let r = analyze(&k);
        let pcs: Vec<_> = r.diagnostics.iter().map(|d| d.pc).collect();
        let mut sorted = pcs.clone();
        sorted.sort_by_key(|pc| pc.unwrap_or(usize::MAX));
        assert_eq!(pcs, sorted);
    }
}
