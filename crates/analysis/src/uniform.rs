//! Thread-uniformity analysis.
//!
//! Classifies every register definition as CTA-uniform (all threads of a
//! CTA compute the same value) or varying, and every instruction as
//! executing under uniform or possibly-divergent control. Seeds:
//! `%tid`, `%lane` and `%warpid` vary; immediates, `%ctaid`, `%ntid`
//! and `%ncta` are uniform; loaded values are conservatively varying.
//! A definition under divergent control is varying regardless of its
//! operands (control dependence).
//!
//! Divergent control is derived from the structured-branch encoding: a
//! `brc` with a varying predicate makes everything between it and its
//! reconvergence PC divergent, and any back edge leaving that region
//! drags the loop-header range in too (later iterations run under a
//! partial mask).
//!
//! The whole thing is a mutual fixpoint — divergence makes definitions
//! varying, varying predicates create divergence — iterated to
//! stability. Everything is monotone, so it terminates.

use crate::dataflow::BitSet;
use crate::defs::Reaching;
use vt_isa::op::Operand;
use vt_isa::{Instr, Program};

/// Per-definition and per-instruction uniformity facts.
pub struct Uniformity {
    /// Whether the value defined at each PC may differ across threads.
    pub varying_def: Vec<bool>,
    /// Whether each PC may execute with only a subset of lanes active.
    pub divergent: Vec<bool>,
    /// Whether each PC is a `brc` with a varying predicate.
    pub divergent_branch: Vec<bool>,
}

impl Uniformity {
    /// Runs the fixpoint over `program`.
    pub fn compute(program: &Program, reaching: &Reaching, reachable: &BitSet) -> Uniformity {
        let n = program.len();
        let mut u = Uniformity {
            varying_def: vec![false; n],
            divergent: vec![false; n],
            divergent_branch: vec![false; n],
        };
        loop {
            let mut changed = false;
            for (pc, instr) in program.iter() {
                if !reachable.contains(pc) {
                    continue;
                }
                if let Instr::BraCond { pred, .. } = instr {
                    if !u.divergent_branch[pc] && u.operand_varying(reaching, pc, *pred) {
                        u.divergent_branch[pc] = true;
                        changed = true;
                    }
                }
            }
            let div = u.divergent_regions(program);
            if div != u.divergent {
                u.divergent = div;
                changed = true;
            }
            for (pc, instr) in program.iter() {
                if !reachable.contains(pc) || instr.dst().is_none() || u.varying_def[pc] {
                    continue;
                }
                let varying = u.divergent[pc]
                    || matches!(instr, Instr::Ld { .. } | Instr::Atom { .. })
                    || instr
                        .sources()
                        .iter()
                        .any(|&op| u.operand_varying(reaching, pc, op));
                if varying {
                    u.varying_def[pc] = true;
                    changed = true;
                }
            }
            if !changed {
                return u;
            }
        }
    }

    /// Whether `op`, read at `pc`, may differ across threads of a CTA.
    pub fn operand_varying(&self, reaching: &Reaching, pc: usize, op: Operand) -> bool {
        match op {
            Operand::Imm(_) => false,
            Operand::Sreg(s) => s.is_thread_varying(),
            // The launch value (zero) is uniform, so only real defs count.
            Operand::Reg(r) => reaching.defs_at(pc, r).iter().any(|&d| self.varying_def[d]),
        }
    }

    /// Marks the PCs covered by the current divergent branches: the
    /// branch-to-reconvergence span, widened over back edges so loop
    /// headers re-entered under a partial mask are included.
    fn divergent_regions(&self, program: &Program) -> Vec<bool> {
        let n = program.len();
        let mut div = vec![false; n];
        for (pc, instr) in program.iter() {
            if !self.divergent_branch[pc] {
                continue;
            }
            let Instr::BraCond { reconv, .. } = *instr else {
                continue;
            };
            let hi = reconv.min(n);
            for d in div.iter_mut().take(hi).skip(pc + 1) {
                *d = true;
            }
            for j in pc + 1..hi {
                if let Instr::Bra { target } = *program.fetch(j) {
                    if target <= pc {
                        for d in div.iter_mut().take(pc + 1).skip(target) {
                            *d = true;
                        }
                    }
                }
            }
        }
        div
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use vt_isa::op::{AluOp, BranchIf, MemSpace, Reg, Sreg};

    fn analyse(p: &Program, regs: u16) -> (Reaching, BitSet, Uniformity) {
        let cfg = Cfg::build(p);
        let reach = cfg.reachable();
        let r = Reaching::compute(p, &cfg, regs);
        let u = Uniformity::compute(p, &r, &reach);
        (r, reach, u)
    }

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    #[test]
    fn tid_taints_derived_values() {
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            mov(1, Operand::Sreg(Sreg::CtaId)),
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                a: Operand::Reg(Reg(0)),
                b: Operand::Reg(Reg(1)),
            },
            Instr::Exit,
        ]);
        let (_, _, u) = analyse(&p, 3);
        assert!(u.varying_def[0], "tid is varying");
        assert!(!u.varying_def[1], "ctaid is CTA-uniform");
        assert!(u.varying_def[2], "tid + ctaid is varying");
    }

    #[test]
    fn loads_are_conservatively_varying() {
        let p = Program::new(vec![
            Instr::Ld {
                space: MemSpace::Global,
                dst: Reg(0),
                addr: Operand::Imm(0),
                offset: 0,
            },
            Instr::Exit,
        ]);
        let (_, _, u) = analyse(&p, 1);
        assert!(u.varying_def[0]);
    }

    #[test]
    fn varying_branch_makes_body_divergent_and_taints_defs() {
        // 0: p = tid; 1: brc p @3 reconv 3; 2: r1 = 7 (in region);
        // 3: r2 = 7 (after reconvergence); 4: exit.
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::Zero,
                target: 3,
                reconv: 3,
            },
            mov(1, Operand::Imm(7)),
            mov(2, Operand::Imm(7)),
            Instr::Exit,
        ]);
        let (_, _, u) = analyse(&p, 3);
        assert!(u.divergent_branch[1]);
        assert!(u.divergent[2]);
        assert!(!u.divergent[3], "reconvergence point is uniform again");
        assert!(
            u.varying_def[2],
            "def under divergence is control-dependent"
        );
        assert!(!u.varying_def[3]);
    }

    #[test]
    fn uniform_loop_stays_uniform() {
        // for (r0 = 0; r0 < 10; r0++) — everything CTA-uniform.
        let p = Program::new(vec![
            mov(0, Operand::Imm(0)),
            Instr::Alu {
                op: AluOp::SetLt,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(10),
            },
            Instr::BraCond {
                pred: Operand::Reg(Reg(1)),
                when: BranchIf::Zero,
                target: 5,
                reconv: 5,
            },
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Instr::Bra { target: 1 },
            Instr::Exit,
        ]);
        let (_, _, u) = analyse(&p, 2);
        assert!(!u.divergent_branch[2]);
        assert!(u.divergent.iter().all(|&d| !d));
        assert!(!u.varying_def[0] && !u.varying_def[1] && !u.varying_def[3]);
    }

    #[test]
    fn varying_loop_back_edge_drags_header_into_region() {
        // while (r0 != 0) { r0 = load(...) } with r0 seeded from tid:
        // the condition code at the header re-executes under a partial
        // mask, so defs there are varying too.
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::Alu {
                op: AluOp::SetNe,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(0),
            },
            Instr::BraCond {
                pred: Operand::Reg(Reg(1)),
                when: BranchIf::Zero,
                target: 5,
                reconv: 5,
            },
            mov(2, Operand::Imm(1)),
            Instr::Bra { target: 1 },
            Instr::Exit,
        ]);
        let (_, _, u) = analyse(&p, 3);
        assert!(u.divergent_branch[2]);
        assert!(u.divergent[3], "loop body");
        assert!(u.divergent[1], "header re-entered under partial mask");
        assert!(u.varying_def[3]);
    }
}
