//! Conservative shared-memory race detection.
//!
//! Between two barriers the warps of a CTA run asynchronously, so any
//! two shared-memory accesses in the same barrier interval — including
//! two dynamic instances of the *same* instruction in different lanes —
//! may execute in either order. The detector pairs up accesses that can
//! reach each other without crossing a `bar`, keeps pairs with at least
//! one store, and asks whether two distinct lanes could touch the same
//! 32-bit word.
//!
//! Addresses are classified into the affine form `k·tid + c (+ base)`
//! by chasing single reaching definitions through moves, adds, shifts
//! and multiplies by constants; `base` is an opaque CTA-uniform term (a
//! uniform special register or a uniform unmatched definition).
//! Anything else is `Unknown` and conservatively overlaps everything,
//! so the analysis errs toward reporting: findings are warnings.

use crate::cfg::Cfg;
use crate::dataflow::BitSet;
use crate::defs::Reaching;
use crate::diag::{Diagnostic, Rule, Severity};
use crate::uniform::Uniformity;
use vt_isa::op::{AluOp, MemSpace, Operand, Sreg};
use vt_isa::{Instr, Program};

/// Symbolic classification of an address expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrClass {
    /// `k·tid + c + base` in bytes.
    Affine {
        /// Per-thread stride (coefficient of `%tid`).
        k: i64,
        /// Constant byte offset.
        c: i64,
        /// Opaque CTA-uniform term shared by all lanes, if any.
        base: Option<Base>,
    },
    /// Not expressible in the affine form; overlaps everything.
    Unknown,
}

/// An opaque uniform term two affine forms can share (and cancel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// A CTA-uniform special register.
    Sreg(Sreg),
    /// The (uniform) value defined at this PC.
    Def(usize),
}

const MAX_DEPTH: u32 = 16;

/// Classifies the operand read at `pc` as an address expression.
pub fn classify(
    program: &Program,
    reaching: &Reaching,
    uniform: &Uniformity,
    pc: usize,
    op: Operand,
    depth: u32,
) -> AddrClass {
    let affine = |k, c, base| AddrClass::Affine { k, c, base };
    if depth == 0 {
        return AddrClass::Unknown;
    }
    match op {
        Operand::Imm(v) => affine(0, i64::from(v), None),
        Operand::Sreg(Sreg::Tid) => affine(1, 0, None),
        Operand::Sreg(s) if !s.is_thread_varying() => affine(0, 0, Some(Base::Sreg(s))),
        Operand::Sreg(_) => AddrClass::Unknown,
        Operand::Reg(r) => {
            let defs = reaching.defs_at(pc, r);
            match (defs.as_slice(), reaching.entry_reaches(pc, r)) {
                // Never written: the launch value, zero.
                ([], _) => affine(0, 0, None),
                ([d], false) => classify_def(program, reaching, uniform, *d, depth - 1),
                // Multiple candidate values (or a write raced against the
                // launch state): give up.
                _ => AddrClass::Unknown,
            }
        }
    }
}

fn classify_def(
    program: &Program,
    reaching: &Reaching,
    uniform: &Uniformity,
    d: usize,
    depth: u32,
) -> AddrClass {
    let class = |op| classify(program, reaching, uniform, d, op, depth);
    match *program.fetch(d) {
        Instr::Alu {
            op: AluOp::Mov, a, ..
        } => class(a),
        Instr::Alu {
            op: AluOp::Add,
            a,
            b,
            ..
        } => add(class(a), class(b)),
        Instr::Alu {
            op: AluOp::Sub,
            a,
            b,
            ..
        } => sub(class(a), class(b)),
        Instr::Alu {
            op: AluOp::Mul,
            a,
            b,
            ..
        } => mul(class(a), class(b)),
        Instr::Alu {
            op: AluOp::Shl,
            a,
            b,
            ..
        } => match class(b) {
            AddrClass::Affine {
                k: 0,
                c: sh,
                base: None,
            } if (0..32).contains(&sh) => mul(
                class(a),
                AddrClass::Affine {
                    k: 0,
                    c: 1 << sh,
                    base: None,
                },
            ),
            _ => AddrClass::Unknown,
        },
        Instr::Mad { a, b, c, .. } => add(mul(class(a), class(b)), class(c)),
        // An unmatched definition is still a usable base when every lane
        // computes the same value.
        _ if !uniform.varying_def[d] => AddrClass::Affine {
            k: 0,
            c: 0,
            base: Some(Base::Def(d)),
        },
        _ => AddrClass::Unknown,
    }
}

fn add(a: AddrClass, b: AddrClass) -> AddrClass {
    let (
        AddrClass::Affine {
            k: ka,
            c: ca,
            base: ba,
        },
        AddrClass::Affine {
            k: kb,
            c: cb,
            base: bb,
        },
    ) = (a, b)
    else {
        return AddrClass::Unknown;
    };
    let base = match (ba, bb) {
        (None, b) | (b, None) => b,
        (Some(_), Some(_)) => return AddrClass::Unknown,
    };
    AddrClass::Affine {
        k: ka + kb,
        c: ca + cb,
        base,
    }
}

fn sub(a: AddrClass, b: AddrClass) -> AddrClass {
    let (
        AddrClass::Affine {
            k: ka,
            c: ca,
            base: ba,
        },
        AddrClass::Affine {
            k: kb,
            c: cb,
            base: bb,
        },
    ) = (a, b)
    else {
        return AddrClass::Unknown;
    };
    let base = match (ba, bb) {
        (b, None) => b,
        (a, b) if a == b => None,
        _ => return AddrClass::Unknown,
    };
    AddrClass::Affine {
        k: ka - kb,
        c: ca - cb,
        base,
    }
}

fn mul(a: AddrClass, b: AddrClass) -> AddrClass {
    // One side must be a plain constant; scaling an opaque base is not
    // representable.
    let (scale, term) = match (a, b) {
        (
            AddrClass::Affine {
                k: 0,
                c,
                base: None,
            },
            t,
        ) => (c, t),
        (
            t,
            AddrClass::Affine {
                k: 0,
                c,
                base: None,
            },
        ) => (c, t),
        _ => return AddrClass::Unknown,
    };
    match term {
        AddrClass::Affine { k, c, base: None } => AddrClass::Affine {
            k: k * scale,
            c: c * scale,
            base: None,
        },
        _ => AddrClass::Unknown,
    }
}

/// Whether two classified accesses may touch the same 32-bit word from
/// two *distinct* lanes of a CTA.
pub fn may_overlap(a: AddrClass, b: AddrClass, threads_per_cta: u32) -> bool {
    let (
        AddrClass::Affine {
            k: ka,
            c: ca,
            base: ba,
        },
        AddrClass::Affine {
            k: kb,
            c: cb,
            base: bb,
        },
    ) = (a, b)
    else {
        return true;
    };
    if ba != bb || ka != kb {
        return true;
    }
    let k = ka;
    if k == 0 {
        // Every lane of each access hits one fixed word each.
        return (ca - cb).abs() < 4;
    }
    // Lane i of A touches ka·i + ca; lane j of B touches k·j + cb. With
    // a word-aligned stride and offset delta the accesses stay on one
    // 4-byte lattice and only exact address equality can collide.
    if k % 4 != 0 || (ca - cb) % 4 != 0 {
        return true;
    }
    let d = cb - ca;
    if d % k != 0 {
        return false;
    }
    let lanediff = d / k;
    lanediff != 0 && lanediff.unsigned_abs() < u64::from(threads_per_cta)
}

/// One shared-memory access site.
struct Access {
    pc: usize,
    class: AddrClass,
    store: bool,
}

fn shared_accesses(
    program: &Program,
    reaching: &Reaching,
    uniform: &Uniformity,
    reachable: &BitSet,
) -> Vec<Access> {
    let mut out = Vec::new();
    for (pc, instr) in program.iter() {
        if !reachable.contains(pc) {
            continue;
        }
        let (addr, offset, store) = match *instr {
            Instr::Ld {
                space: MemSpace::Shared,
                addr,
                offset,
                ..
            } => (addr, offset, false),
            Instr::St {
                space: MemSpace::Shared,
                addr,
                offset,
                ..
            } => (addr, offset, true),
            _ => continue,
        };
        let class = match classify(program, reaching, uniform, pc, addr, MAX_DEPTH) {
            AddrClass::Affine { k, c, base } => AddrClass::Affine {
                k,
                c: c + i64::from(offset),
                base,
            },
            AddrClass::Unknown => AddrClass::Unknown,
        };
        out.push(Access { pc, class, store });
    }
    out
}

/// PCs reachable from `from` without executing a `bar` (the start PC's
/// own instruction is not crossed; `bar` nodes are entered but not
/// passed through).
fn barrier_free_reach(cfg: &Cfg, program: &Program, from: usize) -> BitSet {
    let mut seen = BitSet::new(cfg.len);
    let mut stack: Vec<usize> = cfg.succs[from].clone();
    while let Some(v) = stack.pop() {
        if v == cfg.exit() || !seen.insert(v) {
            continue;
        }
        if matches!(program.fetch(v), Instr::Bar) {
            continue;
        }
        stack.extend_from_slice(&cfg.succs[v]);
    }
    seen
}

/// Flags pairs of same-interval shared accesses (at least one store)
/// that two distinct lanes could aim at the same word.
pub fn check(
    program: &Program,
    cfg: &Cfg,
    reaching: &Reaching,
    uniform: &Uniformity,
    reachable: &BitSet,
    threads_per_cta: u32,
) -> Vec<Diagnostic> {
    let accesses = shared_accesses(program, reaching, uniform, reachable);
    let reach: Vec<BitSet> = accesses
        .iter()
        .map(|a| barrier_free_reach(cfg, program, a.pc))
        .collect();
    let mut diags = Vec::new();
    let kind = |a: &Access| if a.store { "store" } else { "load" };
    for (i, a) in accesses.iter().enumerate() {
        for (j, b) in accesses.iter().enumerate().skip(i) {
            if !(a.store || b.store) {
                continue;
            }
            // A store always forms an interval with itself: one dynamic
            // execution already runs in every lane concurrently.
            let same_interval = if i == j {
                a.store
            } else {
                reach[i].contains(b.pc) || reach[j].contains(a.pc)
            };
            if !same_interval || !may_overlap(a.class, b.class, threads_per_cta) {
                continue;
            }
            let msg = if i == j {
                format!(
                    "shared store at pc {}: two lanes may write the same word \
                     (the address does not vary by a word-aligned per-thread stride)",
                    a.pc
                )
            } else {
                format!(
                    "shared {} at pc {} and shared {} at pc {} may touch the same \
                     word from different lanes with no barrier in between",
                    kind(a),
                    a.pc,
                    kind(b),
                    b.pc
                )
            };
            diags.push(Diagnostic::at(
                Severity::Warning,
                Rule::SharedRace,
                a.pc,
                msg,
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::op::{BranchIf, Reg};

    fn analyse(p: &Program, regs: u16, threads: u32) -> Vec<Diagnostic> {
        let cfg = Cfg::build(p);
        let reach = cfg.reachable();
        let r = Reaching::compute(p, &cfg, regs);
        let u = Uniformity::compute(p, &r, &reach);
        check(p, &cfg, &r, &u, &reach, threads)
    }

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    fn st_shared(addr: Operand, offset: i32) -> Instr {
        Instr::St {
            space: MemSpace::Shared,
            addr,
            offset,
            src: Operand::Imm(1),
        }
    }

    fn ld_shared(dst: u16, addr: Operand, offset: i32) -> Instr {
        Instr::Ld {
            space: MemSpace::Shared,
            dst: Reg(dst),
            addr,
            offset,
        }
    }

    /// `rdst = tid * 4` via shl.
    fn tid_word_addr(dst: u16, tid_reg: u16) -> [Instr; 2] {
        [
            mov(tid_reg, Operand::Sreg(Sreg::Tid)),
            Instr::Alu {
                op: AluOp::Shl,
                dst: Reg(dst),
                a: Operand::Reg(Reg(tid_reg)),
                b: Operand::Imm(2),
            },
        ]
    }

    #[test]
    fn per_thread_slots_are_race_free() {
        let [a, b] = tid_word_addr(1, 0);
        let p = Program::new(vec![
            a,
            b,
            st_shared(Operand::Reg(Reg(1)), 0),
            ld_shared(2, Operand::Reg(Reg(1)), 0),
            Instr::Exit,
        ]);
        assert!(analyse(&p, 3, 64).is_empty());
    }

    #[test]
    fn uniform_store_races_with_itself() {
        let p = Program::new(vec![st_shared(Operand::Imm(0), 0), Instr::Exit]);
        let diags = analyse(&p, 1, 64);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::SharedRace);
        assert!(diags[0].message.contains("two lanes may write"));
    }

    #[test]
    fn neighbour_slot_read_without_barrier_races() {
        // st shm[tid*4]; ld shm[tid*4 + 4] — lane i reads lane i+1's slot.
        let [a, b] = tid_word_addr(1, 0);
        let p = Program::new(vec![
            a,
            b,
            st_shared(Operand::Reg(Reg(1)), 0),
            ld_shared(2, Operand::Reg(Reg(1)), 4),
            Instr::Exit,
        ]);
        let diags = analyse(&p, 3, 64);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pc, Some(2));
    }

    #[test]
    fn barrier_separates_the_interval() {
        // Same as above but with a bar between store and load: clean.
        let [a, b] = tid_word_addr(1, 0);
        let p = Program::new(vec![
            a,
            b,
            st_shared(Operand::Reg(Reg(1)), 0),
            Instr::Bar,
            ld_shared(2, Operand::Reg(Reg(1)), 4),
            Instr::Exit,
        ]);
        assert!(analyse(&p, 3, 64).is_empty());
    }

    #[test]
    fn loop_back_edge_joins_accesses_into_one_interval() {
        // ld at the top of a barrier-free loop body, st at the bottom:
        // the back edge makes them the same interval in both orders.
        let [a, b] = tid_word_addr(1, 0);
        let p = Program::new(vec![
            a,
            b,
            Instr::BraCond {
                pred: Operand::Imm(1),
                when: BranchIf::Zero,
                target: 6,
                reconv: 6,
            },
            ld_shared(2, Operand::Reg(Reg(1)), 4),
            st_shared(Operand::Reg(Reg(1)), 0),
            Instr::Bra { target: 2 },
            Instr::Exit,
        ]);
        let diags = analyse(&p, 3, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn unknown_addresses_are_conservative() {
        // Address loaded from memory: unclassifiable, so a following
        // store to a disjoint-looking slot still warns.
        let p = Program::new(vec![
            Instr::Ld {
                space: MemSpace::Global,
                dst: Reg(0),
                addr: Operand::Imm(0),
                offset: 0,
            },
            st_shared(Operand::Reg(Reg(0)), 0),
            Instr::Exit,
        ]);
        let diags = analyse(&p, 1, 64);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn distinct_uniform_words_do_not_collide() {
        // Two uniform stores to different words race only with
        // themselves, not each other.
        let p = Program::new(vec![
            st_shared(Operand::Imm(0), 0),
            st_shared(Operand::Imm(64), 0),
            Instr::Exit,
        ]);
        let diags = analyse(&p, 1, 64);
        assert_eq!(diags.len(), 2);
        assert!(diags
            .iter()
            .all(|d| d.message.contains("two lanes may write")));
    }

    #[test]
    fn lane_shift_beyond_cta_cannot_collide() {
        // ld shm[tid*4 + 1024] with 64 threads: 256-lane shift, out of
        // range of any lane in the CTA.
        let [a, b] = tid_word_addr(1, 0);
        let p = Program::new(vec![
            a,
            b,
            st_shared(Operand::Reg(Reg(1)), 0),
            ld_shared(2, Operand::Reg(Reg(1)), 1024),
            Instr::Exit,
        ]);
        assert!(analyse(&p, 3, 64).is_empty());
        // With a big enough CTA the shift is back in range.
        let diags = analyse(&p, 3, 512);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn classification_follows_mad_and_mul() {
        // addr = tid * 8 + 16 via mad.
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::Mad {
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(8),
                c: Operand::Imm(16),
            },
            Instr::Exit,
        ]);
        let cfg = Cfg::build(&p);
        let reach = cfg.reachable();
        let r = Reaching::compute(&p, &cfg, 2);
        let u = Uniformity::compute(&p, &r, &reach);
        let class = classify(&p, &r, &u, 2, Operand::Reg(Reg(1)), MAX_DEPTH);
        assert_eq!(
            class,
            AddrClass::Affine {
                k: 8,
                c: 16,
                base: None
            }
        );
    }

    #[test]
    fn uniform_base_terms_cancel() {
        // addr = ctaid*0 + ... simpler: a = ntid + tid*4 on both sides.
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::Alu {
                op: AluOp::Shl,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(2),
            },
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                a: Operand::Reg(Reg(1)),
                b: Operand::Sreg(Sreg::NTid),
            },
            st_shared(Operand::Reg(Reg(2)), 0),
            ld_shared(3, Operand::Reg(Reg(2)), 0),
            Instr::Exit,
        ]);
        assert!(analyse(&p, 4, 64).is_empty());
    }
}
