//! The static performance model: occupancy bounds, per-architecture
//! residency predictions, memory-behaviour estimates and divergence
//! depth for one kernel — everything `vtlint --model` prints and the
//! static-vs-dynamic oracle checks.
//!
//! A [`KernelModel`] is pure arithmetic over the kernel's footprint and
//! program text; it runs in microseconds where the simulator takes
//! seconds, which is the point: ROADMAP's workload zoo and architecture
//! head-to-heads can be *screened* statically and only the interesting
//! points simulated. The load-bearing guarantee is the oracle in
//! `tests/`: for every suite kernel × architecture, the model's
//! predicted peak residency must equal the peak of the engine's per-SM
//! `resident_ctas` metric series, and [`KernelModel::predicts_vt_gain`]
//! must agree with whether the measured VT IPC actually beats baseline.

use crate::diag::Diagnostic;
use crate::memaccess::{self, MemSite};
use crate::occupancy::{standard_archs, OccupancyModel, ResidencyModel, SmLimits};
use crate::{Cfg, Liveness, Reaching, Uniformity};
use vt_isa::op::MemSpace;
use vt_isa::Kernel;
use vt_json::Json;

/// Machine parameters of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Per-SM scheduling/capacity limits.
    pub limits: SmLimits,
    /// Coalescing segment size in bytes (the memory system's line size).
    pub coalesce_segment_bytes: u32,
    /// Shared-memory banks.
    pub smem_banks: u32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            limits: SmLimits::fermi(),
            coalesce_segment_bytes: 128,
            smem_banks: 32,
        }
    }
}

/// One architecture's predicted residency for the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchPrediction {
    /// Architecture label (matches `vt_core::Architecture::label()`).
    pub arch: &'static str,
    /// Residency policy the prediction applied.
    pub residency: ResidencyModel,
    /// Resident-CTA bound per SM under that policy (before clamping by
    /// the CTAs the grid actually assigns to an SM).
    pub resident_bound: u32,
}

/// The full static model of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelModel {
    /// Kernel name.
    pub kernel: String,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Declared registers per thread.
    pub regs_per_thread: u16,
    /// Shared-memory bytes per CTA.
    pub smem_bytes_per_cta: u32,
    /// The occupancy bounds and limiter classification.
    pub occupancy: OccupancyModel,
    /// Predicted resident-CTA bound for each standard architecture.
    pub archs: Vec<ArchPrediction>,
    /// Every memory access site with its static estimates.
    pub mem_sites: Vec<MemSite>,
    /// Maximum divergent-branch nesting depth.
    pub divergence_nesting: u32,
    /// Register-pressure estimate (simultaneously-live registers).
    pub register_pressure: u16,
    /// Memory-behaviour and divergence lints.
    pub diagnostics: Vec<Diagnostic>,
}

impl KernelModel {
    /// The model's limiter-class verdict: does relaxing the scheduling
    /// limit (what Virtual Thread does) let more CTAs reside?
    pub fn scheduling_limited(&self) -> bool {
        self.occupancy.limiter.is_scheduling()
    }

    /// Predicted residency gain of the capacity-only policies over the
    /// baseline (1.0 = no gain).
    pub fn residency_gain(&self) -> f64 {
        self.occupancy.vt_headroom()
    }

    /// Whether the model predicts Virtual Thread improves this kernel's
    /// throughput: extra residency must exist *and* there must be global
    /// memory accesses whose latency the extra CTAs can hide. A kernel
    /// that never touches DRAM gains nothing from deeper multithreading.
    pub fn predicts_vt_gain(&self) -> bool {
        self.scheduling_limited()
            && self.occupancy.bounds.capacity() > self.occupancy.bounds.baseline()
            && self
                .mem_sites
                .iter()
                .any(|s| s.space == MemSpace::Global && !s.is_store)
    }

    /// Count of global sites with no static address estimate
    /// (data-dependent gathers).
    pub fn unknown_global_sites(&self) -> usize {
        self.mem_sites
            .iter()
            .filter(|s| s.space == MemSpace::Global && s.stride.is_none())
            .count()
    }

    /// Worst (largest) coalescing width among estimated global sites,
    /// if any were estimable.
    pub fn worst_segments_per_warp(&self) -> Option<u32> {
        self.mem_sites
            .iter()
            .filter_map(|s| s.segments_per_warp)
            .max()
    }

    /// Worst bank-conflict degree among estimated shared sites.
    pub fn worst_bank_conflict_ways(&self) -> Option<u32> {
        self.mem_sites
            .iter()
            .filter_map(|s| s.bank_conflict_ways)
            .max()
    }
}

/// Runs the full static model over `kernel`.
pub fn model(kernel: &Kernel, cfg: &ModelConfig) -> KernelModel {
    let program = kernel.program();
    let num_regs = kernel.regs_per_thread().max(crate::used_regs(program));

    let graph = Cfg::build(program);
    let reachable = graph.reachable();
    let reaching = Reaching::compute(program, &graph, num_regs);
    let liveness = Liveness::compute(program, &graph, num_regs);
    let uniformity = Uniformity::compute(program, &reaching, &reachable);

    let occupancy = OccupancyModel::compute(&cfg.limits, kernel);
    let archs = standard_archs()
        .iter()
        .map(|a| ArchPrediction {
            arch: a.label,
            residency: a.residency,
            resident_bound: a.residency.resident_bound(&occupancy.bounds),
        })
        .collect();

    let mem_sites = memaccess::sites(
        program,
        &reaching,
        &uniformity,
        &reachable,
        cfg.coalesce_segment_bytes,
        cfg.smem_banks,
    );
    let divergence_nesting = memaccess::divergence_nesting(program, &uniformity, &reachable);
    let diagnostics = memaccess::lints(&mem_sites, divergence_nesting);

    KernelModel {
        kernel: kernel.name().to_string(),
        threads_per_cta: kernel.threads_per_cta(),
        warps_per_cta: kernel.warps_per_cta(),
        regs_per_thread: kernel.regs_per_thread(),
        smem_bytes_per_cta: kernel.smem_bytes_per_cta(),
        occupancy,
        archs,
        mem_sites,
        divergence_nesting,
        register_pressure: liveness.pressure(&reachable),
        diagnostics,
    }
}

impl vt_json::ToJson for MemSite {
    fn to_json(&self) -> Json {
        let opt = |v: Option<u32>| match v {
            Some(v) => Json::UInt(u64::from(v)),
            None => Json::Null,
        };
        Json::Object(vec![
            ("pc".to_string(), Json::UInt(self.pc as u64)),
            ("space".to_string(), Json::Str(self.space.to_string())),
            ("store".to_string(), Json::Bool(self.is_store)),
            (
                "stride".to_string(),
                match self.stride {
                    Some(k) => Json::Int(k),
                    None => Json::Null,
                },
            ),
            ("segments_per_warp".to_string(), opt(self.segments_per_warp)),
            (
                "bank_conflict_ways".to_string(),
                opt(self.bank_conflict_ways),
            ),
        ])
    }
}

impl vt_json::ToJson for KernelModel {
    fn to_json(&self) -> Json {
        let b = &self.occupancy.bounds;
        let smem_bound = if b.by_shared_memory == u32::MAX {
            Json::Null
        } else {
            Json::UInt(u64::from(b.by_shared_memory))
        };
        Json::Object(vec![
            ("kernel".to_string(), Json::Str(self.kernel.clone())),
            (
                "threads_per_cta".to_string(),
                Json::UInt(u64::from(self.threads_per_cta)),
            ),
            (
                "warps_per_cta".to_string(),
                Json::UInt(u64::from(self.warps_per_cta)),
            ),
            (
                "regs_per_thread".to_string(),
                Json::UInt(u64::from(self.regs_per_thread)),
            ),
            (
                "smem_bytes_per_cta".to_string(),
                Json::UInt(u64::from(self.smem_bytes_per_cta)),
            ),
            (
                "bounds".to_string(),
                Json::Object(vec![
                    (
                        "by_cta_slots".to_string(),
                        Json::UInt(u64::from(b.by_cta_slots)),
                    ),
                    (
                        "by_warp_slots".to_string(),
                        Json::UInt(u64::from(b.by_warp_slots)),
                    ),
                    (
                        "by_registers".to_string(),
                        Json::UInt(u64::from(b.by_registers)),
                    ),
                    ("by_shared_memory".to_string(), smem_bound),
                ]),
            ),
            (
                "limiter".to_string(),
                Json::Str(self.occupancy.limiter.to_string()),
            ),
            (
                "scheduling_limited".to_string(),
                Json::Bool(self.scheduling_limited()),
            ),
            (
                "residency".to_string(),
                Json::Object(
                    self.archs
                        .iter()
                        .map(|a| (a.arch.to_string(), Json::UInt(u64::from(a.resident_bound))))
                        .collect(),
                ),
            ),
            (
                "residency_gain".to_string(),
                Json::Float(self.residency_gain()),
            ),
            (
                "predicts_vt_gain".to_string(),
                Json::Bool(self.predicts_vt_gain()),
            ),
            (
                "divergence_nesting".to_string(),
                Json::UInt(u64::from(self.divergence_nesting)),
            ),
            (
                "register_pressure".to_string(),
                Json::UInt(u64::from(self.register_pressure)),
            ),
            (
                "mem_sites".to_string(),
                Json::Array(
                    self.mem_sites
                        .iter()
                        .map(vt_json::ToJson::to_json)
                        .collect(),
                ),
            ),
            (
                "diagnostics".to_string(),
                Json::Array(
                    self.diagnostics
                        .iter()
                        .map(vt_json::ToJson::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

/// Renders models as the tab02-style fixed-width table `vtlint --model`
/// prints: one row per kernel, the four per-resource bounds, the
/// limiter, per-arch residency and the memory/divergence summary.
pub fn table(models: &[KernelModel]) -> String {
    let mut out = String::new();
    let header = format!(
        "{:<14} {:>5} {:>4} {:>5} {:>6} | {:>4} {:>4} {:>4} {:>4} | {:<13} {:>4} {:>5} {:>5} | {:>4} {:>4} {:>3} vt?\n",
        "kernel", "t/cta", "w", "regs", "smem",
        "cta", "warp", "reg", "smem",
        "limiter", "base", "vt", "gain",
        "seg", "bank", "div",
    );
    out.push_str(&header);
    out.push_str(&"-".repeat(header.len() - 1));
    out.push('\n');
    for m in models {
        let b = &m.occupancy.bounds;
        let smem_bound = if b.by_shared_memory == u32::MAX {
            "inf".to_string()
        } else {
            b.by_shared_memory.to_string()
        };
        let vt_bound = m
            .archs
            .iter()
            .find(|a| a.arch == "vt")
            .map_or(0, |a| a.resident_bound);
        let opt = |v: Option<u32>| v.map_or_else(|| "?".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "{:<14} {:>5} {:>4} {:>5} {:>6} | {:>4} {:>4} {:>4} {:>4} | {:<13} {:>4} {:>5} {:>5.2} | {:>4} {:>4} {:>3} {}\n",
            m.kernel,
            m.threads_per_cta,
            m.warps_per_cta,
            m.regs_per_thread,
            m.smem_bytes_per_cta,
            b.by_cta_slots,
            b.by_warp_slots,
            b.by_registers,
            smem_bound,
            m.occupancy.limiter.to_string(),
            b.baseline(),
            vt_bound,
            m.residency_gain(),
            opt(m.worst_segments_per_warp()),
            opt(m.worst_bank_conflict_ways()),
            m.divergence_nesting,
            if m.predicts_vt_gain() { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::op::Operand;
    use vt_isa::KernelBuilder;
    use vt_json::ToJson;

    /// A scheduling-limited kernel with a coalesced global load.
    fn sched_kernel() -> Kernel {
        let mut b = KernelBuilder::new("sched");
        let data = b.alloc_global(4096);
        let gid = b.reg();
        let v = b.reg();
        b.global_thread_id(gid);
        b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(gid), data as i32);
        b.st_global(Operand::Reg(gid), data as i32, Operand::Reg(v));
        b.pad_regs(16);
        b.exit();
        b.build(8, 64).unwrap()
    }

    /// A register-heavy capacity-limited kernel.
    fn cap_kernel() -> Kernel {
        let mut b = KernelBuilder::new("cap");
        let data = b.alloc_global(4096);
        let gid = b.reg();
        let v = b.reg();
        b.global_thread_id(gid);
        b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(gid), data as i32);
        b.st_global(Operand::Reg(gid), data as i32, Operand::Reg(v));
        b.pad_regs(96);
        b.exit();
        b.build(8, 256).unwrap()
    }

    #[test]
    fn model_classifies_and_predicts() {
        let cfg = ModelConfig::default();
        let m = model(&sched_kernel(), &cfg);
        assert!(m.scheduling_limited());
        assert!(m.predicts_vt_gain());
        assert!(m.residency_gain() > 1.0);
        assert_eq!(m.archs.len(), 4);
        let base = m.archs.iter().find(|a| a.arch == "baseline").unwrap();
        let vt = m.archs.iter().find(|a| a.arch == "vt").unwrap();
        assert!(vt.resident_bound > base.resident_bound);
        assert_eq!(m.mem_sites.len(), 2);

        let m = model(&cap_kernel(), &cfg);
        assert!(!m.scheduling_limited());
        assert!(!m.predicts_vt_gain());
        assert!((m.residency_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape_is_stable() {
        let m = model(&sched_kernel(), &ModelConfig::default());
        let j = m.to_json().compact();
        for key in [
            "\"kernel\"",
            "\"bounds\"",
            "\"by_cta_slots\"",
            "\"limiter\"",
            "\"scheduling_limited\"",
            "\"residency\"",
            "\"baseline\"",
            "\"vt\"",
            "\"ideal\"",
            "\"memswap\"",
            "\"residency_gain\"",
            "\"predicts_vt_gain\"",
            "\"divergence_nesting\"",
            "\"mem_sites\"",
            "\"diagnostics\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn table_has_one_row_per_kernel() {
        let cfg = ModelConfig::default();
        let models = vec![model(&sched_kernel(), &cfg), model(&cap_kernel(), &cfg)];
        let t = table(&models);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2 + 2, "header + rule + two rows");
        assert!(lines[2].starts_with("sched"));
        assert!(lines[3].starts_with("cap"));
        assert!(lines[2].contains("yes"));
        assert!(lines[3].ends_with("no"));
    }
}
