//! Static memory-behaviour estimation: coalescing width per global
//! access, bank-conflict degree per shared access, and divergence
//! nesting depth.
//!
//! The address classifier is the same affine `k·tid + c (+ base)` engine
//! the race detector uses ([`crate::race::classify`]); this module asks
//! different questions of the classified form:
//!
//! * **Coalescing** — for a global load/store, how many 128-byte
//!   segments do one warp's 32 lanes touch? The opaque `base` term is
//!   assumed segment-aligned (allocations are), so the count is the
//!   number of distinct `⌊(c + k·l) / seg⌋` values over lanes
//!   `l ∈ 0..32`. Unknown addresses (data-dependent gathers, values
//!   merged over loop back edges) get no estimate rather than a wrong
//!   one.
//! * **Bank conflicts** — for a shared access, the maximum number of
//!   *distinct words* one warp maps onto a single bank (`bank =
//!   word mod 32`). Lanes hitting the same word broadcast and do not
//!   conflict, matching the simulator's bank model.
//! * **Divergence nesting** — how deeply divergent branches nest: the
//!   maximum number of divergent branch-to-reconvergence spans covering
//!   any one instruction (post-dominator-verified spans, since `reconv`
//!   is checked against the immediate post-dominator elsewhere).

use crate::dataflow::BitSet;
use crate::defs::Reaching;
use crate::diag::{Diagnostic, Rule, Severity};
use crate::race::{classify, AddrClass};
use crate::uniform::Uniformity;
use vt_isa::op::MemSpace;
use vt_isa::{Instr, Program, WARP_SIZE};

/// Chase depth for address classification (same budget as the race
/// detector).
const MAX_DEPTH: u32 = 16;

/// Warn when one warp access touches at least this many segments.
pub const UNCOALESCED_SEGMENTS: u32 = 8;

/// Warn when at least this many distinct words map to one bank.
pub const CONFLICT_WAYS: u32 = 2;

/// Warn when divergent branches nest at least this deep.
pub const DEEP_NESTING: u32 = 3;

/// One global or shared memory access site with its static estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSite {
    /// Program counter of the access.
    pub pc: usize,
    /// Address space.
    pub space: MemSpace,
    /// Whether the access writes (stores and atomics).
    pub is_store: bool,
    /// Per-thread byte stride when the address classified as affine.
    pub stride: Option<i64>,
    /// Distinct 128-byte segments one warp touches (global, affine
    /// addresses only; `None` for data-dependent addresses).
    pub segments_per_warp: Option<u32>,
    /// Maximum distinct words mapping to one bank (shared, affine
    /// addresses only; 1 means conflict-free).
    pub bank_conflict_ways: Option<u32>,
}

/// Distinct `seg`-byte segments touched by lanes `0..WARP_SIZE` of an
/// affine access `k·l + c`, assuming a segment-aligned base.
fn affine_segments(k: i64, c: i64, seg: u32) -> u32 {
    let seg = i64::from(seg.max(1));
    let mut segs: Vec<i64> = (0..i64::from(WARP_SIZE))
        .map(|l| (c + k * l).div_euclid(seg))
        .collect();
    segs.sort_unstable();
    segs.dedup();
    segs.len() as u32
}

/// Maximum number of distinct words one bank receives from lanes
/// `0..WARP_SIZE` of an affine access `k·l + c` (same word broadcasts).
fn affine_conflict_ways(k: i64, c: i64, banks: u32) -> u32 {
    let banks = banks.max(1) as usize;
    let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); banks];
    for l in 0..i64::from(WARP_SIZE) {
        let word = (c + k * l).div_euclid(4);
        let bank = word.rem_euclid(banks as i64) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank.iter().map(Vec::len).max().unwrap_or(1).max(1) as u32
}

/// Collects every reachable memory access with its static estimates.
pub fn sites(
    program: &Program,
    reaching: &Reaching,
    uniform: &Uniformity,
    reachable: &BitSet,
    segment_bytes: u32,
    banks: u32,
) -> Vec<MemSite> {
    let mut out = Vec::new();
    for (pc, instr) in program.iter() {
        if !reachable.contains(pc) {
            continue;
        }
        let (space, addr, offset, is_store) = match *instr {
            Instr::Ld {
                space,
                addr,
                offset,
                ..
            } => (space, addr, offset, false),
            Instr::St {
                space,
                addr,
                offset,
                ..
            } => (space, addr, offset, true),
            // Atomics always target global memory.
            Instr::Atom { addr, offset, .. } => (MemSpace::Global, addr, offset, true),
            _ => continue,
        };
        let class = classify(program, reaching, uniform, pc, addr, MAX_DEPTH);
        let (stride, segments_per_warp, bank_conflict_ways) = match class {
            AddrClass::Affine { k, c, .. } => {
                let c = c + i64::from(offset);
                match space {
                    MemSpace::Global => (Some(k), Some(affine_segments(k, c, segment_bytes)), None),
                    MemSpace::Shared => (Some(k), None, Some(affine_conflict_ways(k, c, banks))),
                }
            }
            AddrClass::Unknown => (None, None, None),
        };
        out.push(MemSite {
            pc,
            space,
            is_store,
            stride,
            segments_per_warp,
            bank_conflict_ways,
        });
    }
    out
}

/// Maximum nesting depth of divergent branch-to-reconvergence spans: how
/// many divergent regions enclose the most-enclosed instruction (0 when
/// control flow never diverges).
pub fn divergence_nesting(program: &Program, uniform: &Uniformity, reachable: &BitSet) -> u32 {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (pc, instr) in program.iter() {
        if !reachable.contains(pc) || !uniform.divergent_branch[pc] {
            continue;
        }
        if let Instr::BraCond { reconv, .. } = instr {
            if *reconv > pc + 1 {
                spans.push((pc + 1, *reconv));
            }
        }
    }
    let mut depth = 0u32;
    for pc in 0..program.len() {
        let covering = spans
            .iter()
            .filter(|(lo, hi)| (*lo..*hi).contains(&pc))
            .count() as u32;
        depth = depth.max(covering);
    }
    depth
}

/// Turns the estimates into lint findings (all warnings: the patterns
/// are legal, just slow).
pub fn lints(sites: &[MemSite], nesting: u32) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for s in sites {
        let kind = if s.is_store { "store" } else { "load" };
        if let Some(segs) = s.segments_per_warp {
            if segs >= UNCOALESCED_SEGMENTS {
                diags.push(Diagnostic::at(
                    Severity::Warning,
                    Rule::UncoalescedGlobal,
                    s.pc,
                    format!(
                        "global {kind} spreads one warp over {segs} 128-byte segments \
                         (per-thread stride {} bytes)",
                        s.stride.unwrap_or(0)
                    ),
                ));
            }
        }
        if let Some(ways) = s.bank_conflict_ways {
            if ways >= CONFLICT_WAYS {
                diags.push(Diagnostic::at(
                    Severity::Warning,
                    Rule::SmemBankConflict,
                    s.pc,
                    format!(
                        "shared {kind} has {ways}-way bank conflicts \
                         (per-thread stride {} bytes)",
                        s.stride.unwrap_or(0)
                    ),
                ));
            }
        }
    }
    if nesting >= DEEP_NESTING {
        diags.push(Diagnostic::kernel(
            Severity::Warning,
            Rule::DeepDivergence,
            format!(
                "divergent branches nest {nesting} deep; innermost instructions \
                 run with a small fraction of the warp active"
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use vt_isa::op::{AluOp, BranchIf, Operand, Reg, Sreg};

    fn facts(p: &Program, regs: u16) -> (Reaching, Uniformity, BitSet) {
        let cfg = Cfg::build(p);
        let reach = cfg.reachable();
        let r = Reaching::compute(p, &cfg, regs);
        let u = Uniformity::compute(p, &r, &reach);
        (r, u, reach)
    }

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    /// `r[dst] = tid << shift` (byte address with stride `1 << shift`).
    fn tid_shl(dst: u16, tid_reg: u16, shift: u32) -> [Instr; 2] {
        [
            mov(tid_reg, Operand::Sreg(Sreg::Tid)),
            Instr::Alu {
                op: AluOp::Shl,
                dst: Reg(dst),
                a: Operand::Reg(Reg(tid_reg)),
                b: Operand::Imm(shift),
            },
        ]
    }

    fn ld(space: MemSpace, dst: u16, addr: Operand) -> Instr {
        Instr::Ld {
            space,
            dst: Reg(dst),
            addr,
            offset: 0,
        }
    }

    #[test]
    fn unit_stride_coalesces_to_one_segment() {
        let [a, b] = tid_shl(1, 0, 2); // stride 4
        let p = Program::new(vec![
            a,
            b,
            ld(MemSpace::Global, 2, Operand::Reg(Reg(1))),
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 3);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].stride, Some(4));
        assert_eq!(s[0].segments_per_warp, Some(1));
        assert!(lints(&s, 0).is_empty());
    }

    #[test]
    fn wide_stride_is_fully_uncoalesced() {
        let [a, b] = tid_shl(1, 0, 7); // stride 128: one segment per lane
        let p = Program::new(vec![
            a,
            b,
            ld(MemSpace::Global, 2, Operand::Reg(Reg(1))),
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 3);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s[0].segments_per_warp, Some(32));
        let diags = lints(&s, 0);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::UncoalescedGlobal);
    }

    #[test]
    fn broadcast_address_is_one_segment() {
        let p = Program::new(vec![
            ld(MemSpace::Global, 0, Operand::Imm(512)),
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 1);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s[0].stride, Some(0));
        assert_eq!(s[0].segments_per_warp, Some(1));
    }

    #[test]
    fn data_dependent_gather_has_no_estimate() {
        let p = Program::new(vec![
            ld(MemSpace::Global, 0, Operand::Imm(0)),
            ld(MemSpace::Global, 1, Operand::Reg(Reg(0))),
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 2);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s[1].stride, None);
        assert_eq!(s[1].segments_per_warp, None);
        assert!(lints(&s, 0).is_empty(), "no estimate, no lint");
    }

    #[test]
    fn shared_unit_stride_is_conflict_free() {
        let [a, b] = tid_shl(1, 0, 2);
        let p = Program::new(vec![
            a,
            b,
            ld(MemSpace::Shared, 2, Operand::Reg(Reg(1))),
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 3);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s[0].bank_conflict_ways, Some(1));
        assert!(lints(&s, 0).is_empty());
    }

    #[test]
    fn power_of_two_word_stride_conflicts() {
        // stride 32 words (128 bytes): every lane hits bank (c/4) mod 32,
        // 32 distinct words on one bank.
        let [a, b] = tid_shl(1, 0, 7);
        let p = Program::new(vec![
            a,
            b,
            ld(MemSpace::Shared, 2, Operand::Reg(Reg(1))),
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 3);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s[0].bank_conflict_ways, Some(32));
        let diags = lints(&s, 0);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::SmemBankConflict);
        // Stride 2 words: pairs of lanes share a bank (gcd(2,32) = 2).
        assert_eq!(affine_conflict_ways(8, 0, 32), 2);
        // Odd word strides are coprime with 32 banks: conflict-free.
        assert_eq!(affine_conflict_ways(12, 0, 32), 1);
        assert_eq!(affine_conflict_ways(20, 0, 32), 1);
    }

    #[test]
    fn shared_broadcast_does_not_conflict() {
        let p = Program::new(vec![ld(MemSpace::Shared, 0, Operand::Imm(64)), Instr::Exit]);
        let (r, u, reach) = facts(&p, 1);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s[0].bank_conflict_ways, Some(1), "same word broadcasts");
    }

    #[test]
    fn atomics_count_as_global_stores() {
        let [a, b] = tid_shl(1, 0, 2);
        let p = Program::new(vec![
            a,
            b,
            Instr::Atom {
                op: vt_isa::op::AtomOp::Add,
                dst: None,
                addr: Operand::Reg(Reg(1)),
                offset: 0,
                val: Operand::Imm(1),
            },
            Instr::Exit,
        ]);
        let (r, u, reach) = facts(&p, 3);
        let s = sites(&p, &r, &u, &reach, 128, 32);
        assert_eq!(s.len(), 1);
        assert!(s[0].is_store);
        assert_eq!(s[0].space, MemSpace::Global);
    }

    #[test]
    fn nesting_depth_counts_divergent_spans_only() {
        // Uniform branch: depth stays 0.
        let p = Program::new(vec![
            Instr::BraCond {
                pred: Operand::Imm(1),
                when: BranchIf::Zero,
                target: 2,
                reconv: 2,
            },
            mov(0, Operand::Imm(1)),
            Instr::Exit,
        ]);
        let (_, u, reach) = facts(&p, 1);
        assert_eq!(divergence_nesting(&p, &u, &reach), 0);

        // Two nested tid-dependent branches: depth 2.
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::Zero,
                target: 5,
                reconv: 5,
            },
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::NonZero,
                target: 4,
                reconv: 4,
            },
            mov(1, Operand::Imm(7)),
            mov(1, Operand::Imm(8)),
            Instr::Exit,
        ]);
        let (_, u, reach) = facts(&p, 2);
        assert_eq!(divergence_nesting(&p, &u, &reach), 2);
        let diags = lints(&[], 3);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::DeepDivergence);
    }
}
