//! Diagnostics and per-kernel reports.

use std::fmt;
use vt_json::Json;

/// How bad a finding is.
///
/// * [`Severity::Error`] — the kernel is wrong: it can deadlock, diverge
///   past its declared reconvergence point, or otherwise break the
///   execution model. `vtlint` exits non-zero if any error is present.
/// * [`Severity::Warning`] — the kernel is suspicious but may be
///   intentional (a conservative may-race, a read of a zero-initialised
///   register, a dead store).
/// * [`Severity::Info`] — a fact worth surfacing, such as a register
///   declaration padded above actual use (deliberate in the suite's
///   capacity-limited workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Breaks the execution model.
    Error,
    /// Suspicious but possibly intentional.
    Warning,
    /// Informational finding.
    Info,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// Which lint produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A divergent branch's `reconv` is not the branch's immediate
    /// post-dominator: lanes reconverge too late (wasting serialised
    /// execution) or the stack replays instructions.
    BadReconv,
    /// A register may be read before any write on some path. Registers
    /// are zero-initialised at launch, so this is a warning, not an
    /// error — but it usually means a missing initialisation.
    UninitRead,
    /// A pure instruction's destination is never read afterwards.
    DeadStore,
    /// A `bar` is reachable while lanes of a CTA may have diverged:
    /// some threads arrive, others never do — deadlock.
    DivergentBarrier,
    /// The two arms of a divergent branch contain different numbers of
    /// barriers, so threads taking different arms wait at different
    /// barrier counts.
    BarrierMismatch,
    /// Two shared-memory accesses in the same barrier interval — at
    /// least one a store — may touch the same word from different lanes.
    SharedRace,
    /// The kernel declares more registers than it ever uses
    /// (deliberate footprint padding, or a stale declaration).
    OverDeclaredRegs,
    /// A global access's affine address stride spreads one warp's lanes
    /// across many 128-byte segments, multiplying memory traffic.
    UncoalescedGlobal,
    /// A shared-memory access's affine word stride maps multiple lanes
    /// of a warp to the same bank, serialising the access.
    SmemBankConflict,
    /// Divergent branches nest deeply, so the innermost instructions run
    /// with a small fraction of the warp's lanes active.
    DeepDivergence,
}

impl Rule {
    /// Stable kebab-case name used in output.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::BadReconv => "bad-reconv",
            Rule::UninitRead => "uninit-read",
            Rule::DeadStore => "dead-store",
            Rule::DivergentBarrier => "divergent-barrier",
            Rule::BarrierMismatch => "barrier-mismatch",
            Rule::SharedRace => "shared-race",
            Rule::OverDeclaredRegs => "over-declared-regs",
            Rule::UncoalescedGlobal => "uncoalesced-global",
            Rule::SmemBankConflict => "smem-bank-conflict",
            Rule::DeepDivergence => "deep-divergence",
        }
    }
}

/// One finding, anchored to a program counter when it concerns a
/// specific instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// The lint that fired.
    pub rule: Rule,
    /// Instruction the finding anchors to, if any.
    pub pc: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at `pc`.
    pub fn at(severity: Severity, rule: Rule, pc: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity,
            rule,
            pc: Some(pc),
            message: message.into(),
        }
    }

    /// Builds a kernel-level diagnostic with no instruction anchor.
    pub fn kernel(severity: Severity, rule: Rule, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity,
            rule,
            pc: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.label(), self.rule.name())?;
        if let Some(pc) = self.pc {
            write!(f, " pc {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything the analyzer learned about one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Kernel name.
    pub kernel: String,
    /// Registers per thread the kernel declares.
    pub declared_regs: u16,
    /// Highest register index actually referenced, plus one.
    pub used_regs: u16,
    /// Maximum number of simultaneously-live registers at any program
    /// point (the analyzer's register-pressure estimate).
    pub register_pressure: u16,
    /// Static `bar` instruction count.
    pub barriers: usize,
    /// Barrier-delimited phases of the kernel (static barriers + 1).
    pub barrier_intervals: usize,
    /// All findings, sorted by program counter.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// One-line summary used by `vtlint`'s human output.
    pub fn headline(&self) -> String {
        format!(
            "{}: {} regs declared, {} used, pressure {}; {} barrier{} ({} interval{})",
            self.kernel,
            self.declared_regs,
            self.used_regs,
            self.register_pressure,
            self.barriers,
            if self.barriers == 1 { "" } else { "s" },
            self.barrier_intervals,
            if self.barrier_intervals == 1 { "" } else { "s" },
        )
    }
}

impl vt_json::ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "severity".to_string(),
                Json::Str(self.severity.label().to_string()),
            ),
            ("rule".to_string(), Json::Str(self.rule.name().to_string())),
            (
                "pc".to_string(),
                match self.pc {
                    Some(pc) => Json::UInt(pc as u64),
                    None => Json::Null,
                },
            ),
            ("message".to_string(), Json::Str(self.message.clone())),
        ])
    }
}

impl vt_json::ToJson for Report {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("kernel".to_string(), Json::Str(self.kernel.clone())),
            (
                "declared_regs".to_string(),
                Json::UInt(u64::from(self.declared_regs)),
            ),
            (
                "used_regs".to_string(),
                Json::UInt(u64::from(self.used_regs)),
            ),
            (
                "register_pressure".to_string(),
                Json::UInt(u64::from(self.register_pressure)),
            ),
            ("barriers".to_string(), Json::UInt(self.barriers as u64)),
            (
                "barrier_intervals".to_string(),
                Json::UInt(self.barrier_intervals as u64),
            ),
            ("errors".to_string(), Json::UInt(self.error_count() as u64)),
            (
                "warnings".to_string(),
                Json::UInt(self.warning_count() as u64),
            ),
            (
                "diagnostics".to_string(),
                Json::Array(
                    self.diagnostics
                        .iter()
                        .map(vt_json::ToJson::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_json::ToJson;

    #[test]
    fn diagnostic_display_and_ordering() {
        let d = Diagnostic::at(Severity::Error, Rule::BadReconv, 4, "boom");
        assert_eq!(d.to_string(), "error[bad-reconv] pc 4: boom");
        let k = Diagnostic::kernel(Severity::Info, Rule::OverDeclaredRegs, "pad");
        assert_eq!(k.to_string(), "info[over-declared-regs]: pad");
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
    }

    #[test]
    fn report_counts_and_json() {
        let r = Report {
            kernel: "k".to_string(),
            declared_regs: 8,
            used_regs: 6,
            register_pressure: 4,
            barriers: 2,
            barrier_intervals: 3,
            diagnostics: vec![
                Diagnostic::at(Severity::Error, Rule::DivergentBarrier, 1, "a"),
                Diagnostic::at(Severity::Warning, Rule::SharedRace, 2, "b"),
            ],
        };
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        let json = r.to_json().compact();
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"rule\":\"divergent-barrier\""));
        assert!(r.headline().contains("pressure 4"));
    }
}
