//! Barrier-safety lints.
//!
//! `bar` synchronises every thread of a CTA: all warps must arrive. Two
//! ways a structured program can break that contract:
//!
//! * a `bar` inside a divergent region — some lanes branch around it
//!   (or iterate a loop fewer times) and never arrive: **deadlock**;
//! * a divergent branch whose two arms contain different numbers of
//!   `bar`s — threads taking different arms pair up different barriers.
//!
//! Both checks key off the uniformity analysis: branches with
//! CTA-uniform predicates send every thread the same way and are exempt
//! (the suite's tree reductions run `bar` inside uniform `while` loops).

use crate::dataflow::BitSet;
use crate::diag::{Diagnostic, Rule, Severity};
use crate::uniform::Uniformity;
use vt_isa::{Instr, Program};

/// Flags barriers reachable under divergence and divergent branches with
/// mismatched per-arm barrier counts.
pub fn check(program: &Program, uniform: &Uniformity, reachable: &BitSet) -> Vec<Diagnostic> {
    let n = program.len();
    let mut diags = Vec::new();
    for (pc, instr) in program.iter() {
        if !reachable.contains(pc) {
            continue;
        }
        match *instr {
            Instr::Bar if uniform.divergent[pc] => {
                diags.push(Diagnostic::at(
                    Severity::Error,
                    Rule::DivergentBarrier,
                    pc,
                    "bar may execute with only part of the CTA's lanes active; \
                     threads that branched around it never arrive",
                ));
            }
            Instr::BraCond { target, reconv, .. } if uniform.divergent_branch[pc] => {
                let bars = |lo: usize, hi: usize| {
                    (lo..hi.min(n))
                        .filter(|&i| matches!(program.fetch(i), Instr::Bar))
                        .count()
                };
                let fallthrough = bars(pc + 1, target);
                let taken = bars(target, reconv);
                if fallthrough != taken {
                    diags.push(Diagnostic::at(
                        Severity::Error,
                        Rule::BarrierMismatch,
                        pc,
                        format!(
                            "divergent branch arms contain {fallthrough} and {taken} \
                             barriers; threads taking different arms wait at \
                             different barriers"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    diags
}

/// Static `bar` count of a program.
pub fn count(program: &Program) -> usize {
    program
        .iter()
        .filter(|(_, i)| matches!(i, Instr::Bar))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::defs::Reaching;
    use vt_isa::op::{AluOp, BranchIf, Operand, Reg, Sreg};

    fn analyse(p: &Program, regs: u16) -> Vec<Diagnostic> {
        let cfg = Cfg::build(p);
        let reach = cfg.reachable();
        let r = Reaching::compute(p, &cfg, regs);
        let u = Uniformity::compute(p, &r, &reach);
        check(p, &u, &reach)
    }

    fn mov(dst: u16, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst: Reg(dst),
            a,
            b: Operand::Imm(0),
        }
    }

    #[test]
    fn barrier_under_tid_guard_is_rejected() {
        // if (tid) { bar; }
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::Zero,
                target: 3,
                reconv: 3,
            },
            Instr::Bar,
            Instr::Exit,
        ]);
        let diags = analyse(&p, 1);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DivergentBarrier && d.pc == Some(2)));
        // The empty arm has 0 bars vs 1 in the body: mismatch too.
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::BarrierMismatch && d.pc == Some(1)));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn barrier_in_uniform_loop_is_fine() {
        // for (r0 = 0; r0 < 4; r0++) { bar; } — uniform trip count.
        let p = Program::new(vec![
            mov(0, Operand::Imm(0)),
            Instr::Alu {
                op: AluOp::SetLt,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(4),
            },
            Instr::BraCond {
                pred: Operand::Reg(Reg(1)),
                when: BranchIf::Zero,
                target: 6,
                reconv: 6,
            },
            Instr::Bar,
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Instr::Bra { target: 1 },
            Instr::Exit,
        ]);
        assert!(analyse(&p, 2).is_empty());
    }

    #[test]
    fn balanced_divergent_arms_still_flag_each_barrier() {
        // if (tid) { bar; } else { bar; } — counts match (no mismatch),
        // but in lockstep SIMT each arm's bar runs with a partial mask.
        let p = Program::new(vec![
            mov(0, Operand::Sreg(Sreg::Tid)),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::Zero,
                target: 4,
                reconv: 5,
            },
            Instr::Bar,
            Instr::Bra { target: 5 },
            Instr::Bar,
            Instr::Exit,
        ]);
        let diags = analyse(&p, 1);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == Rule::DivergentBarrier)
                .count(),
            2
        );
        assert!(diags.iter().all(|d| d.rule != Rule::BarrierMismatch));
    }

    #[test]
    fn bar_counting() {
        let p = Program::new(vec![
            Instr::Bar,
            mov(0, Operand::Imm(1)),
            Instr::Bar,
            Instr::Exit,
        ]);
        assert_eq!(count(&p), 2);
    }
}
