//! Instruction-level control-flow graph with post-dominator analysis.
//!
//! Every instruction is a node; a virtual exit node collects all `exit`
//! instructions (and any fallthrough off the end, though validated
//! programs cannot have one). Post-dominator sets are computed by
//! iterative intersection over the reverse graph, and a branch's
//! immediate post-dominator is checked against its declared
//! reconvergence PC: on an IPDOM-based SIMT stack, reconverging anywhere
//! other than the immediate post-dominator either replays instructions
//! or keeps lanes serialised longer than necessary.

use crate::dataflow::BitSet;
use crate::diag::{Diagnostic, Rule, Severity};
use vt_isa::{Instr, Program};

/// A control-flow graph over instruction indices `0..len`, plus a
/// virtual exit node at index `len`.
#[derive(Debug)]
pub struct Cfg {
    /// Successor lists, indexed by node; the exit node has none.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor lists, indexed by node.
    pub preds: Vec<Vec<usize>>,
    /// Number of real instructions (the exit node is `len`).
    pub len: usize,
}

impl Cfg {
    /// Builds the graph for a program.
    pub fn build(program: &Program) -> Cfg {
        let len = program.len();
        let exit = len;
        let mut succs = vec![Vec::new(); len + 1];
        for (pc, instr) in program.iter() {
            match *instr {
                Instr::Exit => succs[pc].push(exit),
                Instr::Bra { target } => succs[pc].push(target.min(exit)),
                Instr::BraCond {
                    target, reconv: _, ..
                } => {
                    // Fallthrough first, taken edge second; the declared
                    // reconvergence point is metadata, not an edge.
                    succs[pc].push(if pc + 1 < len { pc + 1 } else { exit });
                    let t = target.min(exit);
                    if !succs[pc].contains(&t) {
                        succs[pc].push(t);
                    }
                }
                _ => succs[pc].push(if pc + 1 < len { pc + 1 } else { exit }),
            }
        }
        let mut preds = vec![Vec::new(); len + 1];
        for (n, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(n);
            }
        }
        Cfg { succs, preds, len }
    }

    /// The virtual exit node's index.
    pub fn exit(&self) -> usize {
        self.len
    }

    /// Nodes reachable from instruction 0 (the kernel entry).
    pub fn reachable(&self) -> BitSet {
        let mut seen = BitSet::new(self.len + 1);
        if self.len == 0 {
            return seen;
        }
        let mut stack = vec![0];
        seen.insert(0);
        while let Some(n) = stack.pop() {
            for &s in &self.succs[n] {
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Post-dominator sets, one per node (`pdom[n]` contains `n`).
    /// Computed by iterating `pdom(v) = {v} ∪ ⋂ pdom(s)` to a fixed
    /// point; nodes that cannot reach the exit keep the full universe.
    pub fn postdominators(&self) -> Vec<BitSet> {
        let n = self.len + 1;
        let exit = self.exit();
        let mut pdom: Vec<BitSet> = (0..n)
            .map(|v| {
                if v == exit {
                    BitSet::singleton(n, exit)
                } else {
                    BitSet::full(n)
                }
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            // Reverse program order converges fast on forward-structured
            // code.
            for v in (0..self.len).rev() {
                let mut next = BitSet::full(n);
                let mut any = false;
                for &s in &self.succs[v] {
                    next.intersect_with(&pdom[s]);
                    any = true;
                }
                if !any {
                    next = BitSet::new(n);
                }
                next.insert(v);
                if next != pdom[v] {
                    pdom[v] = next;
                    changed = true;
                }
            }
        }
        pdom
    }

    /// Immediate post-dominator of every node: among a node's strict
    /// post-dominators they form a chain, and the nearest one is the one
    /// with the largest post-dominator set. `None` for the exit node and
    /// for nodes that cannot reach the exit.
    pub fn ipdoms(&self, pdom: &[BitSet]) -> Vec<Option<usize>> {
        let exit = self.exit();
        (0..self.len + 1)
            .map(|v| {
                if v == exit || !pdom[v].contains(exit) {
                    return None;
                }
                pdom[v]
                    .iter()
                    .filter(|&p| p != v)
                    .max_by_key(|&p| pdom[p].count())
            })
            .collect()
    }

    /// Checks every divergent branch's declared reconvergence PC against
    /// its immediate post-dominator.
    pub fn check_reconvergence(&self, program: &Program) -> Vec<Diagnostic> {
        let pdom = self.postdominators();
        let ipdom = self.ipdoms(&pdom);
        let reachable = self.reachable();
        let mut diags = Vec::new();
        for (pc, instr) in program.iter() {
            let Instr::BraCond { reconv, .. } = *instr else {
                continue;
            };
            if !reachable.contains(pc) {
                continue;
            }
            let Some(ip) = ipdom[pc] else { continue };
            let declared = reconv.min(self.exit());
            if declared != ip {
                let where_ = if ip == self.exit() {
                    "exit".to_string()
                } else {
                    ip.to_string()
                };
                diags.push(Diagnostic::at(
                    Severity::Error,
                    Rule::BadReconv,
                    pc,
                    format!(
                        "branch reconverges at @{reconv} but its immediate \
                         post-dominator is @{where_}"
                    ),
                ));
            }
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::op::{AluOp, BranchIf, Operand, Reg};

    fn nop(r: u16) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            dst: Reg(r),
            a: Operand::Reg(Reg(r)),
            b: Operand::Imm(1),
        }
    }

    fn brc(target: usize, reconv: usize) -> Instr {
        Instr::BraCond {
            pred: Operand::Reg(Reg(0)),
            when: BranchIf::Zero,
            target,
            reconv,
        }
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let p = Program::new(vec![nop(0), nop(0), Instr::Exit]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.succs[0], vec![1]);
        assert_eq!(cfg.succs[1], vec![2]);
        assert_eq!(cfg.succs[2], vec![3]);
        assert_eq!(cfg.preds[3], vec![2]);
        let pdom = cfg.postdominators();
        let ipdom = cfg.ipdoms(&pdom);
        assert_eq!(ipdom[0], Some(1));
        assert_eq!(ipdom[2], Some(3));
        assert_eq!(ipdom[3], None);
    }

    #[test]
    fn if_branch_ipdom_is_join() {
        // 0: brc @2 reconv 2; 1: body; 2: join; 3: exit
        let p = Program::new(vec![brc(2, 2), nop(0), nop(0), Instr::Exit]);
        let cfg = Cfg::build(&p);
        let pdom = cfg.postdominators();
        assert_eq!(cfg.ipdoms(&pdom)[0], Some(2));
        assert!(cfg.check_reconvergence(&p).is_empty());
    }

    #[test]
    fn loop_branch_ipdom_is_loop_exit() {
        // 0: cond; 1: brc @4 reconv 4; 2: body; 3: bra @0; 4: exit
        let p = Program::new(vec![
            nop(0),
            brc(4, 4),
            nop(1),
            Instr::Bra { target: 0 },
            Instr::Exit,
        ]);
        let cfg = Cfg::build(&p);
        let pdom = cfg.postdominators();
        assert_eq!(cfg.ipdoms(&pdom)[1], Some(4));
        assert!(cfg.check_reconvergence(&p).is_empty());
    }

    #[test]
    fn late_reconvergence_is_flagged() {
        // The branch joins at 2 but declares reconvergence one later.
        let p = Program::new(vec![brc(2, 3), nop(0), nop(0), nop(0), Instr::Exit]);
        let cfg = Cfg::build(&p);
        let diags = cfg.check_reconvergence(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadReconv);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].pc, Some(0));
    }

    #[test]
    fn reconv_at_program_end_matches_virtual_exit() {
        // reconv == len is the virtual exit; ipdom of the branch is the
        // trailing exit instruction, so reconv == len mismatches it only
        // when a real join instruction exists.
        let p = Program::new(vec![brc(1, 1), Instr::Exit]);
        let cfg = Cfg::build(&p);
        assert!(cfg.check_reconvergence(&p).is_empty());
    }

    #[test]
    fn reachability_skips_dead_code() {
        let p = Program::new(vec![Instr::Bra { target: 2 }, nop(0), Instr::Exit]);
        let cfg = Cfg::build(&p);
        let r = cfg.reachable();
        assert!(r.contains(0));
        assert!(!r.contains(1));
        assert!(r.contains(2));
    }
}
