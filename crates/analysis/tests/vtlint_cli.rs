//! End-to-end tests for the `vtlint` binary: exit-code contract and
//! `--json` schema shape for both the lint and `--model` outputs.
//!
//! The contract under test (documented in the binary's module docs):
//!
//! * exit 0 — no error-severity finding (warnings/infos do not fail);
//! * exit 1 — at least one error-severity finding;
//! * exit 2 — usage, I/O or parse problems.

use std::path::PathBuf;
use std::process::{Command, Output};
use vt_json::Json;

fn vtlint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vtlint"))
        .args(args)
        .output()
        .expect("spawn vtlint")
}

fn write_fixture(name: &str, src: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("vtlint-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, src).expect("write fixture");
    path
}

/// A legal kernel whose only findings are warnings (uninitialised read
/// of a zero-initialised register plus a dead store).
const WARNING_ONLY: &str = "\
.kernel warn-only
.grid 1 64
.regs 2
    mov r1, r0
    exit
";

/// A kernel with a barrier under a tid-dependent branch: a
/// divergent-barrier *error* (the CTA can deadlock).
const DIVERGENT_BARRIER: &str = "\
.kernel div-bar
.grid 1 64
.regs 1
    mov r0, %tid
    brc.z r0, @end, @end
    bar
@end:
    exit
";

#[test]
fn warnings_exit_zero_errors_exit_one() {
    let warn = write_fixture("warn.vtasm", WARNING_ONLY);
    let out = vtlint(&[warn.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "warnings must not fail the exit code: {stdout}"
    );
    assert!(stdout.contains("warning"), "{stdout}");

    let err = write_fixture("err.vtasm", DIVERGENT_BARRIER);
    let out = vtlint(&[err.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "errors must exit 1: {stdout}");
    assert!(stdout.contains("divergent-barrier"), "{stdout}");

    // An error elsewhere in the batch still fails the whole run.
    let out = vtlint(&[warn.to_str().unwrap(), err.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));

    std::fs::remove_file(warn).ok();
    std::fs::remove_file(err).ok();
}

#[test]
fn usage_and_io_problems_exit_two() {
    // No inputs at all.
    let out = vtlint(&[]);
    assert_eq!(out.status.code(), Some(2));

    // Unknown flag.
    let out = vtlint(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));

    // Missing file.
    let out = vtlint(&["/nonexistent/kernel.vtasm"]);
    assert_eq!(out.status.code(), Some(2));

    // Unparseable source.
    let bad = write_fixture("bad.vtasm", "this is not vtasm\n");
    let out = vtlint(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(bad).ok();
}

#[test]
fn lint_json_matches_documented_schema() {
    let out = vtlint(&["--suite", "--json"]);
    assert_eq!(out.status.code(), Some(0), "suite has warnings only");
    let json = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let reports = json.as_array().expect("top-level array");
    assert_eq!(reports.len(), 20, "one report per suite kernel");
    for r in reports {
        for key in [
            "kernel",
            "declared_regs",
            "used_regs",
            "register_pressure",
            "barriers",
            "barrier_intervals",
            "errors",
            "warnings",
            "diagnostics",
        ] {
            assert!(r.get(key).is_some(), "report missing key `{key}`");
        }
        assert_eq!(vt_json::req_u64(r, "errors").unwrap(), 0);
        for d in vt_json::req_array(r, "diagnostics").unwrap() {
            for key in ["severity", "rule", "pc", "message"] {
                assert!(d.get(key).is_some(), "diagnostic missing key `{key}`");
            }
        }
    }
}

#[test]
fn model_json_matches_documented_schema() {
    let out = vtlint(&["--model", "--suite", "--json"]);
    assert_eq!(out.status.code(), Some(0), "model findings are warnings");
    let json = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let models = json.as_array().expect("top-level array");
    assert_eq!(models.len(), 20, "one model per suite kernel");
    for m in models {
        for key in [
            "kernel",
            "threads_per_cta",
            "warps_per_cta",
            "regs_per_thread",
            "smem_bytes_per_cta",
            "bounds",
            "limiter",
            "scheduling_limited",
            "residency",
            "residency_gain",
            "predicts_vt_gain",
            "divergence_nesting",
            "register_pressure",
            "mem_sites",
            "diagnostics",
        ] {
            assert!(m.get(key).is_some(), "model missing key `{key}`");
        }
        let bounds = vt_json::req(m, "bounds").unwrap();
        let sched = vt_json::req_u64(bounds, "by_cta_slots")
            .unwrap()
            .min(vt_json::req_u64(bounds, "by_warp_slots").unwrap());
        let residency = vt_json::req(m, "residency").unwrap();
        let base = vt_json::req_u64(residency, "baseline").unwrap();
        let vt = vt_json::req_u64(residency, "vt").unwrap();
        assert!(base >= 1, "at least one CTA always fits");
        assert!(vt >= base, "VT never reduces residency");
        assert!(base <= sched, "baseline respects scheduling slots");
        assert_eq!(
            vt_json::req_u64(residency, "ideal").unwrap(),
            vt,
            "ideal and vt share the capacity-only bound"
        );
        for site in vt_json::req_array(m, "mem_sites").unwrap() {
            let space = vt_json::req_str(site, "space").unwrap();
            assert!(space == "g" || space == "s", "space is `g` or `s`");
            assert!(site.get("stride").is_some());
        }
    }
}

#[test]
fn model_table_lists_every_suite_kernel() {
    let out = vtlint(&["--model", "--suite"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["bfs", "sgemm", "lbm", "backprop", "streamcluster"] {
        assert!(stdout.contains(name), "table missing `{name}`:\n{stdout}");
    }
    assert!(stdout.contains("scheduling-limited"), "{stdout}");
}
