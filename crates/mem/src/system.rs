//! The top-level memory system an SM talks to.
//!
//! One [`MemSystem`] serves all SMs: it owns the per-SM L1D front-ends
//! ([`SmFront`]: L1 cache, MSHRs, response queue, request outbox), the
//! two interconnect directions and the memory partitions, and is ticked
//! once per core cycle by the GPU model.
//!
//! ## Protocol
//!
//! Each cycle the simulator calls [`MemSystem::tick`], then SMs submit
//! coalesced transactions with [`MemSystem::try_submit`] (which may refuse —
//! MSHR or port exhaustion — in which case the LD/ST unit retries next
//! cycle) and drain completions with [`MemSystem::pop_response`].
//! Responses are matched by the opaque `id` the SM chose at submission.
//!
//! ## Parallel-engine split
//!
//! To let the GPU model tick SMs on worker threads, the per-SM state is
//! factored into [`SmFront`]: everything `try_submit`/`pop_response`
//! touch is private to one SM, *except* the SM→partition interconnect.
//! A front therefore never pushes into the interconnect directly — it
//! appends accepted requests to its **outbox**, and the (sequential)
//! merge step calls [`MemSystem::merge_outboxes`] to flush all outboxes
//! in `(sm_id, submission order)`. Because [`Icnt::push`] computes the
//! arrival cycle purely from its arguments and preserves push order, the
//! deferred flush is cycle-for-cycle identical to the pre-split
//! immediate push, for any thread count. The sequential compatibility
//! wrappers ([`MemSystem::try_submit`] etc.) flush the outbox
//! immediately, preserving the original single-threaded call shape.

use crate::cache::{Cache, Probe};
use crate::config::MemConfig;
use crate::icnt::Icnt;
use crate::mshr::{Mshr, MshrAlloc};
use crate::partition::{PartReq, PartResp, Partition};
use crate::stats::MemStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use vt_json::{elem, elem_u64, req, req_array, req_u64, Json};
use vt_trace::{MemLevel, NullSink, TraceEvent, TraceSink};

pub use crate::partition::ReqKind;

/// How often (in cycles) per-SM MSHR occupancy counters are emitted to an
/// enabled sink. Sampled, not per-cycle, to keep traced runs light.
const COUNTER_PERIOD: u64 = 128;

/// Outcome of [`MemSystem::try_submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Accepted and served by the L1 (short latency).
    Hit,
    /// Accepted but going below the L1 (long latency) — a fresh miss, a
    /// merge onto an in-flight miss, a store, or an atomic.
    Miss,
    /// Rejected (port or MSHR exhaustion); retry next cycle.
    Rejected,
}

impl Submit {
    /// Whether the transaction was accepted.
    pub fn accepted(&self) -> bool {
        !matches!(self, Submit::Rejected)
    }
}

/// Flits for a request header (loads, atomics).
const REQ_FLITS: u32 = 1;
/// Flits for a store request (header + 128 B data).
const STORE_FLITS: u32 = 5;
/// Flits for a fill response (header + 128 B data).
const RESP_FLITS: u32 = 5;

/// One SM's private slice of the memory system: L1 cache, MSHRs, the
/// ready-response queue and the outbox of requests bound for the
/// interconnect. All methods touch only this SM's state, so distinct
/// fronts may be driven from distinct threads within a cycle.
#[derive(Debug)]
pub struct SmFront {
    sm_id: usize,
    cache: Cache,
    mshr: Mshr<u64>,
    ports_used: u32,
    window_hits: u64,
    window_accesses: u64,
    /// Min-heap of (ready_cycle, seq, id). `seq` is per-front and makes
    /// pop order stable for same-cycle completions; entries of one front
    /// are never compared against another's, so per-front numbering pops
    /// in exactly the order a globally numbered heap would.
    resps: BinaryHeap<Reverse<(u64, u64, u64)>>,
    submit_times: HashMap<u64, u64>,
    seq: u64,
    /// Accepted requests awaiting the ordered flush into the
    /// SM→partition interconnect: `(flits, request)` in submission order.
    outbox: Vec<(u32, PartReq)>,
    /// Front-side counters (submit path and load completion); the
    /// aggregate is assembled by [`MemSystem::stats`].
    stats: MemStats,
    l1_ports: u32,
    l1_hit_latency: u64,
}

impl SmFront {
    fn new(cfg: &MemConfig, sm_id: usize) -> SmFront {
        SmFront {
            sm_id,
            cache: Cache::new(cfg.l1_sets(), cfg.l1_ways),
            mshr: Mshr::new(cfg.l1_mshr_entries, cfg.l1_mshr_merges),
            ports_used: 0,
            window_hits: 0,
            window_accesses: 0,
            resps: BinaryHeap::new(),
            submit_times: HashMap::new(),
            seq: 0,
            outbox: Vec::new(),
            stats: MemStats::default(),
            l1_ports: cfg.l1_ports,
            l1_hit_latency: u64::from(cfg.l1_hit_latency),
        }
    }

    /// Submits one coalesced transaction at cycle `now`; see
    /// [`MemSystem::try_submit`] for the protocol.
    pub fn try_submit(&mut self, now: u64, id: u64, line_addr: u64, kind: ReqKind) -> Submit {
        self.try_submit_traced(now, id, line_addr, kind, &mut NullSink)
    }

    /// [`SmFront::try_submit`] with trace instrumentation. An accepted
    /// load/atomic opens the request's async span ([`TraceEvent::MemBegin`]);
    /// a rejection emits nothing, so the retried submission still opens the
    /// span exactly once.
    pub fn try_submit_traced<S: TraceSink>(
        &mut self,
        now: u64,
        id: u64,
        line_addr: u64,
        kind: ReqKind,
        sink: &mut S,
    ) -> Submit {
        let sm = self.sm_id;
        let begin = |sink: &mut S, level: MemLevel| {
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEvent::MemBegin {
                        sm: sm as u32,
                        req: id,
                        line_addr,
                        kind: kind.trace_kind(),
                        level,
                    },
                );
            }
        };
        if self.ports_used >= self.l1_ports {
            self.stats.l1_stalls += 1;
            return Submit::Rejected;
        }
        match kind {
            ReqKind::Load => {
                if self.cache.probe(line_addr, now) == Probe::Hit {
                    self.ports_used += 1;
                    self.window_hits += 1;
                    self.window_accesses += 1;
                    self.stats.l1_accesses += 1;
                    self.stats.l1_hits += 1;
                    self.seq += 1;
                    let ready = now + self.l1_hit_latency;
                    self.resps.push(Reverse((ready, self.seq, id)));
                    self.stats.loads_completed += 1;
                    self.stats.load_latency_sum += self.l1_hit_latency;
                    self.stats.load_latency.record(self.l1_hit_latency);
                    begin(sink, MemLevel::L1Hit);
                    return Submit::Hit;
                }
                match self.mshr.alloc(line_addr, id) {
                    MshrAlloc::NewMiss => {
                        self.ports_used += 1;
                        self.window_accesses += 1;
                        self.stats.l1_accesses += 1;
                        self.stats.l1_misses += 1;
                        self.submit_times.insert(id, now);
                        begin(sink, MemLevel::L1Miss);
                        self.outbox.push((
                            REQ_FLITS,
                            PartReq {
                                sm,
                                id,
                                line_addr,
                                kind,
                            },
                        ));
                        Submit::Miss
                    }
                    MshrAlloc::Merged => {
                        self.ports_used += 1;
                        self.window_accesses += 1;
                        self.stats.l1_accesses += 1;
                        self.stats.l1_mshr_merged += 1;
                        self.submit_times.insert(id, now);
                        begin(sink, MemLevel::L1MshrMerge);
                        Submit::Miss
                    }
                    MshrAlloc::Stall => {
                        self.stats.l1_stalls += 1;
                        Submit::Rejected
                    }
                }
            }
            ReqKind::Store => {
                self.ports_used += 1;
                // Write-through, write-evict: drop any cached copy and
                // send the data to the partition.
                self.cache.invalidate(line_addr);
                if S::ENABLED {
                    sink.emit(
                        now,
                        TraceEvent::StoreSubmit {
                            sm: sm as u32,
                            line_addr,
                        },
                    );
                }
                self.outbox.push((
                    STORE_FLITS,
                    PartReq {
                        sm,
                        id,
                        line_addr,
                        kind,
                    },
                ));
                Submit::Miss
            }
            ReqKind::Atomic => {
                self.ports_used += 1;
                self.stats.atomics += 1;
                self.cache.invalidate(line_addr);
                self.submit_times.insert(id, now);
                begin(sink, MemLevel::L1Bypass);
                self.outbox.push((
                    REQ_FLITS,
                    PartReq {
                        sm,
                        id,
                        line_addr,
                        kind,
                    },
                ));
                Submit::Miss
            }
        }
    }

    /// Pops one completed load/atomic id ready at or before `now`.
    pub fn pop_response(&mut self, now: u64) -> Option<u64> {
        self.pop_response_traced(now, &mut NullSink)
    }

    /// [`SmFront::pop_response`] with trace instrumentation; popping a
    /// response closes the request's async span ([`TraceEvent::MemEnd`]).
    pub fn pop_response_traced<S: TraceSink>(&mut self, now: u64, sink: &mut S) -> Option<u64> {
        match self.resps.peek() {
            Some(&Reverse((ready, _, _))) if ready <= now => {
                let Reverse((_, _, id)) = self.resps.pop().expect("peeked");
                if S::ENABLED {
                    sink.emit(
                        now,
                        TraceEvent::MemEnd {
                            sm: self.sm_id as u32,
                            req: id,
                        },
                    );
                }
                Some(id)
            }
            _ => None,
        }
    }

    /// Takes and resets this SM's windowed L1 counters: `(hits, lookups)`
    /// since the last call. Feeds adaptive thrash-control policies.
    pub fn take_l1_window(&mut self) -> (u64, u64) {
        let w = (self.window_hits, self.window_accesses);
        self.window_hits = 0;
        self.window_accesses = 0;
        w
    }

    fn finish_load(&mut self, id: u64, now: u64) {
        if let Some(t) = self.submit_times.remove(&id) {
            let latency = now.saturating_sub(t);
            self.stats.loads_completed += 1;
            self.stats.load_latency_sum += latency;
            self.stats.load_latency.record(latency);
        }
    }

    fn quiesced(&self) -> bool {
        self.mshr.is_empty() && self.resps.is_empty() && self.outbox.is_empty()
    }

    /// Serializes this front for checkpointing. The response heap is
    /// emitted in ascending `(ready, seq, id)` order (each key unique per
    /// front), so re-pushing reproduces the exact pop order;
    /// `submit_times` is emitted sorted by request id for deterministic
    /// text.
    fn snapshot(&self) -> Json {
        let mut resps: Vec<(u64, u64, u64)> = self.resps.iter().map(|Reverse(x)| *x).collect();
        resps.sort_unstable();
        let mut submits: Vec<(u64, u64)> =
            self.submit_times.iter().map(|(&id, &t)| (id, t)).collect();
        submits.sort_unstable();
        Json::Object(vec![
            ("sm_id".into(), Json::UInt(self.sm_id as u64)),
            ("cache".into(), self.cache.snapshot()),
            (
                "mshr".into(),
                self.mshr.snapshot_with(&|&id| Json::UInt(id)),
            ),
            ("ports_used".into(), Json::UInt(u64::from(self.ports_used))),
            ("window_hits".into(), Json::UInt(self.window_hits)),
            ("window_accesses".into(), Json::UInt(self.window_accesses)),
            (
                "resps".into(),
                Json::Array(
                    resps
                        .into_iter()
                        .map(|(ready, seq, id)| {
                            Json::Array(vec![Json::UInt(ready), Json::UInt(seq), Json::UInt(id)])
                        })
                        .collect(),
                ),
            ),
            (
                "submit_times".into(),
                Json::Array(
                    submits
                        .into_iter()
                        .map(|(id, t)| Json::Array(vec![Json::UInt(id), Json::UInt(t)]))
                        .collect(),
                ),
            ),
            ("seq".into(), Json::UInt(self.seq)),
            (
                "outbox".into(),
                Json::Array(
                    self.outbox
                        .iter()
                        .map(|(flits, r)| {
                            Json::Array(vec![Json::UInt(u64::from(*flits)), r.snapshot()])
                        })
                        .collect(),
                ),
            ),
            ("stats".into(), self.stats.snapshot()),
            ("l1_ports".into(), Json::UInt(u64::from(self.l1_ports))),
            ("l1_hit_latency".into(), Json::UInt(self.l1_hit_latency)),
        ])
    }

    fn restore(v: &Json) -> Result<SmFront, String> {
        let mut resps = BinaryHeap::new();
        for item in req_array(v, "resps")? {
            let a = item.as_array().ok_or("response is not an array")?;
            resps.push(Reverse((elem_u64(a, 0)?, elem_u64(a, 1)?, elem_u64(a, 2)?)));
        }
        let mut submit_times = HashMap::new();
        for item in req_array(v, "submit_times")? {
            let a = item.as_array().ok_or("submit time is not an array")?;
            submit_times.insert(elem_u64(a, 0)?, elem_u64(a, 1)?);
        }
        let mut outbox = Vec::new();
        for item in req_array(v, "outbox")? {
            let a = item.as_array().ok_or("outbox item is not an array")?;
            outbox.push((elem_u64(a, 0)? as u32, PartReq::restore(elem(a, 1)?)?));
        }
        Ok(SmFront {
            sm_id: req_u64(v, "sm_id")? as usize,
            cache: Cache::restore(req(v, "cache")?)?,
            mshr: Mshr::restore_with(req(v, "mshr")?, &|item| {
                item.as_u64()
                    .ok_or_else(|| "waiter is not a u64".to_string())
            })?,
            ports_used: req_u64(v, "ports_used")? as u32,
            window_hits: req_u64(v, "window_hits")?,
            window_accesses: req_u64(v, "window_accesses")?,
            resps,
            submit_times,
            seq: req_u64(v, "seq")?,
            outbox,
            stats: MemStats::restore(req(v, "stats")?)?,
            l1_ports: req_u64(v, "l1_ports")? as u32,
            l1_hit_latency: req_u64(v, "l1_hit_latency")?,
        })
    }
}

/// The complete memory hierarchy below the SMs' LD/ST units.
#[derive(Debug)]
pub struct MemSystem {
    fronts: Vec<SmFront>,
    to_mem: Icnt<PartReq>,
    to_sm: Icnt<PartResp>,
    partitions: Vec<Partition>,
    /// Back-end counters (partitions, DRAM, MSHR occupancy); front-side
    /// counters live in each [`SmFront`].
    stats: MemStats,
    cfg: MemConfig,
    now: u64,
}

impl MemSystem {
    /// Builds the hierarchy for `num_sms` SMs.
    pub fn new(cfg: &MemConfig, num_sms: usize) -> MemSystem {
        MemSystem {
            fronts: (0..num_sms).map(|sm| SmFront::new(cfg, sm)).collect(),
            to_mem: Icnt::new(cfg.icnt_latency, cfg.icnt_flits_per_cycle),
            to_sm: Icnt::new(cfg.icnt_latency, cfg.icnt_flits_per_cycle),
            partitions: (0..cfg.partitions).map(|_| Partition::new(cfg)).collect(),
            stats: MemStats::default(),
            cfg: cfg.clone(),
            now: 0,
        }
    }

    /// Bytes per cache line / coalescing segment.
    pub fn line_bytes(&self) -> u32 {
        self.cfg.line_bytes
    }

    /// SM `sm`'s front-end, for thread-parallel submission. The caller is
    /// responsible for flushing outboxes afterwards (see
    /// [`MemSystem::merge_outboxes`]).
    pub fn front_mut(&mut self, sm: usize) -> &mut SmFront {
        &mut self.fronts[sm]
    }

    /// All front-ends, for sharding across worker threads.
    pub fn fronts_mut(&mut self) -> &mut [SmFront] {
        &mut self.fronts
    }

    /// Advances the whole hierarchy to cycle `now`. Call once per cycle,
    /// before the SMs submit that cycle's transactions.
    pub fn tick(&mut self, now: u64) {
        self.tick_traced(now, &mut NullSink);
    }

    /// [`MemSystem::tick`] with trace instrumentation; the `NullSink`
    /// instantiation is the plain tick.
    pub fn tick_traced<S: TraceSink>(&mut self, now: u64, sink: &mut S) {
        self.now = now;
        let mut mshr_in_flight = 0u64;
        for f in &mut self.fronts {
            f.ports_used = 0;
            mshr_in_flight += f.mshr.len() as u64;
        }
        self.stats.mshr_occupancy.sample(mshr_in_flight);
        if S::ENABLED && now.is_multiple_of(COUNTER_PERIOD) {
            for f in &self.fronts {
                sink.emit(
                    now,
                    TraceEvent::Counter {
                        sm: f.sm_id as u32,
                        name: "l1_mshr",
                        value: f.mshr.len() as u64,
                    },
                );
            }
        }
        // Partitions produce responses into the SM-bound network.
        for p in &mut self.partitions {
            for resp in p.tick_traced(now, &mut self.stats, sink) {
                self.to_sm.push(now, RESP_FLITS, resp);
            }
        }
        // Requests arrive at partitions.
        for req in self.to_mem.deliver(now) {
            if S::ENABLED && req.kind != ReqKind::Store {
                sink.emit(
                    now,
                    TraceEvent::MemAt {
                        sm: req.sm as u32,
                        req: req.id,
                        level: MemLevel::PartitionArrive,
                    },
                );
            }
            let p = self.cfg.partition_of(req.line_addr);
            self.partitions[p].push(req);
        }
        // Responses arrive at L1s.
        for resp in self.to_sm.deliver(now) {
            self.on_response(resp, now, sink);
        }
    }

    fn on_response<S: TraceSink>(&mut self, resp: PartResp, now: u64, sink: &mut S) {
        let front = &mut self.fronts[resp.sm];
        match resp.kind {
            ReqKind::Load => {
                // Fill; write-through means victims are never dirty.
                let _ = front.cache.fill(resp.line_addr, now, false);
                for id in front.mshr.fill(resp.line_addr) {
                    if S::ENABLED {
                        sink.emit(
                            now,
                            TraceEvent::MemAt {
                                sm: resp.sm as u32,
                                req: id,
                                level: MemLevel::L1Fill,
                            },
                        );
                    }
                    front.seq += 1;
                    front.resps.push(Reverse((now, front.seq, id)));
                    front.finish_load(id, now);
                }
            }
            ReqKind::Atomic => {
                if S::ENABLED {
                    sink.emit(
                        now,
                        TraceEvent::MemAt {
                            sm: resp.sm as u32,
                            req: resp.id,
                            level: MemLevel::L1Fill,
                        },
                    );
                }
                front.seq += 1;
                front.resps.push(Reverse((now, front.seq, resp.id)));
                front.finish_load(resp.id, now);
            }
            ReqKind::Store => {}
        }
    }

    /// Flushes every front's outbox into the SM→partition interconnect in
    /// `(sm_id, submission order)` — the sequential engine's exact
    /// ordering. The parallel engine calls this once per cycle after the
    /// SM phase; [`Icnt::push`] derives arrival purely from `(now, flits)`
    /// and preserves push order, so deferring to end-of-cycle is
    /// indistinguishable from pushing at submission time.
    pub fn merge_outboxes(&mut self) {
        let now = self.now;
        for f in &mut self.fronts {
            for (flits, req) in f.outbox.drain(..) {
                self.to_mem.push(now, flits, req);
            }
        }
    }

    /// Flushes one front's outbox immediately (sequential compatibility
    /// path for callers that drive a single front through
    /// [`MemSystem::front_mut`]).
    pub fn flush_outbox(&mut self, sm: usize) {
        let now = self.now;
        for (flits, req) in self.fronts[sm].outbox.drain(..) {
            self.to_mem.push(now, flits, req);
        }
    }

    /// Submits one coalesced transaction from SM `sm`.
    ///
    /// `line_addr` is the byte address divided by [`MemSystem::line_bytes`].
    /// Returns [`Submit::Rejected`] on a resource stall (L1 port or MSHR
    /// exhaustion); the caller must retry with the same `id` on a later
    /// cycle. Loads and atomics eventually produce `id` via
    /// [`MemSystem::pop_response`]; stores complete immediately from the
    /// SM's perspective. The `Hit`/`Miss` distinction feeds the Virtual
    /// Thread swap trigger, which only reacts to long-latency stalls.
    pub fn try_submit(&mut self, sm: usize, id: u64, line_addr: u64, kind: ReqKind) -> Submit {
        self.try_submit_traced(sm, id, line_addr, kind, &mut NullSink)
    }

    /// [`MemSystem::try_submit`] with trace instrumentation; see
    /// [`SmFront::try_submit_traced`].
    pub fn try_submit_traced<S: TraceSink>(
        &mut self,
        sm: usize,
        id: u64,
        line_addr: u64,
        kind: ReqKind,
        sink: &mut S,
    ) -> Submit {
        let now = self.now;
        let outcome = self.fronts[sm].try_submit_traced(now, id, line_addr, kind, sink);
        self.flush_outbox(sm);
        outcome
    }

    /// Pops one completed load/atomic id for SM `sm`, if any is ready.
    pub fn pop_response(&mut self, sm: usize) -> Option<u64> {
        let now = self.now;
        self.fronts[sm].pop_response(now)
    }

    /// [`MemSystem::pop_response`] with trace instrumentation.
    pub fn pop_response_traced<S: TraceSink>(&mut self, sm: usize, sink: &mut S) -> Option<u64> {
        let now = self.now;
        self.fronts[sm].pop_response_traced(now, sink)
    }

    /// Whether the entire hierarchy has no request in flight.
    pub fn quiesced(&self) -> bool {
        self.to_mem.is_empty()
            && self.to_sm.is_empty()
            && self.partitions.iter().all(Partition::quiesced)
            && self.fronts.iter().all(SmFront::quiesced)
    }

    /// Loads and atomics currently outstanding (submitted, not yet
    /// responded).
    pub fn pending_loads(&self) -> usize {
        self.fronts.iter().map(|f| f.submit_times.len()).sum()
    }

    /// L1 MSHR entries currently allocated across all SM fronts — the
    /// instantaneous value behind the `mshr_occupancy` gauge, exposed for
    /// the windowed metrics sampler.
    pub fn mshr_in_flight(&self) -> u64 {
        self.fronts.iter().map(|f| f.mshr.len() as u64).sum()
    }

    /// Requests queued at the memory partitions (input queues plus DRAM
    /// queues/in-service), summed over partitions. A back-pressure level
    /// for the windowed metrics sampler.
    pub fn partition_queue_len(&self) -> u64 {
        self.partitions.iter().map(Partition::queue_len).sum()
    }

    /// Takes and resets SM `sm`'s windowed L1 counters: `(hits, lookups)`
    /// since the last call. Feeds adaptive thrash-control policies.
    pub fn take_l1_window(&mut self, sm: usize) -> (u64, u64) {
        self.fronts[sm].take_l1_window()
    }

    /// Accumulated statistics: the back-end counters merged with every
    /// front's, in SM order. All fields are sums/mins/maxes, so the
    /// aggregate equals what a single shared counter block would have
    /// recorded.
    pub fn stats(&self) -> MemStats {
        let mut total = self.stats.clone();
        for f in &self.fronts {
            total.merge(&f.stats);
        }
        total
    }

    /// Serializes the entire hierarchy — every front, both interconnect
    /// directions, every partition and the back-end counters — for
    /// checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            (
                "fronts".into(),
                Json::Array(self.fronts.iter().map(SmFront::snapshot).collect()),
            ),
            (
                "to_mem".into(),
                self.to_mem.snapshot_with(&|r| r.snapshot()),
            ),
            ("to_sm".into(), self.to_sm.snapshot_with(&|r| r.snapshot())),
            (
                "partitions".into(),
                Json::Array(self.partitions.iter().map(Partition::snapshot).collect()),
            ),
            ("stats".into(), self.stats.snapshot()),
            ("now".into(), Json::UInt(self.now)),
        ])
    }

    /// Rebuilds a hierarchy from [`MemSystem::snapshot`] output. `cfg`
    /// supplies the line-interleaving function and must be the config the
    /// snapshot was taken under; structural mismatches (partition count)
    /// are rejected.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input or a config mismatch.
    pub fn restore(cfg: &MemConfig, v: &Json) -> Result<MemSystem, String> {
        let fronts = req_array(v, "fronts")?
            .iter()
            .map(SmFront::restore)
            .collect::<Result<Vec<_>, String>>()?;
        let partitions = req_array(v, "partitions")?
            .iter()
            .map(Partition::restore)
            .collect::<Result<Vec<_>, String>>()?;
        if partitions.len() != cfg.partitions as usize {
            return Err(format!(
                "checkpoint has {} partitions, config has {}",
                partitions.len(),
                cfg.partitions
            ));
        }
        Ok(MemSystem {
            fronts,
            to_mem: Icnt::restore_with(req(v, "to_mem")?, &PartReq::restore)?,
            to_sm: Icnt::restore_with(req(v, "to_sm")?, &PartResp::restore)?,
            partitions,
            stats: MemStats::restore(req(v, "stats")?)?,
            cfg: cfg.clone(),
            now: req_u64(v, "now")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_response(mem: &mut MemSystem, sm: usize, start: u64, limit: u64) -> (u64, u64) {
        for cycle in start..start + limit {
            mem.tick(cycle);
            if let Some(id) = mem.pop_response(sm) {
                return (cycle, id);
            }
        }
        panic!("no response within {limit} cycles");
    }

    #[test]
    fn load_miss_round_trip_latency_is_plausible() {
        let cfg = MemConfig::default();
        let mut mem = MemSystem::new(&cfg, 2);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        let (t, id) = run_until_response(&mut mem, 0, 1, 2000);
        assert_eq!(id, 1);
        let expected_min =
            u64::from(2 * cfg.icnt_latency + cfg.dram_row_miss_latency + cfg.dram_burst_cycles);
        assert!(t >= expected_min, "{t} < {expected_min}");
        assert!(t < u64::from(cfg.uncontended_miss_latency()) * 3);
        assert_eq!(mem.stats().l1_misses, 1);
        // Wait for quiescence.
        for c in t + 1..t + 10 {
            mem.tick(c);
        }
        assert!(mem.quiesced());
    }

    #[test]
    fn second_load_hits_l1() {
        let cfg = MemConfig::default();
        let mut mem = MemSystem::new(&cfg, 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        let (t1, _) = run_until_response(&mut mem, 0, 1, 2000);
        mem.tick(t1 + 1);
        assert!(mem.try_submit(0, 2, 100, ReqKind::Load).accepted());
        let (t2, id) = run_until_response(&mut mem, 0, t1 + 2, 200);
        assert_eq!(id, 2);
        assert_eq!(t2 - (t1 + 1), u64::from(cfg.l1_hit_latency));
        assert_eq!(mem.stats().l1_hits, 1);
    }

    #[test]
    fn mshr_merging_same_line() {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        mem.tick(1);
        assert!(mem.try_submit(0, 2, 100, ReqKind::Load).accepted());
        let mut got = Vec::new();
        for cycle in 2..2000 {
            mem.tick(cycle);
            while let Some(id) = mem.pop_response(0) {
                got.push(id);
            }
            if got.len() == 2 {
                break;
            }
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(mem.stats().l1_misses, 1);
        assert_eq!(mem.stats().l1_mshr_merged, 1);
        assert_eq!(mem.stats().dram_reads, 1);
    }

    #[test]
    fn l1_port_limit_rejects_second_submission() {
        let cfg = MemConfig::default(); // 1 port
        let mut mem = MemSystem::new(&cfg, 1);
        mem.tick(0);
        assert_eq!(mem.try_submit(0, 1, 1, ReqKind::Load), Submit::Miss);
        assert_eq!(
            mem.try_submit(0, 2, 2, ReqKind::Load),
            Submit::Rejected,
            "port exhausted"
        );
        assert_eq!(mem.stats().l1_stalls, 1);
        mem.tick(1);
        assert!(
            mem.try_submit(0, 2, 2, ReqKind::Load).accepted(),
            "new cycle, new port"
        );
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let cfg = MemConfig {
            l1_mshr_entries: 2,
            l1_ports: 8,
            ..MemConfig::default()
        };
        let mut mem = MemSystem::new(&cfg, 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 10, ReqKind::Load).accepted());
        assert!(mem.try_submit(0, 2, 20, ReqKind::Load).accepted());
        assert_eq!(
            mem.try_submit(0, 3, 30, ReqKind::Load),
            Submit::Rejected,
            "MSHRs full"
        );
    }

    #[test]
    fn stores_complete_without_response() {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 5, ReqKind::Store).accepted());
        for cycle in 1..2000 {
            mem.tick(cycle);
            assert_eq!(mem.pop_response(0), None);
            if mem.quiesced() {
                break;
            }
        }
        assert!(mem.quiesced(), "store drained");
        assert_eq!(mem.stats().stores, 1);
    }

    #[test]
    fn store_invalidates_l1_copy() {
        let cfg = MemConfig::default();
        let mut mem = MemSystem::new(&cfg, 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        let (t, _) = run_until_response(&mut mem, 0, 1, 2000);
        mem.tick(t + 1);
        assert!(mem.try_submit(0, 2, 100, ReqKind::Store).accepted());
        mem.tick(t + 2);
        assert!(mem.try_submit(0, 3, 100, ReqKind::Load).accepted());
        let (_t2, id) = run_until_response(&mut mem, 0, t + 3, 2000);
        assert_eq!(id, 3);
        assert_eq!(mem.stats().l1_hits, 0, "write-evict forced a re-fetch");
    }

    #[test]
    fn atomic_round_trips_and_bypasses_l1() {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 9, 40, ReqKind::Atomic).accepted());
        let (_, id) = run_until_response(&mut mem, 0, 1, 2000);
        assert_eq!(id, 9);
        assert_eq!(mem.stats().atomics, 1);
        // Atomics never fill the L1.
        mem.tick(5000);
        assert_eq!(mem.try_submit(0, 10, 40, ReqKind::Load), Submit::Miss);
        assert_eq!(mem.stats().l1_hits, 0);
    }

    #[test]
    fn per_sm_isolation() {
        let mut mem = MemSystem::new(&MemConfig::default(), 2);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        assert!(mem.try_submit(1, 2, 100, ReqKind::Load).accepted());
        let mut got = [Vec::new(), Vec::new()];
        for cycle in 1..3000 {
            mem.tick(cycle);
            for (sm, bucket) in got.iter_mut().enumerate() {
                while let Some(id) = mem.pop_response(sm) {
                    bucket.push(id);
                }
            }
        }
        assert_eq!(got[0], vec![1]);
        assert_eq!(got[1], vec![2]);
        // Both SMs missed their private L1s; the L2 merged the fills.
        assert_eq!(mem.stats().l1_misses, 2);
        assert_eq!(mem.stats().dram_reads, 1);
    }

    #[test]
    fn l1_window_counts_and_resets() {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        let (t, _) = run_until_response(&mut mem, 0, 1, 2000);
        mem.tick(t + 1);
        assert!(mem.try_submit(0, 2, 100, ReqKind::Load).accepted()); // hit
        let (h, a) = mem.take_l1_window(0);
        assert_eq!((h, a), (1, 2), "one miss + one hit observed");
        assert_eq!(mem.take_l1_window(0), (0, 0), "window resets");
    }

    #[test]
    fn load_latency_stat_accumulates() {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 100, ReqKind::Load).accepted());
        run_until_response(&mut mem, 0, 1, 2000);
        assert_eq!(mem.stats().loads_completed, 1);
        assert!(mem.stats().avg_load_latency() > 100.0);
    }

    #[test]
    fn snapshot_restore_mid_flight_is_bit_identical() {
        // Put a mix of hits, misses, merges, stores and atomics in flight,
        // snapshot through the JSON text form, then run the original and
        // the restored copy side by side to quiescence.
        let cfg = MemConfig::default();
        let mut mem = MemSystem::new(&cfg, 2);
        for cycle in 0..40u64 {
            mem.tick(cycle);
            let sm = (cycle % 2) as usize;
            let id = cycle + 1;
            let _ = mem.try_submit(sm, id, cycle * 3 % 7, ReqKind::Load);
            if cycle % 5 == 0 {
                let _ = mem.try_submit(sm, id + 1000, cycle, ReqKind::Store);
            }
            if cycle % 11 == 0 {
                let _ = mem.try_submit(sm, id + 2000, cycle, ReqKind::Atomic);
            }
            while mem.pop_response(sm).is_some() {}
        }
        let text = mem.snapshot().pretty();
        let mut copy = MemSystem::restore(&cfg, &vt_json::Json::parse(&text).unwrap()).unwrap();
        for cycle in 40..4000u64 {
            mem.tick(cycle);
            copy.tick(cycle);
            for sm in 0..2 {
                loop {
                    let a = mem.pop_response(sm);
                    let b = copy.pop_response(sm);
                    assert_eq!(a, b, "cycle {cycle} sm {sm}");
                    if a.is_none() {
                        break;
                    }
                }
            }
            if mem.quiesced() {
                break;
            }
        }
        assert!(mem.quiesced() && copy.quiesced());
        assert_eq!(mem.stats(), copy.stats());
        assert_eq!(mem.pending_loads(), copy.pending_loads());
        // A second snapshot of the restored copy is byte-identical.
        assert_eq!(mem.snapshot().pretty(), copy.snapshot().pretty());
    }

    #[test]
    fn restore_rejects_partition_mismatch() {
        let cfg = MemConfig::default();
        let mem = MemSystem::new(&cfg, 1);
        let snap = mem.snapshot();
        let bad = MemConfig {
            partitions: cfg.partitions + 1,
            ..cfg
        };
        assert!(MemSystem::restore(&bad, &snap)
            .unwrap_err()
            .contains("partitions"));
    }

    #[test]
    fn deferred_outbox_flush_matches_immediate_submission() {
        // Submitting through the front with an end-of-cycle
        // `merge_outboxes` must be cycle-for-cycle identical to the
        // immediate-flush compatibility path.
        let cfg = MemConfig::default();
        let mut imm = MemSystem::new(&cfg, 2);
        let mut def = MemSystem::new(&cfg, 2);
        imm.tick(0);
        def.tick(0);
        for sm in 0..2usize {
            let id = sm as u64 + 1;
            assert!(imm.try_submit(sm, id, 100 + id, ReqKind::Load).accepted());
            assert!(def
                .front_mut(sm)
                .try_submit(0, id, 100 + id, ReqKind::Load)
                .accepted());
        }
        def.merge_outboxes();
        for cycle in 1..2000 {
            imm.tick(cycle);
            def.tick(cycle);
            for sm in 0..2usize {
                assert_eq!(
                    imm.pop_response(sm),
                    def.front_mut(sm).pop_response(cycle),
                    "cycle {cycle} sm {sm}"
                );
            }
            if imm.quiesced() && def.quiesced() {
                break;
            }
        }
        assert!(imm.quiesced() && def.quiesced());
        assert_eq!(imm.stats(), def.stats());
    }
}
