//! Miss-status holding registers.
//!
//! MSHRs bound the number of distinct outstanding miss lines and how many
//! requests may merge onto one line. When they fill up, a cache stops
//! accepting new misses — one of the resource walls that limits how much
//! latency extra thread-level parallelism can actually hide, and therefore
//! part of why the Virtual Thread results saturate in the sensitivity
//! sweeps.

use std::collections::HashMap;
use vt_json::{elem, elem_u64, req_array, req_u64, Json};

/// Outcome of trying to record a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// First miss on this line: the caller must send a fill request down
    /// the hierarchy.
    NewMiss,
    /// Merged onto an existing in-flight line: no new downstream request.
    Merged,
    /// No entry or merge slot available: the access must be retried.
    Stall,
}

/// A finite MSHR table tracking waiters of type `T` per in-flight line.
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    entries: HashMap<u64, Vec<T>>,
    max_entries: usize,
    max_merges: usize,
}

impl<T> Mshr<T> {
    /// A table with `max_entries` distinct lines and `max_merges` waiters
    /// per line.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(max_entries: u32, max_merges: u32) -> Mshr<T> {
        assert!(
            max_entries > 0 && max_merges > 0,
            "degenerate MSHR geometry"
        );
        Mshr {
            entries: HashMap::new(),
            max_entries: max_entries as usize,
            max_merges: max_merges as usize,
        }
    }

    /// Records a miss on `line_addr` with waiter metadata `waiter`.
    pub fn alloc(&mut self, line_addr: u64, waiter: T) -> MshrAlloc {
        if let Some(waiters) = self.entries.get_mut(&line_addr) {
            if waiters.len() >= self.max_merges {
                return MshrAlloc::Stall;
            }
            waiters.push(waiter);
            return MshrAlloc::Merged;
        }
        if self.entries.len() >= self.max_entries {
            return MshrAlloc::Stall;
        }
        self.entries.insert(line_addr, vec![waiter]);
        MshrAlloc::NewMiss
    }

    /// Completes the fill of `line_addr`, releasing its waiters in arrival
    /// order. Returns an empty vector if the line was not pending.
    pub fn fill(&mut self, line_addr: u64) -> Vec<T> {
        self.entries.remove(&line_addr).unwrap_or_default()
    }

    /// Whether a fill for `line_addr` is in flight.
    pub fn pending(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Lines currently in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no miss is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the table for checkpointing, encoding each waiter with
    /// `ser`. Lines are emitted sorted by address so the output text is
    /// deterministic; waiter order within a line (arrival order) is
    /// preserved exactly.
    pub fn snapshot_with(&self, ser: &dyn Fn(&T) -> Json) -> Json {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        Json::Object(vec![
            ("max_entries".into(), Json::UInt(self.max_entries as u64)),
            ("max_merges".into(), Json::UInt(self.max_merges as u64)),
            (
                "entries".into(),
                Json::Array(
                    lines
                        .into_iter()
                        .map(|line| {
                            let waiters = &self.entries[&line];
                            Json::Array(vec![
                                Json::UInt(line),
                                Json::Array(waiters.iter().map(ser).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a table from [`Mshr::snapshot_with`] output, decoding each
    /// waiter with `de`.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input or waiter decode failure.
    pub fn restore_with(
        v: &Json,
        de: &dyn Fn(&Json) -> Result<T, String>,
    ) -> Result<Mshr<T>, String> {
        let max_entries = req_u64(v, "max_entries")? as usize;
        let max_merges = req_u64(v, "max_merges")? as usize;
        if max_entries == 0 || max_merges == 0 {
            return Err("degenerate MSHR geometry".to_string());
        }
        let mut entries = HashMap::new();
        for item in req_array(v, "entries")? {
            let a = item.as_array().ok_or("MSHR entry is not an array")?;
            let line = elem_u64(a, 0)?;
            let waiters = elem(a, 1)?
                .as_array()
                .ok_or("MSHR waiters is not an array")?
                .iter()
                .map(de)
                .collect::<Result<Vec<_>, String>>()?;
            entries.insert(line, waiters);
        }
        Ok(Mshr {
            entries,
            max_entries,
            max_merges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_allocates_then_merges() {
        let mut m: Mshr<u32> = Mshr::new(2, 2);
        assert_eq!(m.alloc(100, 1), MshrAlloc::NewMiss);
        assert_eq!(m.alloc(100, 2), MshrAlloc::Merged);
        assert!(m.pending(100));
        assert_eq!(m.len(), 1);
        assert_eq!(m.fill(100), vec![1, 2]);
        assert!(m.is_empty());
        assert!(!m.pending(100));
    }

    #[test]
    fn merge_limit_stalls() {
        let mut m: Mshr<u32> = Mshr::new(4, 2);
        assert_eq!(m.alloc(1, 0), MshrAlloc::NewMiss);
        assert_eq!(m.alloc(1, 1), MshrAlloc::Merged);
        assert_eq!(m.alloc(1, 2), MshrAlloc::Stall);
        // Other lines are unaffected.
        assert_eq!(m.alloc(2, 3), MshrAlloc::NewMiss);
    }

    #[test]
    fn entry_limit_stalls() {
        let mut m: Mshr<u32> = Mshr::new(2, 8);
        assert_eq!(m.alloc(1, 0), MshrAlloc::NewMiss);
        assert_eq!(m.alloc(2, 0), MshrAlloc::NewMiss);
        assert_eq!(m.alloc(3, 0), MshrAlloc::Stall);
        // But merging onto existing lines still works at capacity.
        assert_eq!(m.alloc(1, 1), MshrAlloc::Merged);
        // Fill frees an entry.
        m.fill(2);
        assert_eq!(m.alloc(3, 0), MshrAlloc::NewMiss);
    }

    #[test]
    fn fill_of_unknown_line_is_empty() {
        let mut m: Mshr<u32> = Mshr::new(2, 2);
        assert!(m.fill(42).is_empty());
    }
}
