//! A memory partition: one L2 slice plus one DRAM channel.
//!
//! Mirrors GPGPU-Sim's organisation where the L2 is distributed across
//! memory partitions and each partition owns a GDDR channel. Lines are
//! interleaved across partitions by [`crate::config::MemConfig::partition_of`].

use crate::cache::{Cache, Probe};
use crate::config::MemConfig;
use crate::mshr::{Mshr, MshrAlloc};
use crate::stats::MemStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use vt_json::{elem, elem_bool, elem_u64, req, req_array, req_u64, Json};
use vt_trace::{MemLevel, NullSink, TraceEvent, TraceSink};

/// The kind of a memory request as seen below the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReqKind {
    /// A load; a response returns to the SM.
    Load,
    /// A global store; fire-and-forget (no response).
    Store,
    /// An atomic; performed at the L2, a response returns to the SM.
    Atomic,
}

impl ReqKind {
    /// The trace-layer equivalent of this kind.
    pub fn trace_kind(self) -> vt_trace::MemKind {
        match self {
            ReqKind::Load => vt_trace::MemKind::Load,
            ReqKind::Store => vt_trace::MemKind::Store,
            ReqKind::Atomic => vt_trace::MemKind::Atomic,
        }
    }

    /// Checkpoint tag for this kind.
    pub fn tag(self) -> &'static str {
        match self {
            ReqKind::Load => "load",
            ReqKind::Store => "store",
            ReqKind::Atomic => "atomic",
        }
    }

    /// Parses a [`ReqKind::tag`] back.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown tags.
    pub fn from_tag(s: &str) -> Result<ReqKind, String> {
        match s {
            "load" => Ok(ReqKind::Load),
            "store" => Ok(ReqKind::Store),
            "atomic" => Ok(ReqKind::Atomic),
            other => Err(format!("unknown request kind `{other}`")),
        }
    }
}

/// A request routed to a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartReq {
    /// Originating SM.
    pub sm: usize,
    /// Opaque request id the SM uses to match the response.
    pub id: u64,
    /// Cache-line address (byte address / line size).
    pub line_addr: u64,
    /// Request kind.
    pub kind: ReqKind,
}

/// A response travelling back to an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartResp {
    /// Destination SM.
    pub sm: usize,
    /// The id of the request this answers.
    pub id: u64,
    /// Cache-line address, so the L1 can fill and release its own waiters.
    pub line_addr: u64,
    /// Kind of the original request (atomic responses bypass the L1 fill).
    pub kind: ReqKind,
}

impl PartReq {
    /// Checkpoint encoding: `[sm, id, line_addr, kind]`.
    pub fn snapshot(&self) -> Json {
        Json::Array(vec![
            Json::UInt(self.sm as u64),
            Json::UInt(self.id),
            Json::UInt(self.line_addr),
            Json::Str(self.kind.tag().to_string()),
        ])
    }

    /// Decodes [`PartReq::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<PartReq, String> {
        let a = v.as_array().ok_or("request is not an array")?;
        Ok(PartReq {
            sm: elem_u64(a, 0)? as usize,
            id: elem_u64(a, 1)?,
            line_addr: elem_u64(a, 2)?,
            kind: ReqKind::from_tag(elem(a, 3)?.as_str().ok_or("kind is not a string")?)?,
        })
    }
}

impl PartResp {
    /// Checkpoint encoding: `[sm, id, line_addr, kind]`.
    pub fn snapshot(&self) -> Json {
        Json::Array(vec![
            Json::UInt(self.sm as u64),
            Json::UInt(self.id),
            Json::UInt(self.line_addr),
            Json::Str(self.kind.tag().to_string()),
        ])
    }

    /// Decodes [`PartResp::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<PartResp, String> {
        let a = v.as_array().ok_or("response is not an array")?;
        Ok(PartResp {
            sm: elem_u64(a, 0)? as usize,
            id: elem_u64(a, 1)?,
            line_addr: elem_u64(a, 2)?,
            kind: ReqKind::from_tag(elem(a, 3)?.as_str().ok_or("kind is not a string")?)?,
        })
    }
}

/// One L2-slice + DRAM-channel pair.
#[derive(Debug)]
pub struct Partition {
    l2: Cache,
    mshr: Mshr<PartReq>,
    in_q: VecDeque<PartReq>,
    // (ready cycle, seq for stable ordering, response)
    resp_heap: BinaryHeap<Reverse<(u64, u64, PartResp)>>,
    pending_writebacks: VecDeque<u64>,
    dram: Dram,
    l2_hit_latency: u64,
    l2_ports: u32,
    seq: u64,
}

impl Partition {
    /// Builds a partition from the shared configuration.
    pub fn new(cfg: &MemConfig) -> Partition {
        Partition {
            l2: Cache::new(cfg.l2_sets(), cfg.l2_ways),
            mshr: Mshr::new(cfg.l2_mshr_entries, cfg.l2_mshr_merges),
            in_q: VecDeque::new(),
            resp_heap: BinaryHeap::new(),
            pending_writebacks: VecDeque::new(),
            dram: Dram::new(cfg),
            l2_hit_latency: u64::from(cfg.l2_hit_latency),
            l2_ports: cfg.l2_ports,
            seq: 0,
        }
    }

    /// Accepts a request from the interconnect.
    pub fn push(&mut self, req: PartReq) {
        self.in_q.push_back(req);
    }

    fn schedule_resp(&mut self, ready: u64, resp: PartResp) {
        self.seq += 1;
        self.resp_heap.push(Reverse((ready, self.seq, resp)));
    }

    /// Advances one cycle; returns responses ready to enter the
    /// interconnect this cycle.
    pub fn tick(&mut self, now: u64, stats: &mut MemStats) -> Vec<PartResp> {
        self.tick_traced(now, stats, &mut NullSink)
    }

    /// [`Partition::tick`] with trace instrumentation; the `NullSink`
    /// instantiation is the plain tick.
    pub fn tick_traced<S: TraceSink>(
        &mut self,
        now: u64,
        stats: &mut MemStats,
        sink: &mut S,
    ) -> Vec<PartResp> {
        // 1. DRAM: finish in-service requests; fills release MSHR waiters.
        for line in self.dram.tick(now, stats) {
            let waiters = self.mshr.fill(line);
            let dirty = waiters.iter().any(|w| w.kind == ReqKind::Atomic);
            if let Some(ev) = self.l2.fill(line, now, dirty) {
                if ev.dirty {
                    self.pending_writebacks.push_back(ev.line_addr);
                }
            }
            for w in waiters {
                if w.kind != ReqKind::Store {
                    if S::ENABLED {
                        sink.emit(
                            now,
                            TraceEvent::MemAt {
                                sm: w.sm as u32,
                                req: w.id,
                                level: MemLevel::DramFill,
                            },
                        );
                    }
                    self.schedule_resp(
                        now + 1,
                        PartResp {
                            sm: w.sm,
                            id: w.id,
                            line_addr: line,
                            kind: w.kind,
                        },
                    );
                }
            }
        }

        // 2. Retry queued dirty writebacks into the DRAM queue.
        while let Some(&line) = self.pending_writebacks.front() {
            if self.dram.try_push(line, true) {
                self.pending_writebacks.pop_front();
            } else {
                break;
            }
        }

        // 3. Service incoming requests, up to the slice's port limit.
        for _ in 0..self.l2_ports {
            let Some(&req) = self.in_q.front() else { break };
            if !self.service(req, now, stats, sink) {
                break; // resource stall: head-of-line blocks
            }
            self.in_q.pop_front();
        }

        // 4. Release responses whose latency elapsed.
        let mut out = Vec::new();
        while let Some(&Reverse((ready, _, resp))) = self.resp_heap.peek() {
            if ready > now {
                break;
            }
            self.resp_heap.pop();
            out.push(resp);
        }
        out
    }

    /// Attempts to service one request; returns false on a resource stall.
    fn service<S: TraceSink>(
        &mut self,
        req: PartReq,
        now: u64,
        stats: &mut MemStats,
        sink: &mut S,
    ) -> bool {
        let progress = |sink: &mut S, level: MemLevel| {
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEvent::MemAt {
                        sm: req.sm as u32,
                        req: req.id,
                        level,
                    },
                );
            }
        };
        stats.l2_accesses += 1;
        match req.kind {
            ReqKind::Load | ReqKind::Atomic => {
                if self.l2.probe(req.line_addr, now) == Probe::Hit {
                    stats.l2_hits += 1;
                    if req.kind == ReqKind::Atomic {
                        self.l2.mark_dirty(req.line_addr);
                    }
                    progress(sink, MemLevel::L2Hit);
                    self.schedule_resp(
                        now + self.l2_hit_latency,
                        PartResp {
                            sm: req.sm,
                            id: req.id,
                            line_addr: req.line_addr,
                            kind: req.kind,
                        },
                    );
                    return true;
                }
                // Miss: reserve MSHR + DRAM queue space atomically.
                if self.mshr.pending(req.line_addr) {
                    match self.mshr.alloc(req.line_addr, req) {
                        MshrAlloc::Merged => {
                            stats.l2_misses += 1;
                            progress(sink, MemLevel::L2MshrMerge);
                            true
                        }
                        MshrAlloc::Stall => {
                            stats.l2_accesses -= 1;
                            false
                        }
                        MshrAlloc::NewMiss => unreachable!("line was pending"),
                    }
                } else {
                    if !self.dram.has_space() {
                        stats.l2_accesses -= 1;
                        return false;
                    }
                    match self.mshr.alloc(req.line_addr, req) {
                        MshrAlloc::NewMiss => {
                            stats.l2_misses += 1;
                            let pushed = self.dram.try_push(req.line_addr, false);
                            debug_assert!(pushed, "space was checked");
                            progress(sink, MemLevel::L2Miss);
                            true
                        }
                        MshrAlloc::Stall => {
                            stats.l2_accesses -= 1;
                            false
                        }
                        MshrAlloc::Merged => unreachable!("line was not pending"),
                    }
                }
            }
            ReqKind::Store => {
                stats.stores += 1;
                if self.l2.probe(req.line_addr, now) == Probe::Hit {
                    stats.l2_hits += 1;
                    self.l2.mark_dirty(req.line_addr);
                } else {
                    // Write-allocate without a fetch (the store overwrites
                    // the whole sector in this word-granular model).
                    stats.l2_misses += 1;
                    if let Some(ev) = self.l2.fill(req.line_addr, now, true) {
                        if ev.dirty {
                            self.pending_writebacks.push_back(ev.line_addr);
                        }
                    }
                }
                true
            }
        }
    }

    /// Requests waiting in or being serviced by this partition: the L2
    /// input queue plus the DRAM queue and in-service set.
    pub fn queue_len(&self) -> u64 {
        self.in_q.len() as u64 + self.dram.pending()
    }

    /// Whether no request is anywhere in this partition.
    pub fn quiesced(&self) -> bool {
        self.in_q.is_empty()
            && self.resp_heap.is_empty()
            && self.mshr.is_empty()
            && self.pending_writebacks.is_empty()
            && self.dram.quiesced()
    }

    /// Serializes the whole partition for checkpointing. The response
    /// heap is emitted in ascending `(ready, seq)` order; since every key
    /// is unique (`seq` increments per response), re-pushing the sorted
    /// list reproduces the exact pop order.
    pub fn snapshot(&self) -> Json {
        let mut heap: Vec<(u64, u64, PartResp)> =
            self.resp_heap.iter().map(|Reverse(x)| *x).collect();
        heap.sort_unstable();
        Json::Object(vec![
            ("l2".into(), self.l2.snapshot()),
            ("mshr".into(), self.mshr.snapshot_with(&|r| r.snapshot())),
            (
                "in_q".into(),
                Json::Array(self.in_q.iter().map(PartReq::snapshot).collect()),
            ),
            (
                "resp_heap".into(),
                Json::Array(
                    heap.into_iter()
                        .map(|(ready, seq, resp)| {
                            Json::Array(vec![Json::UInt(ready), Json::UInt(seq), resp.snapshot()])
                        })
                        .collect(),
                ),
            ),
            (
                "pending_writebacks".into(),
                Json::Array(
                    self.pending_writebacks
                        .iter()
                        .map(|&l| Json::UInt(l))
                        .collect(),
                ),
            ),
            ("dram".into(), self.dram.snapshot()),
            ("l2_hit_latency".into(), Json::UInt(self.l2_hit_latency)),
            ("l2_ports".into(), Json::UInt(u64::from(self.l2_ports))),
            ("seq".into(), Json::UInt(self.seq)),
        ])
    }

    /// Rebuilds a partition from [`Partition::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<Partition, String> {
        let mut resp_heap = BinaryHeap::new();
        for item in req_array(v, "resp_heap")? {
            let a = item.as_array().ok_or("resp_heap item is not an array")?;
            resp_heap.push(Reverse((
                elem_u64(a, 0)?,
                elem_u64(a, 1)?,
                PartResp::restore(elem(a, 2)?)?,
            )));
        }
        let mut in_q = VecDeque::new();
        for item in req_array(v, "in_q")? {
            in_q.push_back(PartReq::restore(item)?);
        }
        let mut pending_writebacks = VecDeque::new();
        for item in req_array(v, "pending_writebacks")? {
            pending_writebacks.push_back(item.as_u64().ok_or("writeback line is not a u64")?);
        }
        Ok(Partition {
            l2: Cache::restore(req(v, "l2")?)?,
            mshr: Mshr::restore_with(req(v, "mshr")?, &PartReq::restore)?,
            in_q,
            resp_heap,
            pending_writebacks,
            dram: Dram::restore(req(v, "dram")?)?,
            l2_hit_latency: req_u64(v, "l2_hit_latency")?,
            l2_ports: req_u64(v, "l2_ports")? as u32,
            seq: req_u64(v, "seq")?,
        })
    }
}

/// One GDDR channel with per-bank row-buffer state and an FR-FCFS-like
/// scheduler (row hits first, then oldest).
#[derive(Debug)]
struct Dram {
    queue: VecDeque<DramReq>,
    in_service: Vec<(u64, DramReq)>, // (finish cycle, request)
    banks: Vec<DramBank>,
    next_issue_at: u64,
    depth: usize,
    row_hit_latency: u64,
    row_miss_latency: u64,
    burst_cycles: u64,
    lines_per_row: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DramReq {
    line_addr: u64,
    write: bool,
}

#[derive(Debug, Clone, Copy)]
struct DramBank {
    open_row: Option<u64>,
    busy_until: u64,
}

impl Dram {
    fn new(cfg: &MemConfig) -> Dram {
        Dram {
            queue: VecDeque::new(),
            in_service: Vec::new(),
            banks: vec![
                DramBank {
                    open_row: None,
                    busy_until: 0
                };
                cfg.dram_banks.max(1) as usize
            ],
            next_issue_at: 0,
            depth: cfg.dram_queue_depth.max(1) as usize,
            row_hit_latency: u64::from(cfg.dram_row_hit_latency),
            row_miss_latency: u64::from(cfg.dram_row_miss_latency),
            burst_cycles: u64::from(cfg.dram_burst_cycles).max(1),
            lines_per_row: u64::from((cfg.dram_row_bytes / cfg.line_bytes).max(1)),
        }
    }

    fn row_of(&self, line_addr: u64) -> u64 {
        line_addr / self.lines_per_row
    }

    fn bank_of(&self, line_addr: u64) -> usize {
        (self.row_of(line_addr) % self.banks.len() as u64) as usize
    }

    fn has_space(&self) -> bool {
        self.queue.len() < self.depth
    }

    fn try_push(&mut self, line_addr: u64, write: bool) -> bool {
        if !self.has_space() {
            return false;
        }
        self.queue.push_back(DramReq { line_addr, write });
        true
    }

    /// Advances one cycle; returns line addresses of completed reads.
    fn tick(&mut self, now: u64, stats: &mut MemStats) -> Vec<u64> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].0 <= now {
                let (_, req) = self.in_service.swap_remove(i);
                if !req.write {
                    done.push(req.line_addr);
                }
            } else {
                i += 1;
            }
        }
        // Results must be deterministic regardless of swap_remove order.
        done.sort_unstable();

        // Issue at most one request per cycle, bandwidth-limited by the
        // burst occupancy of the data bus.
        if now >= self.next_issue_at {
            if let Some(idx) = self.pick(now) {
                let req = self.queue.remove(idx).expect("picked index exists");
                let bank_idx = self.bank_of(req.line_addr);
                let row = self.row_of(req.line_addr);
                let bank = &mut self.banks[bank_idx];
                let row_hit = bank.open_row == Some(row);
                let latency = if row_hit {
                    stats.dram_row_hits += 1;
                    self.row_hit_latency
                } else {
                    stats.dram_row_misses += 1;
                    self.row_miss_latency
                };
                if req.write {
                    stats.dram_writes += 1;
                } else {
                    stats.dram_reads += 1;
                }
                bank.open_row = Some(row);
                let finish = now + latency + self.burst_cycles;
                bank.busy_until = finish;
                self.next_issue_at = now + self.burst_cycles;
                self.in_service.push((finish, req));
            }
        }
        done
    }

    /// FR-FCFS-lite: the oldest row-hit request whose bank is free, else
    /// the oldest request whose bank is free.
    fn pick(&self, now: u64) -> Option<usize> {
        let free = |req: &DramReq| self.banks[self.bank_of(req.line_addr)].busy_until <= now;
        let hit = |req: &DramReq| {
            self.banks[self.bank_of(req.line_addr)].open_row == Some(self.row_of(req.line_addr))
        };
        self.queue
            .iter()
            .position(|r| free(r) && hit(r))
            .or_else(|| self.queue.iter().position(free))
    }

    fn quiesced(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_empty()
    }

    fn pending(&self) -> u64 {
        (self.queue.len() + self.in_service.len()) as u64
    }

    /// Serializes the channel state. `in_service` keeps its exact vector
    /// order: completions are sorted before being handed out, so the order
    /// only needs to match what the uninterrupted run had.
    fn snapshot(&self) -> Json {
        let dreq = |r: &DramReq| Json::Array(vec![Json::UInt(r.line_addr), Json::Bool(r.write)]);
        Json::Object(vec![
            (
                "queue".into(),
                Json::Array(self.queue.iter().map(&dreq).collect()),
            ),
            (
                "in_service".into(),
                Json::Array(
                    self.in_service
                        .iter()
                        .map(|(finish, r)| Json::Array(vec![Json::UInt(*finish), dreq(r)]))
                        .collect(),
                ),
            ),
            (
                "banks".into(),
                Json::Array(
                    self.banks
                        .iter()
                        .map(|b| {
                            Json::Array(vec![
                                match b.open_row {
                                    Some(r) => Json::UInt(r),
                                    None => Json::Null,
                                },
                                Json::UInt(b.busy_until),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("next_issue_at".into(), Json::UInt(self.next_issue_at)),
            ("depth".into(), Json::UInt(self.depth as u64)),
            ("row_hit_latency".into(), Json::UInt(self.row_hit_latency)),
            ("row_miss_latency".into(), Json::UInt(self.row_miss_latency)),
            ("burst_cycles".into(), Json::UInt(self.burst_cycles)),
            ("lines_per_row".into(), Json::UInt(self.lines_per_row)),
        ])
    }

    fn restore(v: &Json) -> Result<Dram, String> {
        let dreq = |item: &Json| -> Result<DramReq, String> {
            let a = item.as_array().ok_or("DRAM request is not an array")?;
            Ok(DramReq {
                line_addr: elem_u64(a, 0)?,
                write: elem_bool(a, 1)?,
            })
        };
        let mut queue = VecDeque::new();
        for item in req_array(v, "queue")? {
            queue.push_back(dreq(item)?);
        }
        let mut in_service = Vec::new();
        for item in req_array(v, "in_service")? {
            let a = item.as_array().ok_or("in-service item is not an array")?;
            in_service.push((elem_u64(a, 0)?, dreq(elem(a, 1)?)?));
        }
        let mut banks = Vec::new();
        for item in req_array(v, "banks")? {
            let a = item.as_array().ok_or("bank is not an array")?;
            banks.push(DramBank {
                open_row: match elem(a, 0)? {
                    Json::Null => None,
                    other => Some(other.as_u64().ok_or("open row is not a u64")?),
                },
                busy_until: elem_u64(a, 1)?,
            });
        }
        if banks.is_empty() {
            return Err("DRAM has no banks".to_string());
        }
        Ok(Dram {
            queue,
            in_service,
            banks,
            next_issue_at: req_u64(v, "next_issue_at")?,
            depth: (req_u64(v, "depth")? as usize).max(1),
            row_hit_latency: req_u64(v, "row_hit_latency")?,
            row_miss_latency: req_u64(v, "row_miss_latency")?,
            burst_cycles: req_u64(v, "burst_cycles")?.max(1),
            lines_per_row: req_u64(v, "lines_per_row")?.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig::default()
    }

    fn drain(p: &mut Partition, stats: &mut MemStats, until: u64) -> Vec<(u64, PartResp)> {
        let mut out = Vec::new();
        for now in 0..until {
            for r in p.tick(now, stats) {
                out.push((now, r));
            }
        }
        out
    }

    #[test]
    fn load_miss_goes_to_dram_then_hits() {
        let mut p = Partition::new(&cfg());
        let mut s = MemStats::default();
        p.push(PartReq {
            sm: 0,
            id: 1,
            line_addr: 10,
            kind: ReqKind::Load,
        });
        let resps = drain(&mut p, &mut s, 500);
        assert_eq!(resps.len(), 1);
        assert_eq!(
            (resps[0].1.sm, resps[0].1.id, resps[0].1.line_addr),
            (0, 1, 10)
        );
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.dram_reads, 1);
        assert_eq!(s.dram_row_misses, 1);
        assert!(p.quiesced());

        // Same line again: L2 hit, no DRAM traffic, faster.
        p.push(PartReq {
            sm: 0,
            id: 2,
            line_addr: 10,
            kind: ReqKind::Load,
        });
        let t_miss = resps[0].0;
        let resps2 = drain(&mut p, &mut s, 1000);
        assert_eq!(resps2.len(), 1);
        assert_eq!(s.dram_reads, 1, "no new DRAM read");
        assert_eq!(s.l2_hits, 1);
        assert!(resps2[0].0 < t_miss, "hit is faster than miss");
    }

    #[test]
    fn misses_to_same_line_merge() {
        let mut p = Partition::new(&cfg());
        let mut s = MemStats::default();
        p.push(PartReq {
            sm: 0,
            id: 1,
            line_addr: 5,
            kind: ReqKind::Load,
        });
        p.push(PartReq {
            sm: 1,
            id: 2,
            line_addr: 5,
            kind: ReqKind::Load,
        });
        let resps = drain(&mut p, &mut s, 500);
        assert_eq!(resps.len(), 2, "both waiters answered");
        assert_eq!(s.dram_reads, 1, "one fill serves both");
    }

    #[test]
    fn store_allocates_dirty_and_evicts_with_writeback() {
        let c = cfg();
        let mut p = Partition::new(&c);
        let mut s = MemStats::default();
        // Fill one whole set with dirty stores, then one more to force a
        // dirty eviction. Lines mapping to set 0 of this partition's slice
        // are spaced by l2_sets().
        let sets = u64::from(c.l2_sets());
        for i in 0..=u64::from(c.l2_ways) {
            p.push(PartReq {
                sm: 0,
                id: i,
                line_addr: i * sets,
                kind: ReqKind::Store,
            });
        }
        drain(&mut p, &mut s, 2000);
        assert_eq!(s.stores, u64::from(c.l2_ways) + 1);
        assert_eq!(s.dram_writes, 1, "one dirty victim written back");
        assert!(p.quiesced());
    }

    #[test]
    fn atomics_respond_and_dirty_the_line() {
        let mut p = Partition::new(&cfg());
        let mut s = MemStats::default();
        p.push(PartReq {
            sm: 2,
            id: 9,
            line_addr: 77,
            kind: ReqKind::Atomic,
        });
        let resps = drain(&mut p, &mut s, 500);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].1.sm, 2);
        assert_eq!(
            s.atomics, 0,
            "partition does not count atomics; the L1 layer does"
        );
        assert_eq!(s.dram_reads, 1);
    }

    #[test]
    fn row_buffer_hits_are_faster_and_counted() {
        let c = cfg();
        let mut p = Partition::new(&c);
        let mut s = MemStats::default();
        // Two different lines in the same DRAM row (consecutive lines).
        p.push(PartReq {
            sm: 0,
            id: 1,
            line_addr: 0,
            kind: ReqKind::Load,
        });
        p.push(PartReq {
            sm: 0,
            id: 2,
            line_addr: 1,
            kind: ReqKind::Load,
        });
        drain(&mut p, &mut s, 1000);
        assert_eq!(s.dram_row_misses, 1);
        assert_eq!(s.dram_row_hits, 1);
    }

    #[test]
    fn dram_bandwidth_spaces_issues() {
        let c = cfg();
        let mut d = Dram::new(&c);
        let mut s = MemStats::default();
        assert!(d.try_push(0, false));
        assert!(d.try_push(1000, false)); // different bank+row
        d.tick(0, &mut s);
        assert_eq!(s.dram_reads + s.dram_writes, 1, "one issue in cycle 0");
        d.tick(1, &mut s);
        assert_eq!(
            s.dram_reads, 1,
            "second issue blocked until burst slot frees"
        );
        d.tick(u64::from(c.dram_burst_cycles), &mut s);
        assert_eq!(s.dram_reads, 2);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_over_older_requests() {
        let c = cfg();
        let mut d = Dram::new(&c);
        let mut s = MemStats::default();
        // Open row 0 on bank 0.
        assert!(d.try_push(0, false));
        let mut now = 0;
        while d.tick(now, &mut s).is_empty() {
            now += 1;
        }
        // Queue: first an older request to a DIFFERENT row of bank 0,
        // then a younger row-0 hit. FR-FCFS serves the hit first.
        let other_row = u64::from(c.dram_banks) * u64::from(c.dram_row_bytes / c.line_bytes);
        assert!(d.try_push(other_row, false));
        assert!(d.try_push(1, false)); // row 0, line 1: a row hit
        let hits_before = s.dram_row_hits;
        loop {
            now += 1;
            let done = d.tick(now, &mut s);
            if !done.is_empty() {
                assert_eq!(done, vec![1], "the row hit finishes first");
                break;
            }
        }
        assert_eq!(s.dram_row_hits, hits_before + 1);
    }

    #[test]
    fn dram_queue_depth_enforced() {
        let c = cfg();
        let mut d = Dram::new(&c);
        for i in 0..c.dram_queue_depth as u64 {
            assert!(d.try_push(i, false));
        }
        assert!(!d.try_push(999, false));
    }
}
