//! A latency + bandwidth interconnect channel.
//!
//! Models one direction of the SM↔memory-partition network as a fixed
//! pipeline latency plus a per-cycle flit budget at the delivery end.
//! Items are delivered in injection order (a single virtual channel).

use std::collections::VecDeque;
use vt_json::{elem, elem_u64, req_array, req_u64, Json};

/// One direction of the interconnect carrying items of type `T`.
#[derive(Debug, Clone)]
pub struct Icnt<T> {
    latency: u64,
    flits_per_cycle: u32,
    in_flight: VecDeque<(u64, u32, T)>, // (ready cycle, flits, item)
    /// Flits already committed by an over-wide delivery, paid off from
    /// future cycles' budgets (bus occupancy carry-over).
    debt: u32,
}

impl<T> Icnt<T> {
    /// A channel with the given one-way latency and per-cycle flit budget.
    pub fn new(latency: u32, flits_per_cycle: u32) -> Icnt<T> {
        Icnt {
            latency: u64::from(latency),
            flits_per_cycle: flits_per_cycle.max(1),
            in_flight: VecDeque::new(),
            debt: 0,
        }
    }

    /// Injects an item of `flits` flits at cycle `now`.
    pub fn push(&mut self, now: u64, flits: u32, item: T) {
        self.in_flight.push_back((now + self.latency, flits, item));
    }

    /// Delivers the items whose latency has elapsed, respecting the flit
    /// budget for cycle `now`. An item wider than the whole per-cycle
    /// budget is delivered anyway and its excess flits are charged against
    /// subsequent cycles. Call exactly once per cycle.
    pub fn deliver(&mut self, now: u64) -> Vec<T> {
        let mut budget = self.flits_per_cycle;
        // Pay off occupancy carried over from previous deliveries.
        let pay = self.debt.min(budget);
        self.debt -= pay;
        budget -= pay;
        let mut out = Vec::new();
        while budget > 0 {
            match self.in_flight.front() {
                Some((ready, _, _)) if *ready <= now => {}
                _ => break,
            }
            let (_, flits, item) = self.in_flight.pop_front().expect("non-empty");
            if flits > budget {
                self.debt += flits - budget;
                budget = 0;
            } else {
                budget -= flits;
            }
            out.push(item);
        }
        out
    }

    /// Items still traversing the channel.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Serializes the channel for checkpointing, encoding each payload
    /// with `ser`. In-flight items keep their exact queue order.
    pub fn snapshot_with(&self, ser: &dyn Fn(&T) -> Json) -> Json {
        Json::Object(vec![
            ("latency".into(), Json::UInt(self.latency)),
            (
                "flits_per_cycle".into(),
                Json::UInt(u64::from(self.flits_per_cycle)),
            ),
            ("debt".into(), Json::UInt(u64::from(self.debt))),
            (
                "in_flight".into(),
                Json::Array(
                    self.in_flight
                        .iter()
                        .map(|(ready, flits, item)| {
                            Json::Array(vec![
                                Json::UInt(*ready),
                                Json::UInt(u64::from(*flits)),
                                ser(item),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a channel from [`Icnt::snapshot_with`] output, decoding
    /// each payload with `de`.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input or payload decode failure.
    pub fn restore_with(
        v: &Json,
        de: &dyn Fn(&Json) -> Result<T, String>,
    ) -> Result<Icnt<T>, String> {
        let mut in_flight = VecDeque::new();
        for item in req_array(v, "in_flight")? {
            let a = item.as_array().ok_or("icnt item is not an array")?;
            in_flight.push_back((elem_u64(a, 0)?, elem_u64(a, 1)? as u32, de(elem(a, 2)?)?));
        }
        Ok(Icnt {
            latency: req_u64(v, "latency")?,
            flits_per_cycle: (req_u64(v, "flits_per_cycle")? as u32).max(1),
            in_flight,
            debt: req_u64(v, "debt")? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_latency() {
        let mut c: Icnt<u32> = Icnt::new(10, 4);
        c.push(0, 1, 42);
        for now in 0..10 {
            assert!(c.deliver(now).is_empty(), "cycle {now}");
        }
        assert_eq!(c.deliver(10), vec![42]);
        assert!(c.is_empty());
    }

    #[test]
    fn respects_bandwidth() {
        let mut c: Icnt<u32> = Icnt::new(0, 4);
        for i in 0..6 {
            c.push(0, 2, i);
        }
        assert_eq!(c.deliver(0), vec![0, 1], "two 2-flit items per cycle");
        assert_eq!(c.deliver(1), vec![2, 3]);
        assert_eq!(c.deliver(2), vec![4, 5]);
    }

    #[test]
    fn wide_item_delivers_and_charges_debt() {
        let mut c: Icnt<u32> = Icnt::new(0, 4);
        c.push(0, 10, 0); // wider than one cycle's budget
        c.push(0, 1, 1);
        // The wide item goes through immediately, occupying the bus for
        // the following cycle too (10 = 4 + 6 debt; 6 > 4 so one more
        // full cycle of debt remains after cycle 1).
        assert_eq!(c.deliver(0), vec![0]);
        assert!(c.deliver(1).is_empty(), "bus still busy paying debt");
        assert_eq!(c.deliver(2), vec![1], "2 debt flits paid, then item");
    }

    #[test]
    fn preserves_order() {
        let mut c: Icnt<u32> = Icnt::new(2, 100);
        c.push(0, 1, 1);
        c.push(1, 1, 2);
        assert_eq!(c.deliver(2), vec![1]);
        assert_eq!(c.deliver(3), vec![2]);
    }
}
