//! Warp memory-access coalescing.
//!
//! A warp memory instruction presents up to 32 lane addresses. The
//! coalescer groups them into the minimal set of aligned segments
//! (transactions); fully-coalesced unit-stride accesses produce one
//! 128-byte transaction, scattered accesses produce up to 32.

/// One coalesced memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Segment-aligned address divided by the segment size.
    pub line_addr: u64,
    /// Lanes whose access falls in this segment.
    pub lane_mask: u32,
}

/// Coalesces per-lane byte addresses into aligned `segment_bytes`
/// transactions, preserving first-touch order (the order the hardware
/// would issue them).
///
/// `addrs[lane]` is consulted only for lanes set in `mask`.
///
/// # Panics
///
/// Panics if `segment_bytes` is not a power of two.
pub fn coalesce(addrs: &[u32; 32], mask: u32, segment_bytes: u32) -> Vec<Transaction> {
    assert!(
        segment_bytes.is_power_of_two(),
        "segment size must be a power of two"
    );
    let shift = segment_bytes.trailing_zeros();
    let mut txs: Vec<Transaction> = Vec::new();
    let mut m = mask;
    while m != 0 {
        let lane = m.trailing_zeros();
        m &= m - 1;
        let line = u64::from(addrs[lane as usize] >> shift);
        match txs.iter_mut().find(|t| t.line_addr == line) {
            Some(t) => t.lane_mask |= 1 << lane,
            None => txs.push(Transaction {
                line_addr: line,
                lane_mask: 1 << lane,
            }),
        }
    }
    txs
}

/// Number of serialised shared-memory access rounds for a warp access with
/// the given lane addresses: the maximum number of distinct *words* that
/// map to the same bank (accesses to the same word broadcast and do not
/// conflict).
pub fn shared_bank_conflicts(addrs: &[u32; 32], mask: u32, banks: u32) -> u32 {
    let mut rounds = 0u32;
    let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks as usize];
    let mut m = mask;
    while m != 0 {
        let lane = m.trailing_zeros();
        m &= m - 1;
        let word = addrs[lane as usize] / 4;
        let bank = (word % banks) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    for b in &per_bank {
        rounds = rounds.max(b.len() as u32);
    }
    rounds.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_addrs(base: u32, stride: u32) -> [u32; 32] {
        let mut a = [0u32; 32];
        for (lane, slot) in a.iter_mut().enumerate() {
            *slot = base + lane as u32 * stride;
        }
        a
    }

    #[test]
    fn unit_stride_coalesces_to_one_transaction() {
        let txs = coalesce(&seq_addrs(0x1000, 4), u32::MAX, 128);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].line_addr, 0x1000 / 128);
        assert_eq!(txs[0].lane_mask, u32::MAX);
    }

    #[test]
    fn misaligned_unit_stride_needs_two() {
        let txs = coalesce(&seq_addrs(0x1000 + 64, 4), u32::MAX, 128);
        assert_eq!(txs.len(), 2);
    }

    #[test]
    fn large_stride_fully_diverges() {
        let txs = coalesce(&seq_addrs(0, 128), u32::MAX, 128);
        assert_eq!(txs.len(), 32);
        for (i, t) in txs.iter().enumerate() {
            assert_eq!(t.line_addr, i as u64);
            assert_eq!(t.lane_mask, 1 << i);
        }
    }

    #[test]
    fn inactive_lanes_are_ignored() {
        let txs = coalesce(&seq_addrs(0, 128), 0b101, 128);
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].lane_mask, 0b001);
        assert_eq!(txs[1].lane_mask, 0b100);
    }

    #[test]
    fn same_address_broadcast_is_one_transaction() {
        let txs = coalesce(&[0x40; 32], u32::MAX, 128);
        assert_eq!(txs.len(), 1);
    }

    #[test]
    fn lane_masks_partition_the_active_mask() {
        let addrs = seq_addrs(100, 52);
        let mask = 0xff00_f00fu32;
        let txs = coalesce(&addrs, mask, 128);
        let mut union = 0u32;
        for t in &txs {
            assert_eq!(union & t.lane_mask, 0, "disjoint");
            union |= t.lane_mask;
        }
        assert_eq!(union, mask);
    }

    #[test]
    fn bank_conflict_free_unit_stride() {
        assert_eq!(shared_bank_conflicts(&seq_addrs(0, 4), u32::MAX, 32), 1);
    }

    #[test]
    fn stride_two_words_gives_two_way_conflict() {
        assert_eq!(shared_bank_conflicts(&seq_addrs(0, 8), u32::MAX, 32), 2);
    }

    #[test]
    fn stride_of_bank_count_serialises_fully() {
        assert_eq!(shared_bank_conflicts(&seq_addrs(0, 128), u32::MAX, 32), 32);
    }

    #[test]
    fn broadcast_same_word_is_conflict_free() {
        assert_eq!(shared_bank_conflicts(&[0x40; 32], u32::MAX, 32), 1);
    }

    #[test]
    fn empty_mask_counts_one_round() {
        assert_eq!(shared_bank_conflicts(&[0; 32], 0, 32), 1);
        assert!(coalesce(&[0; 32], 0, 128).is_empty());
    }
}
