//! A tags-only set-associative cache array with LRU replacement.

use vt_json::{elem_bool, elem_u64, req_array, req_u64, Json};

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Set-associative cache tag array. Data never lives here — the simulator
/// is functional-at-issue — so this structure only answers hit/miss and
/// tracks dirtiness for writeback traffic.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Line>,
    num_sets: u64,
    ways: usize,
}

impl Cache {
    /// A cache with `num_sets` sets of `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero.
    pub fn new(num_sets: u32, ways: u32) -> Cache {
        assert!(num_sets > 0 && ways > 0, "degenerate cache geometry");
        Cache {
            sets: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_use: 0
                };
                (num_sets * ways) as usize
            ],
            num_sets: u64::from(num_sets),
            ways: ways as usize,
        }
    }

    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = (line_addr % self.num_sets) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `line_addr`, updating LRU state on a hit.
    pub fn probe(&mut self, line_addr: u64, now: u64) -> Probe {
        let range = self.set_range(line_addr);
        for line in &mut self.sets[range] {
            if line.valid && line.tag == line_addr {
                line.last_use = now;
                return Probe::Hit;
            }
        }
        Probe::Miss
    }

    /// Looks up without touching replacement state.
    pub fn contains(&self, line_addr: u64) -> bool {
        let range = self.set_range(line_addr);
        self.sets[range]
            .iter()
            .any(|l| l.valid && l.tag == line_addr)
    }

    /// Marks a present line dirty, returning whether it was present.
    pub fn mark_dirty(&mut self, line_addr: u64) -> bool {
        let range = self.set_range(line_addr);
        for line in &mut self.sets[range] {
            if line.valid && line.tag == line_addr {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Inserts `line_addr`, evicting the LRU way if the set is full.
    /// Filling a line that is already present just refreshes it.
    pub fn fill(&mut self, line_addr: u64, now: u64, dirty: bool) -> Option<Evicted> {
        let range = self.set_range(line_addr);
        let set = &mut self.sets[range];
        // Already present (e.g. a racing fill): refresh.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            line.last_use = now;
            line.dirty |= dirty;
            return None;
        }
        if let Some(line) = set.iter_mut().find(|l| !l.valid) {
            *line = Line {
                tag: line_addr,
                valid: true,
                dirty,
                last_use: now,
            };
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| l.last_use)
            .expect("non-empty set");
        let evicted = Evicted {
            line_addr: victim.tag,
            dirty: victim.dirty,
        };
        *victim = Line {
            tag: line_addr,
            valid: true,
            dirty,
            last_use: now,
        };
        Some(evicted)
    }

    /// Invalidates a line (write-evict policy), returning whether it was
    /// present.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let range = self.set_range(line_addr);
        for line in &mut self.sets[range] {
            if line.valid && line.tag == line_addr {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Number of valid lines (occupancy), for stats and tests.
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().filter(|l| l.valid).count()
    }

    /// Serializes geometry and every line (including LRU state) for
    /// checkpointing. Lines are emitted as `[tag, valid, dirty, last_use]`
    /// in array order, so the restored replacement state is exact.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("num_sets".into(), Json::UInt(self.num_sets)),
            ("ways".into(), Json::UInt(self.ways as u64)),
            (
                "lines".into(),
                Json::Array(
                    self.sets
                        .iter()
                        .map(|l| {
                            Json::Array(vec![
                                Json::UInt(l.tag),
                                Json::Bool(l.valid),
                                Json::Bool(l.dirty),
                                Json::UInt(l.last_use),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a cache from [`Cache::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields or a geometry mismatch.
    pub fn restore(v: &Json) -> Result<Cache, String> {
        let num_sets = req_u64(v, "num_sets")?;
        let ways = req_u64(v, "ways")? as usize;
        let raw = req_array(v, "lines")?;
        if num_sets == 0 || ways == 0 {
            return Err("degenerate cache geometry".to_string());
        }
        if raw.len() as u64 != num_sets * ways as u64 {
            return Err(format!(
                "cache has {} lines, expected {}",
                raw.len(),
                num_sets * ways as u64
            ));
        }
        let sets = raw
            .iter()
            .map(|item| {
                let a = item.as_array().ok_or("cache line is not an array")?;
                Ok(Line {
                    tag: elem_u64(a, 0)?,
                    valid: elem_bool(a, 1)?,
                    dirty: elem_bool(a, 2)?,
                    last_use: elem_u64(a, 3)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Cache {
            sets,
            num_sets,
            ways,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2);
        assert_eq!(c.probe(5, 0), Probe::Miss);
        assert_eq!(c.fill(5, 1, false), None);
        assert_eq!(c.probe(5, 2), Probe::Hit);
        assert!(c.contains(5));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = Cache::new(1, 2);
        c.fill(10, 1, false);
        c.fill(20, 2, false);
        assert_eq!(c.probe(10, 3), Probe::Hit); // 20 is now LRU
        let ev = c.fill(30, 4, false).expect("eviction");
        assert_eq!(ev.line_addr, 20);
        assert!(!ev.dirty);
        assert!(c.contains(10));
        assert!(c.contains(30));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(1, 1);
        c.fill(1, 0, false);
        assert!(c.mark_dirty(1));
        let ev = c.fill(2, 1, false).unwrap();
        assert!(ev.dirty);
        assert!(!c.mark_dirty(99), "absent line cannot be dirtied");
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = Cache::new(1, 2);
        c.fill(1, 0, false);
        assert_eq!(c.fill(1, 5, true), None);
        assert_eq!(c.valid_lines(), 1);
        // The refreshed dirty bit sticks.
        let _ = c.fill(2, 6, false);
        let ev = c.fill(3, 7, false).unwrap();
        assert_eq!(ev.line_addr, 1);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(2, 2);
        c.fill(4, 0, false);
        assert!(c.invalidate(4));
        assert!(!c.contains(4));
        assert!(!c.invalidate(4));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = Cache::new(2, 1);
        c.fill(0, 0, false); // set 0
        c.fill(1, 1, false); // set 1
        assert_eq!(c.fill(2, 2, false).unwrap().line_addr, 0, "same set as 0");
        assert!(c.contains(1));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_ways_panics() {
        let _ = Cache::new(4, 0);
    }
}
