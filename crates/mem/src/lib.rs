//! # vt-mem — the GPU memory subsystem model
//!
//! A cycle-level model of everything between an SM's LD/ST unit and DRAM:
//!
//! * [`coalesce`] — merges the 32 lane addresses of a warp memory
//!   instruction into 128-byte transactions,
//! * [`cache`] — a set-associative, LRU, tags-only cache array used for
//!   both L1D and the L2 slices,
//! * [`mshr`] — miss-status holding registers with miss merging and finite
//!   capacity (the structure whose exhaustion makes extra TLP stop
//!   helping),
//! * [`icnt`] — a latency + bandwidth interconnect between SMs and memory
//!   partitions,
//! * [`partition`] — a memory partition: one L2 slice plus one DRAM
//!   channel with row-buffer state, mirroring GPGPU-Sim's organisation,
//! * [`system::MemSystem`] — the top-level object the simulator ticks once
//!   per cycle and submits requests to.
//!
//! The model is *timing-only*: data values never flow through it. The
//! simulator applies functional effects at issue time and uses the memory
//! system solely to learn **when** each request completes.
//!
//! # Example
//!
//! ```
//! use vt_mem::config::MemConfig;
//! use vt_mem::system::{MemSystem, ReqKind};
//!
//! let mut mem = MemSystem::new(&MemConfig::default(), 1);
//! let id = 7u64;
//! assert!(mem.try_submit(0, id, 0x1000, ReqKind::Load).accepted());
//! let mut done = Vec::new();
//! for cycle in 0.. {
//!     mem.tick(cycle);
//!     while let Some(id) = mem.pop_response(0) {
//!         done.push(id);
//!     }
//!     if !done.is_empty() {
//!         break;
//!     }
//! }
//! assert_eq!(done, vec![7]);
//! ```
#![forbid(unsafe_code)]

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod icnt;
pub mod mshr;
pub mod partition;
pub mod stats;
pub mod system;

pub use config::MemConfig;
pub use stats::MemStats;
pub use system::{MemSystem, ReqKind, SmFront, Submit};
