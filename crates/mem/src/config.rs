//! Memory-system configuration.

/// Configuration of the whole memory hierarchy.
///
/// Defaults approximate the Fermi (GTX 480)-class configuration the paper
/// simulates: 16 KiB L1D per SM, 6 memory partitions each with a 128 KiB
/// L2 slice and one GDDR channel. All latencies are in core cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Cache line (and coalescing segment) size in bytes.
    pub line_bytes: u32,
    /// L1D size per SM in bytes.
    pub l1_bytes: u32,
    /// L1D associativity.
    pub l1_ways: u32,
    /// L1D hit latency (load-to-use, pipeline included).
    pub l1_hit_latency: u32,
    /// L1D MSHR entries (distinct outstanding miss lines per SM).
    pub l1_mshr_entries: u32,
    /// Maximum requests merged into one L1 MSHR entry.
    pub l1_mshr_merges: u32,
    /// Transactions the L1 accepts from the LD/ST unit per cycle.
    pub l1_ports: u32,
    /// Memory partitions (L2 slice + DRAM channel pairs).
    pub partitions: u32,
    /// L2 slice size per partition in bytes.
    pub l2_slice_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency beyond the interconnect.
    pub l2_hit_latency: u32,
    /// L2 MSHR entries per slice.
    pub l2_mshr_entries: u32,
    /// Maximum requests merged into one L2 MSHR entry.
    pub l2_mshr_merges: u32,
    /// Requests each L2 slice starts per cycle.
    pub l2_ports: u32,
    /// One-way interconnect latency.
    pub icnt_latency: u32,
    /// Interconnect flits per cycle per direction (one flit = 32 bytes).
    pub icnt_flits_per_cycle: u32,
    /// DRAM row-buffer hit service latency.
    pub dram_row_hit_latency: u32,
    /// DRAM row-buffer miss (precharge + activate + CAS) service latency.
    pub dram_row_miss_latency: u32,
    /// Cycles the channel data bus is busy per line transfer.
    pub dram_burst_cycles: u32,
    /// DRAM banks per channel.
    pub dram_banks: u32,
    /// DRAM row size in bytes (consecutive lines mapping to one row).
    pub dram_row_bytes: u32,
    /// In-flight request capacity of each DRAM channel's queue.
    pub dram_queue_depth: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            line_bytes: 128,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l1_hit_latency: 24,
            l1_mshr_entries: 128,
            l1_mshr_merges: 8,
            l1_ports: 1,
            partitions: 6,
            l2_slice_bytes: 128 * 1024,
            l2_ways: 8,
            l2_hit_latency: 40,
            l2_mshr_entries: 32,
            l2_mshr_merges: 8,
            l2_ports: 2,
            icnt_latency: 100,
            icnt_flits_per_cycle: 16,
            dram_row_hit_latency: 45,
            dram_row_miss_latency: 90,
            dram_burst_cycles: 4,
            dram_banks: 16,
            dram_row_bytes: 2048,
            dram_queue_depth: 64,
        }
    }
}

impl MemConfig {
    /// Lines in the L1D.
    pub fn l1_lines(&self) -> u32 {
        self.l1_bytes / self.line_bytes
    }

    /// Sets in the L1D.
    pub fn l1_sets(&self) -> u32 {
        (self.l1_lines() / self.l1_ways).max(1)
    }

    /// Sets in one L2 slice.
    pub fn l2_sets(&self) -> u32 {
        (self.l2_slice_bytes / self.line_bytes / self.l2_ways).max(1)
    }

    /// The partition a line address maps to.
    pub fn partition_of(&self, line_addr: u64) -> usize {
        (line_addr % u64::from(self.partitions)) as usize
    }

    /// An idealised round-trip latency with no contention, used by
    /// analytical sanity checks in tests.
    pub fn uncontended_miss_latency(&self) -> u32 {
        self.l1_hit_latency
            + 2 * self.icnt_latency
            + self.l2_hit_latency
            + self.dram_row_miss_latency
            + self.dram_burst_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_consistent() {
        let c = MemConfig::default();
        assert_eq!(c.l1_lines(), 128);
        assert_eq!(c.l1_sets(), 32);
        assert_eq!(c.l2_sets() * c.l2_ways * c.line_bytes, c.l2_slice_bytes);
        assert!(c.uncontended_miss_latency() > c.l1_hit_latency);
    }

    #[test]
    fn partition_mapping_interleaves_lines() {
        let c = MemConfig::default();
        let p0 = c.partition_of(0);
        let p1 = c.partition_of(1);
        assert_ne!(p0, p1);
        assert_eq!(c.partition_of(6), 0);
    }
}
