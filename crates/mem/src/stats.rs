//! Memory-system statistics.

use vt_json::{req, req_u64, Json};
use vt_trace::{Gauge, Histogram};

/// Counters accumulated by the memory system over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1D lookups (loads and atomics; stores bypass).
    pub l1_accesses: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// L1D misses that allocated a new MSHR line.
    pub l1_misses: u64,
    /// L1D misses merged onto an in-flight MSHR line.
    pub l1_mshr_merged: u64,
    /// Submissions rejected for MSHR/port exhaustion (retried by the SM).
    pub l1_stalls: u64,
    /// Global stores forwarded to L2.
    pub stores: u64,
    /// Atomic operations forwarded to L2.
    pub atomics: u64,
    /// L2 lookups.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses sent to DRAM.
    pub l2_misses: u64,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write (writeback) transactions.
    pub dram_writes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses.
    pub dram_row_misses: u64,
    /// Sum of load round-trip latencies in cycles (submit → response).
    pub load_latency_sum: u64,
    /// Loads (and atomics) that completed.
    pub loads_completed: u64,
    /// Distribution of load/atomic round-trip latencies.
    pub load_latency: Histogram,
    /// L1 MSHR entries in flight, sampled once per cycle across all SMs.
    pub mshr_occupancy: Gauge,
}

impl MemStats {
    /// L1 hit rate over lookups, or 0 if there were none.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_accesses)
    }

    /// L2 hit rate over lookups, or 0 if there were none.
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(self.l2_hits, self.l2_accesses)
    }

    /// DRAM row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        ratio(
            self.dram_row_hits,
            self.dram_row_hits + self.dram_row_misses,
        )
    }

    /// Mean load round-trip latency in cycles.
    pub fn avg_load_latency(&self) -> f64 {
        ratio(self.load_latency_sum, self.loads_completed)
    }

    /// Merges another stats block into this one (used to aggregate across
    /// kernels).
    pub fn merge(&mut self, other: &MemStats) {
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l1_mshr_merged += other.l1_mshr_merged;
        self.l1_stalls += other.l1_stalls;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
        self.dram_row_hits += other.dram_row_hits;
        self.dram_row_misses += other.dram_row_misses;
        self.load_latency_sum += other.load_latency_sum;
        self.loads_completed += other.loads_completed;
        self.load_latency.merge(&other.load_latency);
        self.mshr_occupancy.merge(&other.mshr_occupancy);
    }

    /// Serializes every counter for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("l1_accesses".into(), Json::UInt(self.l1_accesses)),
            ("l1_hits".into(), Json::UInt(self.l1_hits)),
            ("l1_misses".into(), Json::UInt(self.l1_misses)),
            ("l1_mshr_merged".into(), Json::UInt(self.l1_mshr_merged)),
            ("l1_stalls".into(), Json::UInt(self.l1_stalls)),
            ("stores".into(), Json::UInt(self.stores)),
            ("atomics".into(), Json::UInt(self.atomics)),
            ("l2_accesses".into(), Json::UInt(self.l2_accesses)),
            ("l2_hits".into(), Json::UInt(self.l2_hits)),
            ("l2_misses".into(), Json::UInt(self.l2_misses)),
            ("dram_reads".into(), Json::UInt(self.dram_reads)),
            ("dram_writes".into(), Json::UInt(self.dram_writes)),
            ("dram_row_hits".into(), Json::UInt(self.dram_row_hits)),
            ("dram_row_misses".into(), Json::UInt(self.dram_row_misses)),
            ("load_latency_sum".into(), Json::UInt(self.load_latency_sum)),
            ("loads_completed".into(), Json::UInt(self.loads_completed)),
            ("load_latency".into(), self.load_latency.snapshot()),
            ("mshr_occupancy".into(), self.mshr_occupancy.snapshot()),
        ])
    }

    /// Rebuilds a stats block from [`MemStats::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields.
    pub fn restore(v: &Json) -> Result<MemStats, String> {
        Ok(MemStats {
            l1_accesses: req_u64(v, "l1_accesses")?,
            l1_hits: req_u64(v, "l1_hits")?,
            l1_misses: req_u64(v, "l1_misses")?,
            l1_mshr_merged: req_u64(v, "l1_mshr_merged")?,
            l1_stalls: req_u64(v, "l1_stalls")?,
            stores: req_u64(v, "stores")?,
            atomics: req_u64(v, "atomics")?,
            l2_accesses: req_u64(v, "l2_accesses")?,
            l2_hits: req_u64(v, "l2_hits")?,
            l2_misses: req_u64(v, "l2_misses")?,
            dram_reads: req_u64(v, "dram_reads")?,
            dram_writes: req_u64(v, "dram_writes")?,
            dram_row_hits: req_u64(v, "dram_row_hits")?,
            dram_row_misses: req_u64(v, "dram_row_misses")?,
            load_latency_sum: req_u64(v, "load_latency_sum")?,
            loads_completed: req_u64(v, "loads_completed")?,
            load_latency: Histogram::restore(req(v, "load_latency")?)?,
            mshr_occupancy: Gauge::restore(req(v, "mshr_occupancy")?)?,
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = MemStats::default();
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.avg_load_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MemStats {
            l1_hits: 3,
            l1_accesses: 4,
            ..Default::default()
        };
        let b = MemStats {
            l1_hits: 1,
            l1_accesses: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_hits, 4);
        assert_eq!(a.l1_accesses, 8);
        assert_eq!(a.l1_hit_rate(), 0.5);
    }
}
