//! Randomized tests for the memory subsystem: the coalescer partitions
//! masks, the cache agrees with a reference set model, MSHRs respect
//! their capacities, and the full memory system answers every load
//! exactly once and quiesces. Driven by the deterministic
//! [`vt_prng::Prng`] so runs are reproducible offline.

use std::collections::{HashMap, HashSet};
use vt_mem::cache::{Cache, Probe};
use vt_mem::coalesce::{coalesce, shared_bank_conflicts};
use vt_mem::mshr::{Mshr, MshrAlloc};
use vt_mem::{MemConfig, MemSystem, ReqKind};
use vt_prng::Prng;

#[test]
fn coalescer_partitions_the_active_mask() {
    let mut r = Prng::new(0xc0a1);
    for _ in 0..256 {
        let mut addrs = [0u32; 32];
        for a in &mut addrs {
            *a = r.gen_range(0..1 << 24);
        }
        let mask = r.next_u32();
        let txs = coalesce(&addrs, mask, 128);
        let mut union = 0u32;
        for t in &txs {
            assert_eq!(union & t.lane_mask, 0, "lane in two transactions");
            union |= t.lane_mask;
            // Every lane's address falls inside its transaction's segment.
            let mut m = t.lane_mask;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                assert_eq!(u64::from(addrs[lane as usize] >> 7), t.line_addr);
            }
        }
        assert_eq!(union, mask);
        assert!(txs.len() <= mask.count_ones() as usize);
        // Distinct transactions have distinct lines.
        let lines: HashSet<u64> = txs.iter().map(|t| t.line_addr).collect();
        assert_eq!(lines.len(), txs.len());
    }
}

#[test]
fn bank_conflict_rounds_are_bounded() {
    let mut r = Prng::new(0xba27);
    for _ in 0..256 {
        let mut addrs = [0u32; 32];
        for a in &mut addrs {
            *a = r.gen_range(0..1 << 16) * 4;
        }
        let mask = r.next_u32();
        let rounds = shared_bank_conflicts(&addrs, mask, 32);
        assert!(rounds >= 1);
        assert!(rounds <= mask.count_ones().max(1));
    }
}

#[test]
fn cache_agrees_with_reference_model() {
    let mut r = Prng::new(0xcac8e);
    for _ in 0..64 {
        // 4 sets x 2 ways; the model tracks per-set LRU order.
        let mut cache = Cache::new(4, 2);
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 4]; // MRU at front
        for i in 0..r.gen_range_usize(1..200) {
            let is_fill = r.gen_bool(0.5);
            let line = u64::from(r.gen_range(0..64));
            let set = (line % 4) as usize;
            let now = i as u64;
            if is_fill {
                let evicted = cache.fill(line, now, false);
                let m = &mut model[set];
                if let Some(pos) = m.iter().position(|&l| l == line) {
                    m.remove(pos);
                    assert!(evicted.is_none(), "refill must not evict");
                } else if m.len() == 2 {
                    let victim = m.pop().expect("full set");
                    assert_eq!(evicted.map(|e| e.line_addr), Some(victim));
                } else {
                    assert!(evicted.is_none());
                }
                m.insert(0, line);
            } else {
                let hit = cache.probe(line, now) == Probe::Hit;
                let m = &mut model[set];
                let model_hit = m.contains(&line);
                assert_eq!(hit, model_hit, "probe({line})");
                if let Some(pos) = m.iter().position(|&l| l == line) {
                    let l = m.remove(pos);
                    m.insert(0, l); // refresh LRU
                }
            }
        }
        assert_eq!(
            cache.valid_lines(),
            model.iter().map(Vec::len).sum::<usize>()
        );
    }
}

#[test]
fn mshr_never_exceeds_capacity() {
    let mut r = Prng::new(0x358);
    for _ in 0..64 {
        let mut mshr: Mshr<u32> = Mshr::new(4, 3);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for i in 0..r.gen_range_usize(1..120) {
            let is_alloc = r.gen_bool(0.5);
            let line = u64::from(r.gen_range(0..16));
            if is_alloc {
                match mshr.alloc(line, i as u32) {
                    MshrAlloc::NewMiss => {
                        assert!(!model.contains_key(&line));
                        assert!(model.len() < 4);
                        model.insert(line, 1);
                    }
                    MshrAlloc::Merged => {
                        let n = model.get_mut(&line).expect("merge needs entry");
                        assert!(*n < 3);
                        *n += 1;
                    }
                    MshrAlloc::Stall => {
                        let full_entry = model.get(&line).map(|&n| n >= 3).unwrap_or(false);
                        let full_table = !model.contains_key(&line) && model.len() >= 4;
                        assert!(full_entry || full_table, "spurious stall");
                    }
                }
            } else {
                let waiters = mshr.fill(line);
                assert_eq!(waiters.len() as u32, model.remove(&line).unwrap_or(0));
            }
            assert!(mshr.len() <= 4);
            assert_eq!(mshr.len(), model.len());
        }
    }
}

/// Liveness + exactly-once: every accepted load gets exactly one
/// response, stores drain, and the system quiesces.
#[test]
fn every_load_answered_exactly_once() {
    let mut r = Prng::new(0x10ad);
    for case in 0..24 {
        let mut mem = MemSystem::new(&MemConfig::default(), 2);
        let mut outstanding: HashSet<u64> = HashSet::new();
        let mut answered: HashSet<u64> = HashSet::new();
        let mut next_id = 0u64;
        let mut pending: Vec<(usize, u64, u64, ReqKind)> = (0..r.gen_range_usize(1..60))
            .map(|_| {
                next_id += 1;
                let sm = r.gen_range_usize(0..2);
                let line = u64::from(r.gen_range(0..512));
                let kind = if r.gen_bool(0.5) {
                    ReqKind::Store
                } else {
                    ReqKind::Load
                };
                (sm, next_id, line, kind)
            })
            .collect();
        pending.reverse();

        let mut cycle = 0u64;
        while cycle < 200_000 {
            mem.tick(cycle);
            // Submit a few per cycle, retrying rejected ones.
            for _ in 0..2 {
                let Some(&(sm, id, line, kind)) = pending.last() else {
                    break;
                };
                if mem.try_submit(sm, id, line, kind).accepted() {
                    pending.pop();
                    if kind == ReqKind::Load {
                        outstanding.insert(id);
                    }
                }
            }
            for sm in 0..2 {
                while let Some(id) = mem.pop_response(sm) {
                    assert!(
                        outstanding.remove(&id),
                        "case {case}: response for unknown id {id}"
                    );
                    assert!(answered.insert(id), "case {case}: duplicate response {id}");
                }
            }
            if pending.is_empty() && outstanding.is_empty() && mem.quiesced() {
                break;
            }
            cycle += 1;
        }
        assert!(pending.is_empty(), "case {case}: submissions starved");
        assert!(outstanding.is_empty(), "case {case}: loads never answered");
        assert!(mem.quiesced(), "case {case}: system did not quiesce");
    }
}
