//! Structural validation of a trace: the checks behind `vtprof --check`.
//!
//! A well-formed trace satisfies:
//!
//! 1. **Monotonic timestamps** — events are ordered by non-decreasing
//!    cycle.
//! 2. **Balanced CTA spans** — on every (sm, cta-slot) track the
//!    launch/complete, swap-begin/swap-end and activate/deactivate pairs
//!    nest properly, and every span opened is eventually closed.
//! 3. **Balanced barrier waits** — a warp never arrives at a barrier
//!    twice without a release in between, and no warp is left waiting.
//! 4. **Closed memory spans** — every request id opens exactly once,
//!    progress marks only touch open requests, and every load/atomic span
//!    is closed by the end of the trace.
//!
//! Validation works on the *retained* window of a ring sink, so callers
//! should treat a sink with drops as unverifiable rather than feeding it
//! here.

use crate::event::{MemKind, SwapDir, TimedEvent, TraceEvent};
use crate::metrics::MetricsRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// What a span stack entry on a CTA-slot track is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtaSpan {
    Resident,
    Swap(SwapDir),
    Active,
}

/// Summary of a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Total events checked.
    pub events: usize,
    /// CTA residency spans opened (== CTAs launched in the window).
    pub cta_spans: u64,
    /// Swap-in/out + fresh-init transfer spans.
    pub swap_spans: u64,
    /// Barrier wait spans.
    pub barrier_spans: u64,
    /// Memory request spans (loads + atomics).
    pub mem_spans: u64,
    /// Instruction-issue events.
    pub issues: u64,
}

const MAX_ERRORS: usize = 20;

/// Validates `events`, returning a summary or the list of violations
/// (capped at 20 so a systematically broken trace stays readable).
pub fn validate(events: &[TimedEvent]) -> Result<TraceReport, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut report = TraceReport {
        events: events.len(),
        ..TraceReport::default()
    };

    let mut last_t = 0u64;
    let mut cta_stacks: BTreeMap<(u32, u32), Vec<CtaSpan>> = BTreeMap::new();
    let mut waiting: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut open_mem: BTreeSet<u64> = BTreeSet::new();

    let err = |errors: &mut Vec<String>, msg: String| {
        if errors.len() < MAX_ERRORS {
            errors.push(msg);
        }
    };

    for e in events {
        if e.t < last_t {
            err(
                &mut errors,
                format!("timestamp went backwards: {} after {}", e.t, last_t),
            );
        }
        last_t = last_t.max(e.t);
        let t = e.t;
        match e.ev {
            TraceEvent::CtaLaunch { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if !stack.is_empty() {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: launch into occupied slot"),
                    );
                }
                stack.push(CtaSpan::Resident);
                report.cta_spans += 1;
            }
            TraceEvent::SwapBegin {
                sm, cta_slot, dir, ..
            } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                match stack.last() {
                    Some(CtaSpan::Resident) => stack.push(CtaSpan::Swap(dir)),
                    top => err(
                        &mut errors,
                        format!(
                            "t={t}: sm{sm} slot{cta_slot}: {} begun atop {top:?}",
                            dir.label()
                        ),
                    ),
                }
                report.swap_spans += 1;
            }
            TraceEvent::SwapEnd {
                sm, cta_slot, dir, ..
            } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if stack.last() == Some(&CtaSpan::Swap(dir)) {
                    stack.pop();
                } else {
                    err(
                        &mut errors,
                        format!(
                            "t={t}: sm{sm} slot{cta_slot}: unmatched {} end",
                            dir.label()
                        ),
                    );
                }
            }
            TraceEvent::CtaActivate { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                match stack.last() {
                    Some(CtaSpan::Resident) => stack.push(CtaSpan::Active),
                    top => err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: activate atop {top:?}"),
                    ),
                }
            }
            TraceEvent::CtaDeactivate { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if stack.last() == Some(&CtaSpan::Active) {
                    stack.pop();
                } else {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: deactivate while not active"),
                    );
                }
            }
            TraceEvent::CtaComplete { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if stack.as_slice() == [CtaSpan::Resident] {
                    stack.pop();
                } else {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: complete with open spans {stack:?}"),
                    );
                    stack.clear();
                }
            }
            TraceEvent::WarpIssue { .. } => report.issues += 1,
            TraceEvent::BarrierArrive { sm, warp_slot, .. } => {
                if !waiting.insert((sm, warp_slot)) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} warp{warp_slot}: double barrier arrive"),
                    );
                }
                report.barrier_spans += 1;
            }
            TraceEvent::BarrierRelease { sm, warp_slot, .. } => {
                if !waiting.remove(&(sm, warp_slot)) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} warp{warp_slot}: release without arrive"),
                    );
                }
            }
            TraceEvent::Coalesce { .. } => {}
            TraceEvent::MemBegin { sm, req, kind, .. } => {
                if kind == MemKind::Store {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} req {req:#x}: store must not open a span"),
                    );
                }
                if !open_mem.insert(req) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} req {req:#x}: begun twice"),
                    );
                }
                report.mem_spans += 1;
            }
            TraceEvent::MemAt { sm, req, level } => {
                if !open_mem.contains(&req) {
                    err(
                        &mut errors,
                        format!(
                            "t={t}: sm{sm} req {req:#x}: progress ({}) on unopened request",
                            level.label()
                        ),
                    );
                }
            }
            TraceEvent::MemEnd { sm, req } => {
                if !open_mem.remove(&req) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} req {req:#x}: end without begin"),
                    );
                }
            }
            TraceEvent::StoreSubmit { .. } | TraceEvent::Counter { .. } => {}
        }
    }

    for ((sm, slot), stack) in &cta_stacks {
        if !stack.is_empty() {
            err(
                &mut errors,
                format!("end of trace: sm{sm} slot{slot}: open spans {stack:?}"),
            );
        }
    }
    for (sm, warp) in &waiting {
        err(
            &mut errors,
            format!("end of trace: sm{sm} warp{warp}: still waiting at barrier"),
        );
    }
    if !open_mem.is_empty() {
        let sample: Vec<String> = open_mem.iter().take(4).map(|r| format!("{r:#x}")).collect();
        err(
            &mut errors,
            format!(
                "end of trace: {} memory spans never closed (e.g. {})",
                open_mem.len(),
                sample.join(", ")
            ),
        );
    }

    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

/// Cross-checks a windowed [`MetricsRegistry`] against the event stream
/// it was sampled alongside. The trace must cover the run from cycle 0
/// with no drops (a ring sink that wrapped cannot be reconciled).
///
/// For every sealed window `k` over cycles `[k·w, (k+1)·w)`:
///
/// * the aggregate `warp_instrs` rate equals the `WarpIssue` count;
/// * each per-SM `warp_instrs` rate equals that SM's `WarpIssue` count
///   (which also pins the per-SM sum to the aggregate);
/// * `issue_cycles` equals the number of distinct (cycle, SM) pairs with
///   at least one issue — the issuing side of the idle identity;
/// * `swaps_in` equals the non-fresh `SwapBegin`(in) count and
///   `swaps_out` the `SwapBegin`(out) count.
///
/// Series the registry does not carry are skipped, so the checker works
/// on any subset of the engine's standard layout.
///
/// # Errors
///
/// Returns the list of mismatches (capped at 20).
pub fn validate_metrics(
    events: &[TimedEvent],
    metrics: &MetricsRegistry,
) -> Result<(), Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let err = |errors: &mut Vec<String>, msg: String| {
        if errors.len() < MAX_ERRORS {
            errors.push(msg);
        }
    };
    let w = metrics.window();
    let windows = usize::try_from(metrics.windows()).unwrap_or(usize::MAX);
    if windows == 0 {
        return Ok(());
    }

    // Tally events into the sealed windows; anything at or past the last
    // sealed boundary rides in a partial window the registry never saw.
    let mut issues = vec![0u64; windows];
    let mut per_sm_issues: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut issue_cycles: Vec<BTreeSet<(u64, u32)>> = vec![BTreeSet::new(); windows];
    let mut per_sm_issue_cycles: BTreeMap<u32, Vec<BTreeSet<u64>>> = BTreeMap::new();
    let mut swaps_in = vec![0u64; windows];
    let mut swaps_out = vec![0u64; windows];
    for e in events {
        let Ok(k) = usize::try_from(e.t / w) else {
            continue;
        };
        if k >= windows {
            continue;
        }
        match e.ev {
            TraceEvent::WarpIssue { sm, .. } => {
                issues[k] += 1;
                per_sm_issues.entry(sm).or_insert_with(|| vec![0; windows])[k] += 1;
                issue_cycles[k].insert((e.t, sm));
                per_sm_issue_cycles
                    .entry(sm)
                    .or_insert_with(|| vec![BTreeSet::new(); windows])[k]
                    .insert(e.t);
            }
            TraceEvent::SwapBegin {
                dir: SwapDir::In,
                fresh: false,
                ..
            } => swaps_in[k] += 1,
            TraceEvent::SwapBegin {
                dir: SwapDir::Out, ..
            } => swaps_out[k] += 1,
            _ => {}
        }
    }

    let check = |errors: &mut Vec<String>, name: &str, sm: Option<u32>, expect: &[u64]| {
        let Some(s) = metrics.get(name, sm) else {
            return;
        };
        let got = s.values();
        if got.len() != expect.len() {
            err(
                errors,
                format!(
                    "{name}: {} windows recorded, {} sealed",
                    got.len(),
                    expect.len()
                ),
            );
        }
        for (k, (&g, &e)) in got.iter().zip(expect).enumerate() {
            if g != e {
                let scope = sm.map(|sm| format!(" (sm{sm})")).unwrap_or_default();
                err(
                    errors,
                    format!("window {k}: {name}{scope} is {g}, events say {e}"),
                );
            }
        }
    };

    check(&mut errors, "warp_instrs", None, &issues);
    let distinct: Vec<u64> = issue_cycles.iter().map(|s| s.len() as u64).collect();
    check(&mut errors, "issue_cycles", None, &distinct);
    check(&mut errors, "swaps_in", None, &swaps_in);
    check(&mut errors, "swaps_out", None, &swaps_out);
    for (&sm, counts) in &per_sm_issues {
        check(&mut errors, "warp_instrs", Some(sm), counts);
    }
    // A per-SM series for an SM that never issued must be all zeros.
    for s in metrics.series() {
        if let Some(sm) = s.sm {
            if s.name == "warp_instrs" && !per_sm_issues.contains_key(&sm) {
                check(&mut errors, "warp_instrs", Some(sm), &vec![0; windows]);
            }
        }
    }

    // CPI attribution vs the event stream: the per-SM `cpi_issued` rate
    // must equal the distinct issue cycles of that SM per window.
    for (&sm, cycles) in &per_sm_issue_cycles {
        let distinct: Vec<u64> = cycles.iter().map(|s| s.len() as u64).collect();
        check(&mut errors, "cpi_issued", Some(sm), &distinct);
    }

    // CPI conservation identities, per sealed window (each covers
    // exactly `w` cycles). Skipped when a registry predates the
    // attribution series — `read` returns None for absent names.
    let read = |name: &str, sm: Option<u32>| -> Option<Vec<u64>> {
        metrics.get(name, sm).map(|s| s.values().to_vec())
    };
    let cpi_sms: Vec<u32> = metrics
        .series()
        .iter()
        .filter(|s| s.name == "cpi_issued")
        .filter_map(|s| s.sm)
        .collect();
    // Per SM: issued + stalled + empty == window cycles.
    for &sm in &cpi_sms {
        if let (Some(i), Some(s), Some(e)) = (
            read("cpi_issued", Some(sm)),
            read("cpi_stalled", Some(sm)),
            read("cpi_empty", Some(sm)),
        ) {
            for k in 0..windows.min(i.len()).min(s.len()).min(e.len()) {
                let sum = i[k] + s[k] + e[k];
                if sum != w {
                    err(
                        &mut errors,
                        format!(
                            "window {k}: sm{sm} CPI buckets sum to {sum}, window is {w} cycles"
                        ),
                    );
                }
            }
        }
    }
    // Aggregate: the idle breakdown plus issue cycles covers every
    // SM-cycle, and the empty split partitions `idle_no_warps`.
    let idle_names = [
        "idle_no_warps",
        "idle_memory",
        "idle_pipeline",
        "idle_barrier",
        "idle_swapping",
        "idle_other",
    ];
    if let Some(issued) = read("issue_cycles", None) {
        let idle: Option<Vec<Vec<u64>>> = idle_names.iter().map(|n| read(n, None)).collect();
        if let Some(idle) = idle {
            if !cpi_sms.is_empty() {
                let sm_cycles = w * cpi_sms.len() as u64;
                for (k, &issued_k) in issued.iter().enumerate().take(windows) {
                    let sum = issued_k
                        + idle
                            .iter()
                            .map(|v| v.get(k).copied().unwrap_or(0))
                            .sum::<u64>();
                    if sum != sm_cycles {
                        err(
                            &mut errors,
                            format!(
                                "window {k}: issue + idle buckets sum to {sum}, \
                                 expected {sm_cycles} ({} SMs x {w} cycles)",
                                cpi_sms.len()
                            ),
                        );
                    }
                }
            }
        }
    }
    if let (Some(no_warps), Some(sched), Some(cap), Some(drain)) = (
        read("idle_no_warps", None),
        read("cpi_empty_scheduling", None),
        read("cpi_empty_capacity", None),
        read("cpi_empty_drain", None),
    ) {
        for (k, &no_warps_k) in no_warps.iter().enumerate().take(windows) {
            let split = sched.get(k).copied().unwrap_or(0)
                + cap.get(k).copied().unwrap_or(0)
                + drain.get(k).copied().unwrap_or(0);
            if split != no_warps_k {
                err(
                    &mut errors,
                    format!(
                        "window {k}: empty split sums to {split}, idle_no_warps is {no_warps_k}"
                    ),
                );
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemLevel;

    fn ev(t: u64, ev: TraceEvent) -> TimedEvent {
        TimedEvent { t, ev }
    }

    fn launch(t: u64) -> TimedEvent {
        ev(
            t,
            TraceEvent::CtaLaunch {
                sm: 0,
                cta_slot: 0,
                cta_id: 0,
            },
        )
    }

    fn complete(t: u64) -> TimedEvent {
        ev(
            t,
            TraceEvent::CtaComplete {
                sm: 0,
                cta_slot: 0,
                cta_id: 0,
            },
        )
    }

    fn swap(t: u64, dir: SwapDir, begin: bool) -> TimedEvent {
        if begin {
            ev(
                t,
                TraceEvent::SwapBegin {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                    dir,
                    fresh: false,
                },
            )
        } else {
            ev(
                t,
                TraceEvent::SwapEnd {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                    dir,
                },
            )
        }
    }

    fn activate(t: u64, on: bool) -> TimedEvent {
        if on {
            ev(
                t,
                TraceEvent::CtaActivate {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                },
            )
        } else {
            ev(
                t,
                TraceEvent::CtaDeactivate {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                },
            )
        }
    }

    #[test]
    fn accepts_a_complete_cta_lifecycle() {
        let events = vec![
            launch(0),
            swap(0, SwapDir::In, true),
            swap(2, SwapDir::In, false),
            activate(2, true),
            activate(10, false),
            swap(10, SwapDir::Out, true),
            swap(12, SwapDir::Out, false),
            swap(20, SwapDir::In, true),
            swap(22, SwapDir::In, false),
            activate(22, true),
            activate(30, false),
            complete(30),
        ];
        let report = validate(&events).expect("valid trace");
        assert_eq!(report.cta_spans, 1);
        assert_eq!(report.swap_spans, 3);
    }

    #[test]
    fn rejects_backwards_time() {
        let events = vec![launch(5), complete(3)];
        let errs = validate(&events).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("backwards")), "{errs:?}");
    }

    #[test]
    fn rejects_unclosed_cta_span() {
        let errs = validate(&[launch(0)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("open spans")), "{errs:?}");
    }

    #[test]
    fn rejects_complete_while_active() {
        let events = vec![launch(0), activate(1, true), complete(2)];
        assert!(validate(&events).is_err());
    }

    #[test]
    fn rejects_unbalanced_barrier() {
        let arrive = ev(
            1,
            TraceEvent::BarrierArrive {
                sm: 0,
                cta_slot: 0,
                warp_slot: 4,
            },
        );
        let errs = validate(&[arrive]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("waiting")), "{errs:?}");
    }

    #[test]
    fn rejects_unclosed_memory_span() {
        let begin = ev(
            0,
            TraceEvent::MemBegin {
                sm: 0,
                req: 9,
                line_addr: 0,
                kind: MemKind::Load,
                level: MemLevel::L1Miss,
            },
        );
        let errs = validate(&[begin]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("never closed")), "{errs:?}");
        let end = ev(7, TraceEvent::MemEnd { sm: 0, req: 9 });
        let report = validate(&[begin, end]).expect("closed span ok");
        assert_eq!(report.mem_spans, 1);
    }

    #[test]
    fn l1_hits_close_at_the_same_cycle() {
        let begin = ev(
            4,
            TraceEvent::MemBegin {
                sm: 1,
                req: 2,
                line_addr: 0x80,
                kind: MemKind::Load,
                level: MemLevel::L1Hit,
            },
        );
        let at = ev(
            4,
            TraceEvent::MemAt {
                sm: 1,
                req: 2,
                level: MemLevel::L1Fill,
            },
        );
        let end = ev(4, TraceEvent::MemEnd { sm: 1, req: 2 });
        assert!(validate(&[begin, at, end]).is_ok());
    }

    #[test]
    fn error_list_is_capped() {
        let events: Vec<TimedEvent> = (0..100)
            .map(|i| ev(i, TraceEvent::MemEnd { sm: 0, req: i }))
            .collect();
        let errs = validate(&events).unwrap_err();
        assert!(errs.len() <= 20);
    }

    fn issue(t: u64, sm: u32, sched: u32) -> TimedEvent {
        ev(
            t,
            TraceEvent::WarpIssue {
                sm,
                sched,
                warp_slot: 0,
                pc: 0,
            },
        )
    }

    fn metered_fixture() -> (Vec<TimedEvent>, MetricsRegistry) {
        // Window 0 (cycles 0..10): sm0 dual-issues at t=1, sm1 issues at
        // t=1 and t=4, one real swap-in, one fresh activation (ignored).
        // Window 1 (cycles 10..20): sm0 issues at t=12, one swap-out.
        // t=25 falls in the partial second window — never reconciled.
        let events = vec![
            issue(1, 0, 0),
            issue(1, 0, 1),
            issue(1, 1, 0),
            swap(3, SwapDir::In, true),
            ev(
                4,
                TraceEvent::SwapBegin {
                    sm: 1,
                    cta_slot: 0,
                    cta_id: 7,
                    dir: SwapDir::In,
                    fresh: true,
                },
            ),
            issue(4, 1, 0),
            issue(12, 0, 0),
            swap(15, SwapDir::Out, true),
            issue(25, 0, 0),
        ];
        let mut m = MetricsRegistry::new(10);
        let wi = m.rate("warp_instrs", None);
        let ic = m.rate("issue_cycles", None);
        let si = m.rate("swaps_in", None);
        let so = m.rate("swaps_out", None);
        let p0 = m.rate("warp_instrs", Some(0));
        let p1 = m.rate("warp_instrs", Some(1));
        for (wi_t, ic_t, si_t, so_t, p0_t, p1_t) in [(4, 3, 1, 0, 2, 2), (5, 4, 1, 1, 3, 2)] {
            m.sample_total(wi, wi_t);
            m.sample_total(ic, ic_t);
            m.sample_total(si, si_t);
            m.sample_total(so, so_t);
            m.sample_total(p0, p0_t);
            m.sample_total(p1, p1_t);
            m.seal();
        }
        (events, m)
    }

    #[test]
    fn metrics_cross_check_accepts_matching_series() {
        let (events, m) = metered_fixture();
        validate_metrics(&events, &m).expect("series reconcile");
    }

    #[test]
    fn metrics_cross_check_flags_issue_mismatch() {
        let (mut events, m) = metered_fixture();
        // An extra issue in window 1 desyncs both warp_instrs (aggregate
        // and per-SM) and issue_cycles.
        events.push(issue(16, 0, 0));
        events.sort_by_key(|e| e.t);
        let errs = validate_metrics(&events, &m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("warp_instrs") && e.contains("window 1")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("issue_cycles")), "{errs:?}");
    }

    #[test]
    fn metrics_cross_check_flags_swap_mismatch() {
        let (mut events, m) = metered_fixture();
        events.insert(4, swap(3, SwapDir::In, true));
        let errs = validate_metrics(&events, &m).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("swaps_in")), "{errs:?}");
    }

    #[test]
    fn metrics_cross_check_skips_unsampled_layouts() {
        let (events, _) = metered_fixture();
        // A registry without the standard series (or with none sealed)
        // reconciles vacuously.
        let empty = MetricsRegistry::new(10);
        validate_metrics(&events, &empty).expect("no sealed windows");
        let mut other = MetricsRegistry::new(10);
        let g = other.level("resident_warps", None);
        other.sample_level(g, 3);
        other.seal();
        validate_metrics(&events, &other).expect("unknown layout skipped");
    }
}
