//! Structural validation of a trace: the checks behind `vtprof --check`.
//!
//! A well-formed trace satisfies:
//!
//! 1. **Monotonic timestamps** — events are ordered by non-decreasing
//!    cycle.
//! 2. **Balanced CTA spans** — on every (sm, cta-slot) track the
//!    launch/complete, swap-begin/swap-end and activate/deactivate pairs
//!    nest properly, and every span opened is eventually closed.
//! 3. **Balanced barrier waits** — a warp never arrives at a barrier
//!    twice without a release in between, and no warp is left waiting.
//! 4. **Closed memory spans** — every request id opens exactly once,
//!    progress marks only touch open requests, and every load/atomic span
//!    is closed by the end of the trace.
//!
//! Validation works on the *retained* window of a ring sink, so callers
//! should treat a sink with drops as unverifiable rather than feeding it
//! here.

use crate::event::{MemKind, SwapDir, TimedEvent, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// What a span stack entry on a CTA-slot track is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtaSpan {
    Resident,
    Swap(SwapDir),
    Active,
}

/// Summary of a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Total events checked.
    pub events: usize,
    /// CTA residency spans opened (== CTAs launched in the window).
    pub cta_spans: u64,
    /// Swap-in/out + fresh-init transfer spans.
    pub swap_spans: u64,
    /// Barrier wait spans.
    pub barrier_spans: u64,
    /// Memory request spans (loads + atomics).
    pub mem_spans: u64,
    /// Instruction-issue events.
    pub issues: u64,
}

const MAX_ERRORS: usize = 20;

/// Validates `events`, returning a summary or the list of violations
/// (capped at 20 so a systematically broken trace stays readable).
pub fn validate(events: &[TimedEvent]) -> Result<TraceReport, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut report = TraceReport {
        events: events.len(),
        ..TraceReport::default()
    };

    let mut last_t = 0u64;
    let mut cta_stacks: BTreeMap<(u32, u32), Vec<CtaSpan>> = BTreeMap::new();
    let mut waiting: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut open_mem: BTreeSet<u64> = BTreeSet::new();

    let err = |errors: &mut Vec<String>, msg: String| {
        if errors.len() < MAX_ERRORS {
            errors.push(msg);
        }
    };

    for e in events {
        if e.t < last_t {
            err(
                &mut errors,
                format!("timestamp went backwards: {} after {}", e.t, last_t),
            );
        }
        last_t = last_t.max(e.t);
        let t = e.t;
        match e.ev {
            TraceEvent::CtaLaunch { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if !stack.is_empty() {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: launch into occupied slot"),
                    );
                }
                stack.push(CtaSpan::Resident);
                report.cta_spans += 1;
            }
            TraceEvent::SwapBegin {
                sm, cta_slot, dir, ..
            } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                match stack.last() {
                    Some(CtaSpan::Resident) => stack.push(CtaSpan::Swap(dir)),
                    top => err(
                        &mut errors,
                        format!(
                            "t={t}: sm{sm} slot{cta_slot}: {} begun atop {top:?}",
                            dir.label()
                        ),
                    ),
                }
                report.swap_spans += 1;
            }
            TraceEvent::SwapEnd {
                sm, cta_slot, dir, ..
            } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if stack.last() == Some(&CtaSpan::Swap(dir)) {
                    stack.pop();
                } else {
                    err(
                        &mut errors,
                        format!(
                            "t={t}: sm{sm} slot{cta_slot}: unmatched {} end",
                            dir.label()
                        ),
                    );
                }
            }
            TraceEvent::CtaActivate { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                match stack.last() {
                    Some(CtaSpan::Resident) => stack.push(CtaSpan::Active),
                    top => err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: activate atop {top:?}"),
                    ),
                }
            }
            TraceEvent::CtaDeactivate { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if stack.last() == Some(&CtaSpan::Active) {
                    stack.pop();
                } else {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: deactivate while not active"),
                    );
                }
            }
            TraceEvent::CtaComplete { sm, cta_slot, .. } => {
                let stack = cta_stacks.entry((sm, cta_slot)).or_default();
                if stack.as_slice() == [CtaSpan::Resident] {
                    stack.pop();
                } else {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} slot{cta_slot}: complete with open spans {stack:?}"),
                    );
                    stack.clear();
                }
            }
            TraceEvent::WarpIssue { .. } => report.issues += 1,
            TraceEvent::BarrierArrive { sm, warp_slot, .. } => {
                if !waiting.insert((sm, warp_slot)) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} warp{warp_slot}: double barrier arrive"),
                    );
                }
                report.barrier_spans += 1;
            }
            TraceEvent::BarrierRelease { sm, warp_slot, .. } => {
                if !waiting.remove(&(sm, warp_slot)) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} warp{warp_slot}: release without arrive"),
                    );
                }
            }
            TraceEvent::Coalesce { .. } => {}
            TraceEvent::MemBegin { sm, req, kind, .. } => {
                if kind == MemKind::Store {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} req {req:#x}: store must not open a span"),
                    );
                }
                if !open_mem.insert(req) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} req {req:#x}: begun twice"),
                    );
                }
                report.mem_spans += 1;
            }
            TraceEvent::MemAt { sm, req, level } => {
                if !open_mem.contains(&req) {
                    err(
                        &mut errors,
                        format!(
                            "t={t}: sm{sm} req {req:#x}: progress ({}) on unopened request",
                            level.label()
                        ),
                    );
                }
            }
            TraceEvent::MemEnd { sm, req } => {
                if !open_mem.remove(&req) {
                    err(
                        &mut errors,
                        format!("t={t}: sm{sm} req {req:#x}: end without begin"),
                    );
                }
            }
            TraceEvent::StoreSubmit { .. } | TraceEvent::Counter { .. } => {}
        }
    }

    for ((sm, slot), stack) in &cta_stacks {
        if !stack.is_empty() {
            err(
                &mut errors,
                format!("end of trace: sm{sm} slot{slot}: open spans {stack:?}"),
            );
        }
    }
    for (sm, warp) in &waiting {
        err(
            &mut errors,
            format!("end of trace: sm{sm} warp{warp}: still waiting at barrier"),
        );
    }
    if !open_mem.is_empty() {
        let sample: Vec<String> = open_mem.iter().take(4).map(|r| format!("{r:#x}")).collect();
        err(
            &mut errors,
            format!(
                "end of trace: {} memory spans never closed (e.g. {})",
                open_mem.len(),
                sample.join(", ")
            ),
        );
    }

    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemLevel;

    fn ev(t: u64, ev: TraceEvent) -> TimedEvent {
        TimedEvent { t, ev }
    }

    fn launch(t: u64) -> TimedEvent {
        ev(
            t,
            TraceEvent::CtaLaunch {
                sm: 0,
                cta_slot: 0,
                cta_id: 0,
            },
        )
    }

    fn complete(t: u64) -> TimedEvent {
        ev(
            t,
            TraceEvent::CtaComplete {
                sm: 0,
                cta_slot: 0,
                cta_id: 0,
            },
        )
    }

    fn swap(t: u64, dir: SwapDir, begin: bool) -> TimedEvent {
        if begin {
            ev(
                t,
                TraceEvent::SwapBegin {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                    dir,
                    fresh: false,
                },
            )
        } else {
            ev(
                t,
                TraceEvent::SwapEnd {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                    dir,
                },
            )
        }
    }

    fn activate(t: u64, on: bool) -> TimedEvent {
        if on {
            ev(
                t,
                TraceEvent::CtaActivate {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                },
            )
        } else {
            ev(
                t,
                TraceEvent::CtaDeactivate {
                    sm: 0,
                    cta_slot: 0,
                    cta_id: 0,
                },
            )
        }
    }

    #[test]
    fn accepts_a_complete_cta_lifecycle() {
        let events = vec![
            launch(0),
            swap(0, SwapDir::In, true),
            swap(2, SwapDir::In, false),
            activate(2, true),
            activate(10, false),
            swap(10, SwapDir::Out, true),
            swap(12, SwapDir::Out, false),
            swap(20, SwapDir::In, true),
            swap(22, SwapDir::In, false),
            activate(22, true),
            activate(30, false),
            complete(30),
        ];
        let report = validate(&events).expect("valid trace");
        assert_eq!(report.cta_spans, 1);
        assert_eq!(report.swap_spans, 3);
    }

    #[test]
    fn rejects_backwards_time() {
        let events = vec![launch(5), complete(3)];
        let errs = validate(&events).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("backwards")), "{errs:?}");
    }

    #[test]
    fn rejects_unclosed_cta_span() {
        let errs = validate(&[launch(0)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("open spans")), "{errs:?}");
    }

    #[test]
    fn rejects_complete_while_active() {
        let events = vec![launch(0), activate(1, true), complete(2)];
        assert!(validate(&events).is_err());
    }

    #[test]
    fn rejects_unbalanced_barrier() {
        let arrive = ev(
            1,
            TraceEvent::BarrierArrive {
                sm: 0,
                cta_slot: 0,
                warp_slot: 4,
            },
        );
        let errs = validate(&[arrive]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("waiting")), "{errs:?}");
    }

    #[test]
    fn rejects_unclosed_memory_span() {
        let begin = ev(
            0,
            TraceEvent::MemBegin {
                sm: 0,
                req: 9,
                line_addr: 0,
                kind: MemKind::Load,
                level: MemLevel::L1Miss,
            },
        );
        let errs = validate(&[begin]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("never closed")), "{errs:?}");
        let end = ev(7, TraceEvent::MemEnd { sm: 0, req: 9 });
        let report = validate(&[begin, end]).expect("closed span ok");
        assert_eq!(report.mem_spans, 1);
    }

    #[test]
    fn l1_hits_close_at_the_same_cycle() {
        let begin = ev(
            4,
            TraceEvent::MemBegin {
                sm: 1,
                req: 2,
                line_addr: 0x80,
                kind: MemKind::Load,
                level: MemLevel::L1Hit,
            },
        );
        let at = ev(
            4,
            TraceEvent::MemAt {
                sm: 1,
                req: 2,
                level: MemLevel::L1Fill,
            },
        );
        let end = ev(4, TraceEvent::MemEnd { sm: 1, req: 2 });
        assert!(validate(&[begin, at, end]).is_ok());
    }

    #[test]
    fn error_list_is_capped() {
        let events: Vec<TimedEvent> = (0..100)
            .map(|i| ev(i, TraceEvent::MemEnd { sm: 0, req: i }))
            .collect();
        let errs = validate(&events).unwrap_err();
        assert!(errs.len() <= 20);
    }
}
