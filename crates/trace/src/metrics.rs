//! Cycle-windowed metric series: the continuous-telemetry counterpart to
//! the event stream and the end-of-run aggregates in [`crate::hist`].
//!
//! A [`MetricsRegistry`] holds typed series sampled once per *window* (a
//! fixed number of cycles, default [`DEFAULT_WINDOW`]). Three kinds
//! exist:
//!
//! * **Rate** — a monotonically increasing counter sampled at each window
//!   boundary; the series stores the per-window *deltas* plus the last
//!   cumulative value, so a checkpointed registry resumes exactly where
//!   it left off.
//! * **Level** — an instantaneous value (resident warps, MSHR occupancy)
//!   read at each window boundary.
//! * **Dist** — a [`Histogram`] per window of values observed at the
//!   boundary (e.g. the per-SM issue balance).
//!
//! Every stored value is an integer, so series compare bit-identically
//! across worker counts and checkpoint/resume stitches (the engine seals
//! whole windows only; a partial window rides inside the checkpoint as
//! the rates' cumulative baselines). The registry exports to Prometheus
//! text format ([`MetricsRegistry::to_prometheus`]) and vt-json
//! ([`MetricsRegistry::to_json`]), and round-trips losslessly through
//! [`MetricsRegistry::snapshot`] / [`MetricsRegistry::restore`] for the
//! checkpoint layer.

use crate::hist::Histogram;
use vt_json::{req, req_array, req_str, req_u64, Json};

/// Default sampling window in cycles.
pub const DEFAULT_WINDOW: u64 = 512;

/// Handle to a registered series; indexes are stable for the registry's
/// lifetime (series are never removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// The payload of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesKind {
    /// Windowed rate of a cumulative counter.
    Rate {
        /// Cumulative value at the last sealed boundary.
        last: u64,
        /// Per-window increments.
        deltas: Vec<u64>,
    },
    /// Instantaneous level at each window boundary.
    Level {
        /// One sample per window.
        values: Vec<u64>,
    },
    /// A distribution of boundary observations per window.
    Dist {
        /// Observations accumulated for the window being built (boxed to
        /// keep the enum small next to the slim `Rate`/`Level` variants).
        current: Box<Histogram>,
        /// One sealed histogram per window.
        windows: Vec<Histogram>,
    },
}

/// One named series, optionally scoped to a single SM (`sm: None` means
/// whole-GPU aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric name (snake_case, no `vt_` prefix).
    pub name: String,
    /// Scope: `Some(sm)` for a per-SM series, `None` for the aggregate.
    pub sm: Option<u32>,
    /// Payload.
    pub kind: SeriesKind,
}

impl Series {
    /// The per-window values: rate deltas or level samples. Empty for a
    /// distribution series (use [`Series::histograms`]).
    pub fn values(&self) -> &[u64] {
        match &self.kind {
            SeriesKind::Rate { deltas, .. } => deltas,
            SeriesKind::Level { values } => values,
            SeriesKind::Dist { .. } => &[],
        }
    }

    /// The sealed per-window histograms of a distribution series; empty
    /// for rates and levels.
    pub fn histograms(&self) -> &[Histogram] {
        match &self.kind {
            SeriesKind::Dist { windows, .. } => windows,
            _ => &[],
        }
    }

    /// Cumulative total: a rate's counter at the last sealed boundary, a
    /// level's latest sample, a distribution's observation count.
    pub fn total(&self) -> u64 {
        match &self.kind {
            SeriesKind::Rate { last, .. } => *last,
            SeriesKind::Level { values } => values.last().copied().unwrap_or(0),
            SeriesKind::Dist { windows, .. } => windows.iter().map(|h| h.count).sum(),
        }
    }

    /// Mean per-window value (0 for an empty or distribution series).
    pub fn mean(&self) -> f64 {
        let v = self.values();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    }

    /// Largest per-window value (0 when empty).
    pub fn max(&self) -> u64 {
        self.values().iter().copied().max().unwrap_or(0)
    }

    fn kind_tag(&self) -> &'static str {
        match self.kind {
            SeriesKind::Rate { .. } => "rate",
            SeriesKind::Level { .. } => "level",
            SeriesKind::Dist { .. } => "dist",
        }
    }
}

/// A registry of cycle-windowed series. See the module docs for the
/// sampling model; the engine-side sampler lives in `vt-sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    window: u64,
    sealed: u64,
    series: Vec<Series>,
}

impl MetricsRegistry {
    /// An empty registry sampling every `window` cycles (clamped to ≥ 1).
    pub fn new(window: u64) -> MetricsRegistry {
        MetricsRegistry {
            window: window.max(1),
            sealed: 0,
            series: Vec::new(),
        }
    }

    /// Cycles per window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of sealed (complete) windows.
    pub fn windows(&self) -> u64 {
        self.sealed
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// All series, in registration order.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks a series up by name and scope.
    pub fn get(&self, name: &str, sm: Option<u32>) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name && s.sm == sm)
    }

    fn register(&mut self, name: &str, sm: Option<u32>, kind: SeriesKind) -> SeriesId {
        debug_assert!(
            self.get(name, sm).is_none(),
            "duplicate series {name:?}/{sm:?}"
        );
        self.series.push(Series {
            name: name.to_string(),
            sm,
            kind,
        });
        SeriesId(self.series.len() - 1)
    }

    /// Registers a rate series over a cumulative counter.
    pub fn rate(&mut self, name: &str, sm: Option<u32>) -> SeriesId {
        self.register(
            name,
            sm,
            SeriesKind::Rate {
                last: 0,
                deltas: Vec::new(),
            },
        )
    }

    /// Registers an instantaneous-level series.
    pub fn level(&mut self, name: &str, sm: Option<u32>) -> SeriesId {
        self.register(name, sm, SeriesKind::Level { values: Vec::new() })
    }

    /// Registers a per-window distribution series.
    pub fn dist(&mut self, name: &str, sm: Option<u32>) -> SeriesId {
        self.register(
            name,
            sm,
            SeriesKind::Dist {
                current: Box::default(),
                windows: Vec::new(),
            },
        )
    }

    /// Samples a rate series with the counter's *cumulative* value at
    /// this boundary, pushing and returning the delta since the previous
    /// boundary. Call exactly once per series per window, then
    /// [`MetricsRegistry::seal`].
    pub fn sample_total(&mut self, id: SeriesId, total: u64) -> u64 {
        let SeriesKind::Rate { last, deltas } = &mut self.series[id.0].kind else {
            panic!("sample_total on a non-rate series");
        };
        debug_assert!(total >= *last, "counter went backwards");
        let delta = total.saturating_sub(*last);
        *last = total;
        deltas.push(delta);
        delta
    }

    /// Samples a level series with the instantaneous value at this
    /// boundary. Call exactly once per series per window.
    pub fn sample_level(&mut self, id: SeriesId, value: u64) {
        let SeriesKind::Level { values } = &mut self.series[id.0].kind else {
            panic!("sample_level on a non-level series");
        };
        values.push(value);
    }

    /// Records one observation into a distribution series' current
    /// window.
    pub fn observe(&mut self, id: SeriesId, value: u64) {
        let SeriesKind::Dist { current, .. } = &mut self.series[id.0].kind else {
            panic!("observe on a non-dist series");
        };
        current.record(value);
    }

    /// Closes the current window: distribution series seal their current
    /// histogram, and every series must have been sampled exactly once
    /// since the previous seal (debug-asserted).
    pub fn seal(&mut self) {
        self.sealed += 1;
        for s in &mut self.series {
            match &mut s.kind {
                SeriesKind::Rate { deltas, .. } => {
                    debug_assert_eq!(deltas.len() as u64, self.sealed, "{} missed", s.name);
                }
                SeriesKind::Level { values } => {
                    debug_assert_eq!(values.len() as u64, self.sealed, "{} missed", s.name);
                }
                SeriesKind::Dist { current, windows } => {
                    windows.push(std::mem::take(current.as_mut()));
                }
            }
        }
    }

    /// Renders the registry in Prometheus text exposition format: rates
    /// as `counter`s (cumulative value at the last sealed boundary),
    /// levels as `gauge`s (latest sample), distributions as `histogram`s
    /// (all windows merged), with `sm` labels on per-SM series. Two meta
    /// gauges carry the window geometry.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# HELP vt_metrics_window_cycles Cycles per metric window.\n");
        out.push_str("# TYPE vt_metrics_window_cycles gauge\n");
        let _ = writeln!(out, "vt_metrics_window_cycles {}", self.window);
        out.push_str("# HELP vt_metrics_windows Sealed metric windows in this exposition.\n");
        out.push_str("# TYPE vt_metrics_windows gauge\n");
        let _ = writeln!(out, "vt_metrics_windows {}", self.sealed);
        let mut typed: Vec<&str> = Vec::new();
        let meta = |out: &mut String, name: &str, kind: &str| {
            let _ = writeln!(out, "# HELP vt_{name} {}", series_help(name));
            let _ = writeln!(out, "# TYPE vt_{name} {kind}");
        };
        for s in &self.series {
            let label = match s.sm {
                Some(sm) => format!("{{sm=\"{}\"}}", escape_label_value(&sm.to_string())),
                None => String::new(),
            };
            match &s.kind {
                SeriesKind::Rate { last, .. } => {
                    if !typed.contains(&s.name.as_str()) {
                        typed.push(&s.name);
                        meta(&mut out, &s.name, "counter");
                    }
                    let _ = writeln!(out, "vt_{}_total{label} {last}", s.name);
                }
                SeriesKind::Level { values } => {
                    if !typed.contains(&s.name.as_str()) {
                        typed.push(&s.name);
                        meta(&mut out, &s.name, "gauge");
                    }
                    let v = values.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "vt_{}{label} {v}", s.name);
                }
                SeriesKind::Dist { windows, .. } => {
                    if !typed.contains(&s.name.as_str()) {
                        typed.push(&s.name);
                        meta(&mut out, &s.name, "histogram");
                    }
                    let mut merged = Histogram::default();
                    for w in windows {
                        merged.merge(w);
                    }
                    let lbl = |le: &str| {
                        let le = escape_label_value(le);
                        match s.sm {
                            Some(sm) => {
                                format!(
                                    "{{sm=\"{}\",le=\"{le}\"}}",
                                    escape_label_value(&sm.to_string())
                                )
                            }
                            None => format!("{{le=\"{le}\"}}"),
                        }
                    };
                    let top = merged
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map_or(0, |i| i + 1);
                    let mut cumulative = 0u64;
                    for (i, &n) in merged.buckets.iter().take(top).enumerate() {
                        cumulative += n;
                        // Bucket i covers values up to 2^i - 1 inclusive.
                        let le = Histogram::bucket_lo(i + 1).saturating_sub(1);
                        let _ = writeln!(
                            out,
                            "vt_{}_bucket{} {cumulative}",
                            s.name,
                            lbl(&le.to_string())
                        );
                    }
                    let _ = writeln!(out, "vt_{}_bucket{} {}", s.name, lbl("+Inf"), merged.count);
                    let _ = writeln!(out, "vt_{}_sum{label} {}", s.name, merged.sum);
                    let _ = writeln!(out, "vt_{}_count{label} {}", s.name, merged.count);
                }
            }
        }
        out
    }

    /// Full per-window detail as vt-json: window geometry plus every
    /// series' values (rates/levels) or histogram snapshots (dists).
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    (
                        "sm".into(),
                        match s.sm {
                            Some(sm) => Json::UInt(u64::from(sm)),
                            None => Json::Null,
                        },
                    ),
                    ("kind".into(), Json::Str(s.kind_tag().to_string())),
                ];
                match &s.kind {
                    SeriesKind::Dist { windows, .. } => fields.push((
                        "windows".into(),
                        Json::Array(windows.iter().map(Histogram::snapshot).collect()),
                    )),
                    _ => fields.push((
                        "values".into(),
                        Json::Array(s.values().iter().map(|&v| Json::UInt(v)).collect()),
                    )),
                }
                Json::Object(fields)
            })
            .collect();
        Json::Object(vec![
            ("window".into(), Json::UInt(self.window)),
            ("windows".into(), Json::UInt(self.sealed)),
            ("series".into(), Json::Array(series)),
        ])
    }

    /// Serializes the complete registry state — including the rates'
    /// cumulative baselines and the dists' in-progress window — for
    /// checkpointing.
    pub fn snapshot(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    (
                        "sm".into(),
                        match s.sm {
                            Some(sm) => Json::UInt(u64::from(sm)),
                            None => Json::Null,
                        },
                    ),
                    ("kind".into(), Json::Str(s.kind_tag().to_string())),
                ];
                let ints = |v: &[u64]| Json::Array(v.iter().map(|&x| Json::UInt(x)).collect());
                match &s.kind {
                    SeriesKind::Rate { last, deltas } => {
                        fields.push(("last".into(), Json::UInt(*last)));
                        fields.push(("values".into(), ints(deltas)));
                    }
                    SeriesKind::Level { values } => {
                        fields.push(("values".into(), ints(values)));
                    }
                    SeriesKind::Dist { current, windows } => {
                        fields.push(("current".into(), current.snapshot()));
                        fields.push((
                            "windows".into(),
                            Json::Array(windows.iter().map(Histogram::snapshot).collect()),
                        ));
                    }
                }
                Json::Object(fields)
            })
            .collect();
        Json::Object(vec![
            ("window".into(), Json::UInt(self.window)),
            ("sealed".into(), Json::UInt(self.sealed)),
            ("series".into(), Json::Array(series)),
        ])
    }

    /// Rebuilds a registry from [`MetricsRegistry::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<MetricsRegistry, String> {
        let ints = |v: &Json, key: &str| -> Result<Vec<u64>, String> {
            req_array(v, key)?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| format!("{key} value is not an integer"))
                })
                .collect()
        };
        let mut series = Vec::new();
        for doc in req_array(v, "series")? {
            let name = req_str(doc, "name")?.to_string();
            let sm = match req(doc, "sm")? {
                Json::Null => None,
                j => Some(
                    j.as_u64()
                        .ok_or_else(|| "sm is not an integer".to_string())?
                        as u32,
                ),
            };
            let kind = match req_str(doc, "kind")? {
                "rate" => SeriesKind::Rate {
                    last: req_u64(doc, "last")?,
                    deltas: ints(doc, "values")?,
                },
                "level" => SeriesKind::Level {
                    values: ints(doc, "values")?,
                },
                "dist" => SeriesKind::Dist {
                    current: Box::new(Histogram::restore(req(doc, "current")?)?),
                    windows: req_array(doc, "windows")?
                        .iter()
                        .map(Histogram::restore)
                        .collect::<Result<Vec<_>, String>>()?,
                },
                other => return Err(format!("unknown series kind {other:?}")),
            };
            series.push(Series { name, sm, kind });
        }
        Ok(MetricsRegistry {
            window: req_u64(v, "window")?.max(1),
            sealed: req_u64(v, "sealed")?,
            series,
        })
    }
}

/// Escapes a label value per the Prometheus text-format spec: backslash,
/// double quote and newline must be written as `\\`, `\"` and `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The `# HELP` text for a series name. A static lookup at exposition
/// time — deliberately not stored in the registry, whose snapshot format
/// is frozen into checkpoints.
fn series_help(name: &str) -> &'static str {
    match name {
        "warp_instrs" => "Warp instructions issued.",
        "thread_instrs" => "Thread instructions executed (warp instruction x active lanes).",
        "issue_cycles" => "SM-cycles in which at least one instruction issued.",
        "idle_no_warps" => "Idle SM-cycles with no resident warps (see cpi_empty_* for the split).",
        "idle_memory" => "Idle SM-cycles blocked on outstanding global-memory results.",
        "idle_pipeline" => "Idle SM-cycles blocked on short ALU/SFU scoreboard dependencies.",
        "idle_barrier" => "Idle SM-cycles with every unfinished warp waiting at a barrier.",
        "idle_swapping" => "Idle SM-cycles while active CTAs were mid context switch.",
        "idle_other" => "Idle SM-cycles from structural hazards or unclassified causes.",
        "swaps_in" => "CTAs switched in (activated from the swapped-out state).",
        "swaps_out" => "CTAs switched out.",
        "ctas_completed" => "CTAs completed.",
        "cpi_issued" => "CPI stack: SM-cycles with at least one issue.",
        "cpi_stalled" => "CPI stack: SM-cycles stalled with warps resident.",
        "cpi_empty" => "CPI stack: SM-cycles with no resident warps.",
        "cpi_empty_scheduling" => {
            "Empty SM-cycles starved by the scheduling limit (CTA/warp slots) with work left."
        }
        "cpi_empty_capacity" => {
            "Empty SM-cycles starved by the capacity limit (registers/shared memory) with work left."
        }
        "cpi_empty_drain" => "Empty SM-cycles after the grid was fully dispatched (drain).",
        "resident_warps" => "Resident warps at the window boundary.",
        "active_warps" => "Schedulable (active-phase) warps at the window boundary.",
        "resident_ctas" => "Resident CTAs at the window boundary.",
        "active_ctas" => "CTAs holding active slots at the window boundary.",
        "reg_bytes" => "Allocated register-file bytes at the window boundary.",
        "smem_bytes" => "Allocated shared-memory bytes at the window boundary.",
        "mshr_in_flight" => "MSHR entries in flight at the window boundary.",
        "partition_queue" => "Queued requests across memory partitions at the window boundary.",
        "sm_issue_balance" => "Per-window distribution of per-SM issued instructions.",
        _ => "Simulator metric series.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new(100);
        let r = m.rate("instrs", None);
        let l = m.level("warps", None);
        let d = m.dist("balance", None);
        let p = m.rate("instrs", Some(3));
        for (total, lvl) in [(10u64, 4u64), (25, 6), (25, 0)] {
            let delta = m.sample_total(r, total);
            m.sample_level(l, lvl);
            m.observe(d, delta);
            m.sample_total(p, total / 2);
            m.seal();
        }
        m
    }

    #[test]
    fn rates_store_deltas_and_baseline() {
        let m = sample_registry();
        assert_eq!(m.windows(), 3);
        let s = m.get("instrs", None).unwrap();
        assert_eq!(s.values(), &[10, 15, 0]);
        assert_eq!(s.total(), 25);
        assert_eq!(s.max(), 15);
        assert!((s.mean() - 25.0 / 3.0).abs() < 1e-12);
        let p = m.get("instrs", Some(3)).unwrap();
        assert_eq!(p.values(), &[5, 7, 0]);
        assert!(m.get("instrs", Some(9)).is_none());
    }

    #[test]
    fn levels_and_dists_record_per_window() {
        let m = sample_registry();
        let l = m.get("warps", None).unwrap();
        assert_eq!(l.values(), &[4, 6, 0]);
        assert_eq!(l.total(), 0, "level total is the latest sample");
        let d = m.get("balance", None).unwrap();
        assert_eq!(d.histograms().len(), 3);
        assert_eq!(d.histograms()[1].count, 1);
        assert_eq!(d.histograms()[1].sum, 15);
        assert!(d.values().is_empty());
    }

    #[test]
    fn snapshot_roundtrips_mid_window() {
        let mut m = sample_registry();
        // Leave state mid-window: a pending dist observation and advanced
        // rate baselines must survive the round trip.
        let d = SeriesId(2);
        m.observe(d, 42);
        let text = m.snapshot().compact();
        let back = MetricsRegistry::restore(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn prometheus_exposition_is_shaped() {
        let m = sample_registry();
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE vt_instrs counter"));
        assert!(text.contains("# HELP vt_instrs "));
        assert!(text.contains("vt_instrs_total 25"));
        assert!(text.contains("vt_instrs_total{sm=\"3\"} 12"));
        assert!(text.contains("# TYPE vt_warps gauge"));
        assert!(text.contains("vt_warps 0"));
        assert!(text.contains("# TYPE vt_balance histogram"));
        assert!(text.contains("vt_balance_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("vt_balance_sum 25"));
        assert!(text.contains("vt_metrics_window_cycles 100"));
        // The HELP/TYPE lines for a name shared by aggregate + per-SM
        // series appear exactly once, HELP immediately before TYPE.
        assert_eq!(text.matches("# TYPE vt_instrs counter").count(), 1);
        assert_eq!(text.matches("# HELP vt_instrs ").count(), 1);
        let help_at = text.find("# HELP vt_instrs ").unwrap();
        let type_at = text.find("# TYPE vt_instrs ").unwrap();
        assert!(help_at < type_at);
        // Every series name carries HELP text.
        for known in ["warp_instrs", "cpi_empty_scheduling", "sm_issue_balance"] {
            assert_ne!(super::series_help(known), "Simulator metric series.");
        }
    }

    #[test]
    fn label_values_escape_per_spec() {
        assert_eq!(super::escape_label_value("plain"), "plain");
        assert_eq!(super::escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn json_export_carries_values() {
        let m = sample_registry();
        let j = m.to_json();
        assert_eq!(j.get("window").and_then(Json::as_u64), Some(100));
        let series = j.get("series").unwrap();
        let Json::Array(items) = series else {
            panic!("series is an array")
        };
        assert_eq!(items.len(), 4);
    }
}
