//! Trace sinks: where instrumented code sends its events.
//!
//! Instrumentation sites are generic over [`TraceSink`] and guard every
//! emission with `if S::ENABLED { ... }`. Because `ENABLED` is an
//! associated *constant*, the branch folds at monomorphization time: the
//! [`NullSink`] instantiation compiles to exactly the un-instrumented
//! code, so the default simulation path pays nothing for the hooks.

use crate::event::{TimedEvent, TraceEvent};
use std::collections::VecDeque;

/// A consumer of timed trace events.
pub trait TraceSink {
    /// Whether this sink observes events at all. Call sites must guard
    /// emissions with `if S::ENABLED`, letting the compiler delete the
    /// whole instrumentation block for disabled sinks.
    const ENABLED: bool;

    /// Record `ev` as having occurred at cycle `t`.
    fn emit(&mut self, t: u64, ev: TraceEvent);
}

/// The zero-overhead disabled sink. `ENABLED == false`, and `emit` is an
/// inlined no-op, so guarded call sites monomorphize to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _t: u64, _ev: TraceEvent) {}
}

/// A bounded in-memory ring buffer. When full, the *oldest* events are
/// dropped (the tail of a run is usually the interesting part) and a drop
/// counter records how many were lost so exporters can refuse to present
/// a silently truncated trace as complete.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    buf: VecDeque<TimedEvent>,
    cap: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a sink holding at most `cap` events (`cap == 0` drops
    /// everything).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            buf: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TimedEvent> {
        &self.buf
    }

    /// Consumes the sink, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.buf.into()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    const ENABLED: bool = true;

    fn emit(&mut self, t: u64, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent { t, ev });
    }
}

/// An unbounded sink appending into a borrowed `Vec`. Used by the
/// parallel engine to buffer each SM's events privately during the
/// concurrent phase, then flush them into the real sink in a fixed order
/// so traces stay deterministic.
#[derive(Debug)]
pub struct BufSink<'a>(pub &'a mut Vec<TimedEvent>);

impl TraceSink for BufSink<'_> {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, t: u64, ev: TraceEvent) {
        self.0.push(TimedEvent { t, ev });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(pc: u32) -> TraceEvent {
        TraceEvent::WarpIssue {
            sm: 0,
            sched: 0,
            warp_slot: 0,
            pc,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        fn enabled<S: TraceSink>(_: &S) -> bool {
            S::ENABLED
        }
        let mut s = NullSink;
        assert!(!enabled(&s));
        s.emit(0, issue(0));
    }

    #[test]
    fn ring_sink_retains_in_order() {
        let mut s = RingSink::new(8);
        for pc in 0..5 {
            s.emit(pc as u64, issue(pc));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.dropped(), 0);
        let ts: Vec<u64> = s.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_sink_drops_oldest_when_full() {
        let mut s = RingSink::new(3);
        for pc in 0..5 {
            s.emit(pc as u64, issue(pc));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ts: Vec<u64> = s.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn buf_sink_appends_to_borrowed_vec() {
        let mut events = Vec::new();
        {
            let mut s = BufSink(&mut events);
            s.emit(3, issue(1));
            s.emit(4, issue(2));
        }
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t, 3);
        assert_eq!(events[1].t, 4);
    }

    #[test]
    fn zero_capacity_counts_every_drop() {
        let mut s = RingSink::new(0);
        s.emit(1, issue(1));
        s.emit(2, issue(2));
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 2);
    }
}
