//! Chrome Trace Event Format export.
//!
//! Converts a timed event stream into the JSON array format understood by
//! Perfetto and `about://tracing`. The mapping:
//!
//! - each **SM is a process** (`pid = sm + 1`);
//! - each **CTA slot is a thread** (`tid = 1 + cta_slot`) carrying nested
//!   `B`/`E` spans: `cta<N>` (residency) containing `swap-in`/`swap-out`
//!   transfers and `active` execution windows;
//! - each **warp slot is a thread** (`tid = 1000 + warp_slot`) carrying
//!   `barrier-wait` spans and instruction-issue instants;
//! - **memory requests are async spans** (`b`/`n`/`e`, category `mem`,
//!   `id` = request id) so their lifetime renders as one arrow-connected
//!   track regardless of which unit is currently servicing them;
//! - sampled counters become `C` events.
//!
//! Timestamps are raw cycles passed through as microseconds; Perfetto's
//! absolute time unit is irrelevant for a cycle-level simulator, and 1:1
//! keeps the UI's numbers readable as cycles.

use crate::event::{MemKind, SwapDir, TimedEvent, TraceEvent};
use crate::metrics::{MetricsRegistry, SeriesKind};
use std::collections::BTreeSet;
use vt_json::Json;

/// The pid hosting whole-GPU metric counter tracks (SMs are `sm + 1`).
const METRICS_PID: u32 = 0;

const WARP_TID_BASE: u32 = 1000;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn meta(pid: u32, tid: Option<u32>, which: &str, name: String) -> Json {
    let mut fields = vec![
        ("name", Json::Str(which.to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::UInt(u64::from(pid))),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Json::UInt(u64::from(tid))));
    }
    fields.push(("args", obj(vec![("name", Json::Str(name))])));
    obj(fields)
}

fn span(ph: &str, name: &str, t: u64, pid: u32, tid: u32, args: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str(ph.to_string())),
        ("ts", Json::UInt(t)),
        ("pid", Json::UInt(u64::from(pid))),
        ("tid", Json::UInt(u64::from(tid))),
    ];
    if !args.is_empty() {
        fields.push(("args", obj(args)));
    }
    obj(fields)
}

fn async_ev(ph: &str, name: &str, t: u64, pid: u32, id: u64, args: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("cat", Json::Str("mem".to_string())),
        ("ph", Json::Str(ph.to_string())),
        ("ts", Json::UInt(t)),
        ("pid", Json::UInt(u64::from(pid))),
        ("tid", Json::UInt(0)),
        ("id", Json::Str(format!("{id:#x}"))),
    ];
    if !args.is_empty() {
        fields.push(("args", obj(args)));
    }
    obj(fields)
}

fn instant(name: &str, t: u64, pid: u32, tid: u32, args: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("i".to_string())),
        ("s", Json::Str("t".to_string())),
        ("ts", Json::UInt(t)),
        ("pid", Json::UInt(u64::from(pid))),
        ("tid", Json::UInt(u64::from(tid))),
    ];
    if !args.is_empty() {
        fields.push(("args", obj(args)));
    }
    obj(fields)
}

fn counter(name: &str, t: u64, pid: u32, value: u64) -> Json {
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("C".to_string())),
        ("ts", Json::UInt(t)),
        ("pid", Json::UInt(u64::from(pid))),
        ("args", obj(vec![("value", Json::UInt(value))])),
    ])
}

fn kind_name(kind: MemKind) -> &'static str {
    match kind {
        MemKind::Load => "load",
        MemKind::Store => "store",
        MemKind::Atomic => "atomic",
    }
}

/// Converts events to a Chrome-trace JSON document
/// (`{"traceEvents": [...]}`), ready to write to a `.trace.json` file and
/// open in Perfetto.
pub fn to_chrome_json(events: &[TimedEvent]) -> Json {
    to_chrome_json_with(events, None)
}

/// [`to_chrome_json`] plus windowed metric series rendered as Perfetto
/// counter tracks, so timelines and events inspect in one view.
/// Whole-GPU series live under a dedicated `metrics` process
/// (`pid = 0`), per-SM series under their SM's process; each sealed
/// window contributes one `C` sample at its closing cycle. Distribution
/// series have no counter representation and are skipped.
pub fn to_chrome_json_with(events: &[TimedEvent], metrics: Option<&MetricsRegistry>) -> Json {
    // First pass: discover which (pid, tid) tracks exist so metadata rows
    // can name them up front.
    let mut sms: BTreeSet<u32> = BTreeSet::new();
    let mut cta_tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut warp_tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in events {
        match e.ev {
            TraceEvent::CtaLaunch { sm, cta_slot, .. }
            | TraceEvent::SwapBegin { sm, cta_slot, .. }
            | TraceEvent::SwapEnd { sm, cta_slot, .. }
            | TraceEvent::CtaActivate { sm, cta_slot, .. }
            | TraceEvent::CtaDeactivate { sm, cta_slot, .. }
            | TraceEvent::CtaComplete { sm, cta_slot, .. } => {
                sms.insert(sm);
                cta_tracks.insert((sm, cta_slot));
            }
            TraceEvent::WarpIssue { sm, warp_slot, .. }
            | TraceEvent::BarrierArrive { sm, warp_slot, .. }
            | TraceEvent::BarrierRelease { sm, warp_slot, .. }
            | TraceEvent::Coalesce { sm, warp_slot, .. } => {
                sms.insert(sm);
                warp_tracks.insert((sm, warp_slot));
            }
            TraceEvent::MemBegin { sm, .. }
            | TraceEvent::MemAt { sm, .. }
            | TraceEvent::MemEnd { sm, .. }
            | TraceEvent::StoreSubmit { sm, .. }
            | TraceEvent::Counter { sm, .. } => {
                sms.insert(sm);
            }
        }
    }

    let mut rows: Vec<Json> = Vec::with_capacity(events.len() + sms.len());
    for &sm in &sms {
        rows.push(meta(sm + 1, None, "process_name", format!("SM{sm}")));
    }
    for &(sm, slot) in &cta_tracks {
        rows.push(meta(
            sm + 1,
            Some(1 + slot),
            "thread_name",
            format!("cta-slot {slot}"),
        ));
    }
    for &(sm, slot) in &warp_tracks {
        rows.push(meta(
            sm + 1,
            Some(WARP_TID_BASE + slot),
            "thread_name",
            format!("warp {slot}"),
        ));
    }

    for e in events {
        let t = e.t;
        match e.ev {
            TraceEvent::CtaLaunch {
                sm,
                cta_slot,
                cta_id,
            } => rows.push(span(
                "B",
                &format!("cta{cta_id}"),
                t,
                sm + 1,
                1 + cta_slot,
                vec![("cta", Json::UInt(u64::from(cta_id)))],
            )),
            TraceEvent::SwapBegin {
                sm,
                cta_slot,
                dir,
                fresh,
                ..
            } => {
                let name = if fresh && dir == SwapDir::In {
                    "fresh-init"
                } else {
                    dir.label()
                };
                rows.push(span("B", name, t, sm + 1, 1 + cta_slot, vec![]));
            }
            TraceEvent::SwapEnd {
                sm, cta_slot, dir, ..
            } => {
                // `E` matches the innermost open `B` by position; the name
                // is informational, so the fresh/restore split is fine.
                let _ = dir;
                rows.push(span("E", "", t, sm + 1, 1 + cta_slot, vec![]));
            }
            TraceEvent::CtaActivate { sm, cta_slot, .. } => {
                rows.push(span("B", "active", t, sm + 1, 1 + cta_slot, vec![]));
            }
            TraceEvent::CtaDeactivate { sm, cta_slot, .. } => {
                rows.push(span("E", "", t, sm + 1, 1 + cta_slot, vec![]));
            }
            TraceEvent::CtaComplete { sm, cta_slot, .. } => {
                rows.push(span("E", "", t, sm + 1, 1 + cta_slot, vec![]));
            }
            TraceEvent::WarpIssue {
                sm,
                sched,
                warp_slot,
                pc,
            } => rows.push(instant(
                "issue",
                t,
                sm + 1,
                WARP_TID_BASE + warp_slot,
                vec![
                    ("pc", Json::UInt(u64::from(pc))),
                    ("sched", Json::UInt(u64::from(sched))),
                ],
            )),
            TraceEvent::BarrierArrive { sm, warp_slot, .. } => {
                rows.push(span(
                    "B",
                    "barrier-wait",
                    t,
                    sm + 1,
                    WARP_TID_BASE + warp_slot,
                    vec![],
                ));
            }
            TraceEvent::BarrierRelease { sm, warp_slot, .. } => {
                rows.push(span("E", "", t, sm + 1, WARP_TID_BASE + warp_slot, vec![]));
            }
            TraceEvent::Coalesce {
                sm,
                warp_slot,
                kind,
                lines,
            } => rows.push(instant(
                "coalesce",
                t,
                sm + 1,
                WARP_TID_BASE + warp_slot,
                vec![
                    ("kind", Json::Str(kind_name(kind).to_string())),
                    ("lines", Json::UInt(u64::from(lines))),
                ],
            )),
            TraceEvent::MemBegin {
                sm,
                req,
                line_addr,
                kind,
                level,
            } => rows.push(async_ev(
                "b",
                kind_name(kind),
                t,
                sm + 1,
                req,
                vec![
                    ("line", Json::Str(format!("{line_addr:#x}"))),
                    ("at", Json::Str(level.label().to_string())),
                ],
            )),
            TraceEvent::MemAt { sm, req, level } => {
                rows.push(async_ev("n", level.label(), t, sm + 1, req, vec![]))
            }
            TraceEvent::MemEnd { sm, req } => {
                rows.push(async_ev("e", "done", t, sm + 1, req, vec![]));
            }
            TraceEvent::StoreSubmit { sm, line_addr } => rows.push(instant(
                "store",
                t,
                sm + 1,
                1,
                vec![("line", Json::Str(format!("{line_addr:#x}")))],
            )),
            TraceEvent::Counter { sm, name, value } => {
                rows.push(counter(name, t, sm + 1, value));
            }
        }
    }

    if let Some(m) = metrics {
        if m.series().iter().any(|s| s.sm.is_none()) {
            rows.push(meta(METRICS_PID, None, "process_name", "metrics".into()));
        }
        let window = m.window();
        for s in m.series() {
            if matches!(s.kind, SeriesKind::Dist { .. }) {
                continue;
            }
            let pid = match s.sm {
                Some(sm) => sm + 1,
                None => METRICS_PID,
            };
            let name = format!("vt_{}", s.name);
            for (k, &v) in s.values().iter().enumerate() {
                rows.push(counter(&name, (k as u64 + 1) * window, pid, v));
            }
        }
    }

    obj(vec![("traceEvents", Json::Array(rows))])
}

/// Builds a standalone Chrome-trace document of counter tracks: every
/// named series becomes one `C` track under a single process called
/// `process`, with one sample per `(timestamp, value)` pair. Used for
/// profile views whose x-axis is not time (e.g. `vtprof --flame`
/// renders per-PC counters with the program counter as the timestamp).
pub fn counters_to_chrome_json(process: &str, tracks: &[(String, Vec<(u64, u64)>)]) -> Json {
    let mut rows = vec![meta(METRICS_PID, None, "process_name", process.to_string())];
    for (name, samples) in tracks {
        for &(t, v) in samples {
            rows.push(counter(name, t, METRICS_PID, v));
        }
    }
    obj(vec![("traceEvents", Json::Array(rows))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, ev: TraceEvent) -> TimedEvent {
        TimedEvent { t, ev }
    }

    #[test]
    fn emits_metadata_for_every_track() {
        let events = vec![
            ev(
                0,
                TraceEvent::CtaLaunch {
                    sm: 2,
                    cta_slot: 3,
                    cta_id: 7,
                },
            ),
            ev(
                1,
                TraceEvent::WarpIssue {
                    sm: 2,
                    sched: 0,
                    warp_slot: 5,
                    pc: 0,
                },
            ),
        ];
        let json = to_chrome_json(&events).compact();
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""process_name""#));
        assert!(json.contains(r#""SM2""#));
        assert!(json.contains(r#""cta-slot 3""#));
        assert!(json.contains(r#""warp 5""#));
        assert!(json.contains(r#""pid":3"#), "pid = sm + 1");
        assert!(json.contains(r#""tid":1005"#), "warp tid offset");
    }

    #[test]
    fn memory_requests_render_as_async_spans() {
        let events = vec![
            ev(
                5,
                TraceEvent::MemBegin {
                    sm: 0,
                    req: 0xab,
                    line_addr: 0x1000,
                    kind: MemKind::Load,
                    level: crate::event::MemLevel::L1Miss,
                },
            ),
            ev(
                9,
                TraceEvent::MemAt {
                    sm: 0,
                    req: 0xab,
                    level: crate::event::MemLevel::L2Hit,
                },
            ),
            ev(20, TraceEvent::MemEnd { sm: 0, req: 0xab }),
        ];
        let json = to_chrome_json(&events).compact();
        assert!(json.contains(r#""ph":"b""#));
        assert!(json.contains(r#""ph":"n""#));
        assert!(json.contains(r#""ph":"e""#));
        assert!(json.contains(r#""id":"0xab""#));
        assert!(json.contains(r#""cat":"mem""#));
        assert!(json.contains(r#""l2-hit""#));
    }

    #[test]
    fn metric_series_render_as_counter_tracks() {
        let mut m = MetricsRegistry::new(64);
        let agg = m.rate("thread_instrs", None);
        let per = m.level("resident_warps", Some(2));
        let d = m.dist("sm_issue_balance", None);
        for total in [100u64, 250] {
            m.sample_total(agg, total);
            m.sample_level(per, 7);
            m.observe(d, 1);
            m.seal();
        }
        let json = to_chrome_json_with(&[], Some(&m)).compact();
        assert!(json.contains(r#""metrics""#), "metrics process named");
        assert!(json.contains(r#""vt_thread_instrs""#));
        // Window 2 closes at cycle 128 and carries the delta 150.
        assert!(json.contains(r#""ts":128"#));
        assert!(json.contains(r#""value":150"#));
        // Per-SM series land in their SM's process (pid = sm + 1).
        assert!(json.contains(r#""vt_resident_warps""#));
        assert!(json.contains(r#""pid":3"#));
        // Distributions are skipped.
        assert!(!json.contains("sm_issue_balance"));
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![
            ev(
                0,
                TraceEvent::Counter {
                    sm: 1,
                    name: "l1_mshr",
                    value: 4,
                },
            ),
            ev(
                3,
                TraceEvent::StoreSubmit {
                    sm: 1,
                    line_addr: 0x40,
                },
            ),
        ];
        assert_eq!(
            to_chrome_json(&events).pretty(),
            to_chrome_json(&events).pretty()
        );
    }

    #[test]
    fn standalone_counter_tracks_render() {
        let tracks = vec![
            ("issued".to_string(), vec![(0, 5), (1, 9)]),
            ("stall_memory".to_string(), vec![(1, 40)]),
        ];
        let json = counters_to_chrome_json("pc-profile", &tracks).compact();
        assert!(json.contains(r#""pc-profile""#), "process named");
        assert!(json.contains(r#""issued""#));
        assert!(json.contains(r#""stall_memory""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""value":40"#));
    }
}
