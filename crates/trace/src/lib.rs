//! # vt-trace — the simulator's observability layer
//!
//! Aggregate counters (`RunStats`) answer *how much*; this crate answers
//! *when* and *why*. It provides:
//!
//! - an [`event::TraceEvent`] model covering warp issue, the CTA
//!   lifecycle (launch → activate → swap-out → swap-in → complete),
//!   the memory-request lifecycle (coalesce → L1 → MSHR → interconnect →
//!   partition → return), and barrier arrive/release;
//! - [`sink::TraceSink`] with a zero-overhead [`sink::NullSink`] (the
//!   `const ENABLED` guard monomorphizes instrumentation away entirely —
//!   the default simulation path is byte-for-byte the uninstrumented one)
//!   and a bounded [`sink::RingSink`];
//! - [`chrome::to_chrome_json`], an exporter to the Chrome Trace Event
//!   Format (open the `.trace.json` in [Perfetto](https://ui.perfetto.dev)
//!   or `about://tracing`; SMs render as processes, CTA slots and warps
//!   as threads, memory requests as async spans);
//! - [`validate::validate`], the structural checker behind
//!   `vtprof --check` (monotonic time, balanced spans, every memory
//!   request closed);
//! - [`hist::Histogram`] / [`hist::Gauge`], the log2-bucketed latency
//!   and occupancy aggregates folded into `RunStats`/`MemStats`;
//! - [`metrics::MetricsRegistry`], cycle-windowed time series (rates,
//!   levels, per-window distributions) sampled by the engine, exported
//!   to Prometheus text and vt-json, and cross-checked against the event
//!   stream by [`validate::validate_metrics`].
//!
//! This crate is a leaf: it depends only on `vt-json`, so `vt-mem` and
//! `vt-sim` can hook into it without cycles.
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod hist;
pub mod metrics;
pub mod sink;
pub mod validate;

pub use chrome::{counters_to_chrome_json, to_chrome_json, to_chrome_json_with};
pub use event::{MemKind, MemLevel, SwapDir, TimedEvent, TraceEvent};
pub use hist::{Gauge, Histogram};
pub use metrics::{MetricsRegistry, Series, SeriesId, SeriesKind, DEFAULT_WINDOW};
pub use sink::{BufSink, NullSink, RingSink, TraceSink};
pub use validate::{validate, validate_metrics, TraceReport};
