//! The trace event model.
//!
//! Events are small, copyable records stamped with the cycle they occurred
//! at. They mirror the simulator's observable state transitions without
//! depending on any simulator crate: `vt-mem` and `vt-sim` depend on this
//! crate, not the other way round, so the enums here re-state the few
//! shared vocabularies (request kind, swap direction) locally.

/// Kind of a global-memory request, as seen below the LD/ST unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// A load; a response returns to the SM.
    Load,
    /// A fire-and-forget store (no span — see [`TraceEvent::StoreSubmit`]).
    Store,
    /// An atomic, performed at the L2; a response returns to the SM.
    Atomic,
}

impl MemKind {
    /// Short lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            MemKind::Load => "load",
            MemKind::Store => "store",
            MemKind::Atomic => "atomic",
        }
    }
}

/// Direction of a CTA context transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDir {
    /// Restore (or fresh initialisation) into an active slot.
    In,
    /// Save out to the context buffer.
    Out,
}

impl SwapDir {
    /// Span name used in exports and validation.
    pub fn label(self) -> &'static str {
        match self {
            SwapDir::In => "swap-in",
            SwapDir::Out => "swap-out",
        }
    }
}

/// Where in the hierarchy a memory request made progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Served by the L1D (short latency).
    L1Hit,
    /// Missed the L1D; a fresh MSHR line was allocated.
    L1Miss,
    /// Merged onto an in-flight L1 MSHR line.
    L1MshrMerge,
    /// Bypassed the L1D (atomics execute at the L2).
    L1Bypass,
    /// Arrived at its memory partition off the interconnect.
    PartitionArrive,
    /// Served by the L2 slice.
    L2Hit,
    /// Missed the L2; sent to DRAM.
    L2Miss,
    /// Merged onto an in-flight L2 MSHR line.
    L2MshrMerge,
    /// The DRAM fill for its line completed.
    DramFill,
    /// The response filled the L1 / reached the SM's response queue.
    L1Fill,
}

impl MemLevel {
    /// Short label for exports.
    pub fn label(self) -> &'static str {
        match self {
            MemLevel::L1Hit => "l1-hit",
            MemLevel::L1Miss => "l1-miss",
            MemLevel::L1MshrMerge => "l1-mshr-merge",
            MemLevel::L1Bypass => "l1-bypass",
            MemLevel::PartitionArrive => "partition-arrive",
            MemLevel::L2Hit => "l2-hit",
            MemLevel::L2Miss => "l2-miss",
            MemLevel::L2MshrMerge => "l2-mshr-merge",
            MemLevel::DramFill => "dram-fill",
            MemLevel::L1Fill => "l1-fill",
        }
    }
}

/// One simulator event. Each variant corresponds to a state transition
/// observable at a specific cycle; begin/end pairs form spans that the
/// validator checks and the Chrome exporter renders as nested slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A CTA became resident on an SM (span opens on its CTA-slot track).
    CtaLaunch {
        /// SM index.
        sm: u32,
        /// CTA slot within the SM.
        cta_slot: u32,
        /// CTA index within the kernel grid.
        cta_id: u32,
    },
    /// A context transfer began: a restore/fresh-init (`dir == In`) or a
    /// save to the context buffer (`dir == Out`).
    SwapBegin {
        /// SM index.
        sm: u32,
        /// CTA slot within the SM.
        cta_slot: u32,
        /// CTA index within the kernel grid.
        cta_id: u32,
        /// Transfer direction.
        dir: SwapDir,
        /// For `dir == In`: a fresh activation (no saved context) rather
        /// than a restore.
        fresh: bool,
    },
    /// The context transfer opened by the matching [`TraceEvent::SwapBegin`]
    /// completed.
    SwapEnd {
        /// SM index.
        sm: u32,
        /// CTA slot within the SM.
        cta_slot: u32,
        /// CTA index within the kernel grid.
        cta_id: u32,
        /// Transfer direction.
        dir: SwapDir,
    },
    /// The CTA entered the `Active` phase (its warps may issue).
    CtaActivate {
        /// SM index.
        sm: u32,
        /// CTA slot within the SM.
        cta_slot: u32,
        /// CTA index within the kernel grid.
        cta_id: u32,
    },
    /// The CTA left the `Active` phase (swap-out started or CTA finished).
    CtaDeactivate {
        /// SM index.
        sm: u32,
        /// CTA slot within the SM.
        cta_slot: u32,
        /// CTA index within the kernel grid.
        cta_id: u32,
    },
    /// All warps exited; the resident span closes and the slot is free.
    CtaComplete {
        /// SM index.
        sm: u32,
        /// CTA slot within the SM.
        cta_slot: u32,
        /// CTA index within the kernel grid.
        cta_id: u32,
    },
    /// Scheduler `sched` issued the instruction at `pc` from warp
    /// `warp_slot` — one record per issued warp instruction.
    WarpIssue {
        /// SM index.
        sm: u32,
        /// Scheduler index within the SM.
        sched: u32,
        /// Warp slot within the SM.
        warp_slot: u32,
        /// Program counter of the issued instruction.
        pc: u32,
    },
    /// A warp arrived at its CTA barrier (wait span opens on the warp's
    /// track).
    BarrierArrive {
        /// SM index.
        sm: u32,
        /// CTA slot of the barrier.
        cta_slot: u32,
        /// Arriving warp's slot.
        warp_slot: u32,
    },
    /// The barrier released this warp (wait span closes).
    BarrierRelease {
        /// SM index.
        sm: u32,
        /// CTA slot of the barrier.
        cta_slot: u32,
        /// Released warp's slot.
        warp_slot: u32,
    },
    /// The coalescer broke one warp global-memory instruction into `lines`
    /// transactions.
    Coalesce {
        /// SM index.
        sm: u32,
        /// Issuing warp's slot.
        warp_slot: u32,
        /// Access kind.
        kind: MemKind,
        /// Coalesced transaction count.
        lines: u32,
    },
    /// A load/atomic transaction was accepted at the L1 (request span
    /// opens). `level` records the L1 outcome.
    MemBegin {
        /// Originating SM.
        sm: u32,
        /// Request id (unique per transaction).
        req: u64,
        /// Cache-line address.
        line_addr: u64,
        /// Request kind.
        kind: MemKind,
        /// L1 outcome at acceptance.
        level: MemLevel,
    },
    /// An open request made progress at `level`.
    MemAt {
        /// Originating SM.
        sm: u32,
        /// Request id.
        req: u64,
        /// Progress point.
        level: MemLevel,
    },
    /// The SM's LD/ST unit popped the response (request span closes).
    MemEnd {
        /// Originating SM.
        sm: u32,
        /// Request id.
        req: u64,
    },
    /// A fire-and-forget store was accepted at the L1 (instant; stores get
    /// no response, hence no span).
    StoreSubmit {
        /// Originating SM.
        sm: u32,
        /// Cache-line address.
        line_addr: u64,
    },
    /// A sampled counter (MSHR occupancy, LD/ST queue depth, …).
    Counter {
        /// SM index the counter belongs to.
        sm: u32,
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
}

/// An event stamped with the cycle it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Cycle of occurrence.
    pub t: u64,
    /// The event.
    pub ev: TraceEvent,
}
