//! Aggregate metrics that complement the event stream: log2-bucketed
//! latency histograms and sampled gauges. Both are tiny fixed-size value
//! types so they can live inside `RunStats`/`MemStats` and keep those
//! structs `Default + PartialEq + Eq` (the determinism tests compare whole
//! stats structs for equality). Both round-trip through `vt_json` for the
//! checkpoint/resume layer.

use vt_json::{req_array, req_u64, Json};

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds values `v` with `floor(log2(v)) == i - 1`, i.e.
/// bucket 0 is exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, bucket 3
/// is `4..=7`, … and the last bucket absorbs everything from `2^30` up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; Histogram::BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Number of buckets: zero, then one per power of two up to `2^30+`.
    pub const BUCKETS: usize = 32;

    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(Histogram::BUCKETS - 1)
        }
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile `p` in `[0, 100]`: the lower bound of the
    /// bucket containing the `p`-th sample. Exact for the distributional
    /// questions the histogram is for ("is p99 in the thousands?"), within
    /// a factor of two otherwise.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_lo(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes every field for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            (
                "buckets".into(),
                Json::Array(self.buckets.iter().map(|&b| Json::UInt(b)).collect()),
            ),
            ("count".into(), Json::UInt(self.count)),
            ("sum".into(), Json::UInt(self.sum)),
            ("min".into(), Json::UInt(self.min)),
            ("max".into(), Json::UInt(self.max)),
        ])
    }

    /// Rebuilds a histogram from [`Histogram::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields or a bucket-count mismatch.
    pub fn restore(v: &Json) -> Result<Histogram, String> {
        let raw = req_array(v, "buckets")?;
        if raw.len() != Histogram::BUCKETS {
            return Err(format!(
                "expected {} buckets, got {}",
                Histogram::BUCKETS,
                raw.len()
            ));
        }
        let mut buckets = [0u64; Histogram::BUCKETS];
        for (slot, item) in buckets.iter_mut().zip(raw) {
            *slot = item
                .as_u64()
                .ok_or_else(|| "non-integer bucket".to_string())?;
        }
        Ok(Histogram {
            buckets,
            count: req_u64(v, "count")?,
            sum: req_u64(v, "sum")?,
            min: req_u64(v, "min")?,
            max: req_u64(v, "max")?,
        })
    }
}

/// A sampled gauge: tracks the mean and peak of a level that is polled
/// periodically (queue depth, MSHR occupancy) rather than event-driven.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Number of samples taken.
    pub samples: u64,
    /// Sum of sampled values.
    pub sum: u64,
    /// Largest sampled value.
    pub max: u64,
}

impl Gauge {
    /// Records one sample of the current level.
    pub fn sample(&mut self, v: u64) {
        self.samples += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean sampled level (0 when never sampled).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Folds another gauge into this one.
    pub fn merge(&mut self, other: &Gauge) {
        self.samples += other.samples;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Serializes every field for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("samples".into(), Json::UInt(self.samples)),
            ("sum".into(), Json::UInt(self.sum)),
            ("max".into(), Json::UInt(self.max)),
        ])
    }

    /// Rebuilds a gauge from [`Gauge::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields.
    pub fn restore(v: &Json) -> Result<Gauge, String> {
        Ok(Gauge {
            samples: req_u64(v, "samples")?,
            sum: req_u64(v, "sum")?,
            max: req_u64(v, "max")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_log2_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), Histogram::BUCKETS - 1);
        for i in 1..Histogram::BUCKETS - 1 {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(i)), i);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        assert!(h.is_empty());
        for v in [3, 0, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 110);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 27.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_bucket_accurate() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        // p50 must land in 10's bucket [8, 16); p100 lands in the max's
        // bucket (within a factor of two of the true value).
        let p50 = h.percentile(50.0);
        assert!((8..16).contains(&p50), "p50 = {p50}");
        let p100 = h.percentile(100.0);
        assert!((65_536..=100_000).contains(&p100), "p100 = {p100}");
        assert_eq!(Histogram::default().percentile(99.0), 0);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [1, 2, 3, 1000] {
            a.record(v);
            all.record(v);
        }
        for v in [0, 7, 500_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut h = Histogram::default();
        for v in [0, 3, 9_000_000_000] {
            h.record(v);
        }
        let text = h.snapshot().compact();
        let back = Histogram::restore(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        // Empty histogram keeps its u64::MAX min through the text form.
        let empty =
            Histogram::restore(&Json::parse(&Histogram::default().snapshot().compact()).unwrap())
                .unwrap();
        assert_eq!(empty, Histogram::default());

        let mut g = Gauge::default();
        g.sample(7);
        let back = Gauge::restore(&Json::parse(&g.snapshot().compact()).unwrap()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn gauge_tracks_mean_and_peak() {
        let mut g = Gauge::default();
        assert_eq!(g.mean(), 0.0);
        g.sample(4);
        g.sample(0);
        g.sample(8);
        assert_eq!(g.samples, 3);
        assert_eq!(g.max, 8);
        assert!((g.mean() - 4.0).abs() < 1e-9);
        let mut h = Gauge::default();
        h.sample(100);
        g.merge(&h);
        assert_eq!(g.samples, 4);
        assert_eq!(g.max, 100);
    }
}
