//! Property tests for the timing simulator: arbitrary residency
//! configurations preserve functional results, the scoreboard agrees
//! with a set model, and randomly-shaped kernels complete.

use proptest::prelude::*;
use std::collections::HashSet;
use vt_isa::interp::Interpreter;
use vt_isa::op::{Operand, Sreg};
use vt_isa::{Instr, Kernel, KernelBuilder, Reg};
use vt_sim::scoreboard::Scoreboard;
use vt_sim::{
    simulate, ActivePolicy, AdmissionPolicy, ResidencyConfig, SchedPolicy, SimConfig, SwapConfig,
    SwapTrigger,
};

proptest! {
    #[test]
    fn scoreboard_matches_set_model(
        ops in proptest::collection::vec((any::<bool>(), 0u16..256), 1..300),
    ) {
        let mut sb = Scoreboard::new();
        let mut model: HashSet<u16> = HashSet::new();
        for (set, reg) in ops {
            if set {
                sb.set_pending(Reg(reg));
                model.insert(reg);
            } else {
                sb.clear(Reg(reg));
                model.remove(&reg);
            }
            prop_assert_eq!(sb.pending_count() as usize, model.len());
            prop_assert_eq!(sb.is_pending(Reg(reg)), model.contains(&reg));
            // can_issue agrees with the model for an instruction reading
            // and writing this register.
            let i = Instr::Alu {
                op: vt_isa::AluOp::Add,
                dst: Reg(reg),
                a: Operand::Reg(Reg(reg)),
                b: Operand::Imm(1),
            };
            prop_assert_eq!(sb.can_issue(&i), !model.contains(&reg));
        }
    }
}

/// A small memory-heavy kernel with a barrier, parameterised by shape.
fn kernel(ctas: u32, threads: u32, regs: u16, smem: u32, iters: u32) -> Kernel {
    let n = ctas * threads;
    let mut b = KernelBuilder::new("prop");
    let data = b.alloc_global((n * 2) as usize);
    let out = b.alloc_global(n as usize);
    let gid = b.reg();
    let off = b.reg();
    let v = b.reg();
    let acc = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.mov(acc, Operand::Sreg(Sreg::Tid));
    b.for_range(i, Operand::Imm(0), Operand::Imm(iters), 1, |b, i| {
        b.mad(v, Operand::Reg(i), Operand::Imm(n), Operand::Reg(gid));
        b.rem(v, Operand::Reg(v), Operand::Imm(2 * n));
        b.shl(v, Operand::Reg(v), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(v), data as i32);
        b.add(acc, Operand::Reg(acc), Operand::Reg(v));
        b.st_global(Operand::Reg(off), data as i32, Operand::Reg(acc));
    });
    if smem > 0 {
        let buf = b.alloc_shared(1);
        b.st_shared(Operand::Imm(buf), 0, Operand::Reg(acc));
        b.bar();
        b.pad_smem(smem);
    }
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
    b.pad_regs(regs);
    b.build(ctas, threads).expect("valid property kernel")
}

fn residency_strategy() -> impl Strategy<Value = ResidencyConfig> {
    let admission = prop_oneof![
        Just(AdmissionPolicy::SchedulingAndCapacity),
        prop_oneof![Just(None), (9u32..48).prop_map(Some)]
            .prop_map(|cap| AdmissionPolicy::CapacityOnly { max_resident_ctas: cap }),
    ];
    let active = prop_oneof![Just(ActivePolicy::SchedulingLimit), Just(ActivePolicy::Unlimited)];
    let swap = proptest::option::of(
        (
            prop_oneof![
                Just(SwapTrigger::AllWarpsStalled),
                Just(SwapTrigger::AnyWarpStalled),
                Just(SwapTrigger::Never)
            ],
            0u32..120,
            0u32..120,
            0u32..8,
        )
            .prop_map(|(trigger, save, restore, fresh)| SwapConfig {
                trigger,
                save_cycles: save,
                restore_cycles: restore,
                fresh_activation_cycles: fresh,
                throttle: if fresh % 2 == 0 {
                    None
                } else {
                    Some(vt_sim::config::ThrottleConfig::default())
                },
            }),
    );
    (admission, active, swap).prop_map(|(admission, active, swap)| ResidencyConfig {
        admission,
        active,
        swap,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Whatever the residency policy — any admission rule, any activation
    /// rule, any swap costs and trigger — the functional result matches
    /// the interpreter and every CTA completes.
    #[test]
    fn any_residency_config_is_functionally_transparent(
        residency in residency_strategy(),
        sched in prop_oneof![Just(SchedPolicy::Lrr), Just(SchedPolicy::Gto)],
        threads in prop_oneof![Just(32u32), Just(48), Just(96)],
        ctas in 4u32..12,
        regs in 8u16..40,
        smem in prop_oneof![Just(0u32), Just(1024), Just(6 * 1024)],
    ) {
        let k = kernel(ctas, threads, regs, smem, 3);
        let mut cfg = SimConfig::default();
        cfg.core.num_sms = 2;
        cfg.core.scheduler = sched;
        cfg.residency = residency;
        let result = simulate(&cfg, &k).expect("simulation completes");
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        prop_assert_eq!(result.mem_image.as_words(), reference.mem().as_words());
        prop_assert_eq!(result.stats.ctas_completed, u64::from(ctas));
        prop_assert!(result.stats.idle.total() <= result.stats.occupancy.sm_cycles);
    }
}
