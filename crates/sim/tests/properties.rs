//! Randomized tests for the timing simulator: arbitrary residency
//! configurations preserve functional results, the scoreboard agrees
//! with a set model, and randomly-shaped kernels complete. Driven by the
//! deterministic [`vt_prng::Prng`] so runs are reproducible offline.

use std::collections::HashSet;
use vt_isa::interp::Interpreter;
use vt_isa::op::{Operand, Sreg};
use vt_isa::{Instr, Kernel, KernelBuilder, Reg};
use vt_prng::Prng;
use vt_sim::scoreboard::Scoreboard;
use vt_sim::{
    simulate, ActivePolicy, AdmissionPolicy, ResidencyConfig, SchedPolicy, SimConfig, SwapConfig,
    SwapTrigger,
};

#[test]
fn scoreboard_matches_set_model() {
    let mut r = Prng::new(0x5c0eb);
    for _ in 0..16 {
        let mut sb = Scoreboard::new();
        let mut model: HashSet<u16> = HashSet::new();
        for _ in 0..r.gen_range_usize(1..300) {
            let set = r.gen_bool(0.5);
            let reg = r.gen_range(0..256) as u16;
            if set {
                sb.set_pending(Reg(reg));
                model.insert(reg);
            } else {
                sb.clear(Reg(reg));
                model.remove(&reg);
            }
            assert_eq!(sb.pending_count() as usize, model.len());
            assert_eq!(sb.is_pending(Reg(reg)), model.contains(&reg));
            // can_issue agrees with the model for an instruction reading
            // and writing this register.
            let i = Instr::Alu {
                op: vt_isa::AluOp::Add,
                dst: Reg(reg),
                a: Operand::Reg(Reg(reg)),
                b: Operand::Imm(1),
            };
            assert_eq!(sb.can_issue(&i), !model.contains(&reg));
        }
    }
}

/// A small memory-heavy kernel with a barrier, parameterised by shape.
fn kernel(ctas: u32, threads: u32, regs: u16, smem: u32, iters: u32) -> Kernel {
    let n = ctas * threads;
    let mut b = KernelBuilder::new("prop");
    let data = b.alloc_global((n * 2) as usize);
    let out = b.alloc_global(n as usize);
    let gid = b.reg();
    let off = b.reg();
    let v = b.reg();
    let acc = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.mov(acc, Operand::Sreg(Sreg::Tid));
    b.for_range(i, Operand::Imm(0), Operand::Imm(iters), 1, |b, i| {
        b.mad(v, Operand::Reg(i), Operand::Imm(n), Operand::Reg(gid));
        b.rem(v, Operand::Reg(v), Operand::Imm(2 * n));
        b.shl(v, Operand::Reg(v), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(v), data as i32);
        b.add(acc, Operand::Reg(acc), Operand::Reg(v));
        b.st_global(Operand::Reg(off), data as i32, Operand::Reg(acc));
    });
    if smem > 0 {
        let buf = b.alloc_shared(1);
        b.st_shared(Operand::Imm(buf), 0, Operand::Reg(acc));
        b.bar();
        b.pad_smem(smem);
    }
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
    b.pad_regs(regs);
    b.build(ctas, threads).expect("valid property kernel")
}

fn gen_residency(r: &mut Prng) -> ResidencyConfig {
    let admission = if r.gen_bool(0.5) {
        AdmissionPolicy::SchedulingAndCapacity
    } else {
        let cap = if r.gen_bool(0.5) {
            None
        } else {
            Some(r.gen_range(9..48))
        };
        AdmissionPolicy::CapacityOnly {
            max_resident_ctas: cap,
        }
    };
    let active = if r.gen_bool(0.5) {
        ActivePolicy::SchedulingLimit
    } else {
        ActivePolicy::Unlimited
    };
    let swap = if r.gen_bool(0.5) {
        let fresh = r.gen_range(0..8);
        Some(SwapConfig {
            trigger: *r.choose(&[
                SwapTrigger::AllWarpsStalled,
                SwapTrigger::AnyWarpStalled,
                SwapTrigger::Never,
            ]),
            save_cycles: r.gen_range(0..120),
            restore_cycles: r.gen_range(0..120),
            fresh_activation_cycles: fresh,
            throttle: if fresh.is_multiple_of(2) {
                None
            } else {
                Some(vt_sim::config::ThrottleConfig::default())
            },
        })
    } else {
        None
    };
    ResidencyConfig {
        admission,
        active,
        swap,
    }
}

/// Whatever the residency policy — any admission rule, any activation
/// rule, any swap costs and trigger — the functional result matches
/// the interpreter and every CTA completes.
#[test]
fn any_residency_config_is_functionally_transparent() {
    let mut r = Prng::new(0xc0ffee);
    for case in 0..20 {
        let residency = gen_residency(&mut r);
        let sched = *r.choose(&[SchedPolicy::Lrr, SchedPolicy::Gto]);
        let threads = *r.choose(&[32u32, 48, 96]);
        let ctas = r.gen_range(4..12);
        let regs = r.gen_range(8..40) as u16;
        let smem = *r.choose(&[0u32, 1024, 6 * 1024]);
        let k = kernel(ctas, threads, regs, smem, 3);
        let mut cfg = SimConfig::default();
        cfg.core.num_sms = 2;
        cfg.core.scheduler = sched;
        cfg.residency = residency;
        let result = simulate(&cfg, &k).expect("simulation completes");
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(
            result.mem_image.as_words(),
            reference.mem().as_words(),
            "case {case}: {residency:?} {sched:?} {threads}x{ctas}"
        );
        assert_eq!(result.stats.ctas_completed, u64::from(ctas));
        assert!(result.stats.idle.total() <= result.stats.occupancy.sm_cycles);
    }
}
