//! White-box tests of the SM's CTA residency state machine: admission
//! accounting, activation order, the swap trigger, and slot bookkeeping,
//! driven cycle by cycle against a real memory system.

use vt_isa::kernel::MemImage;
use vt_isa::op::Operand;
use vt_isa::{Kernel, KernelBuilder};
use vt_mem::{MemConfig, MemSystem};
use vt_sim::config::{
    ActivePolicy, AdmissionPolicy, CoreConfig, ResidencyConfig, SwapConfig, SwapTrigger,
};
use vt_sim::sm::{EmptyAttr, Sm};
use vt_sim::stats::RunStats;

/// One-warp CTAs that immediately issue a (missing) global load, then a
/// dependent add — the canonical long-latency stall.
fn load_kernel(ctas: u32) -> Kernel {
    let mut b = KernelBuilder::new("stall");
    let data = b.alloc_global(65536);
    let gid = b.reg();
    let v = b.reg();
    b.global_thread_id(gid);
    b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
    b.ld_global(v, Operand::Reg(gid), data as i32);
    b.add(v, Operand::Reg(v), Operand::Imm(1));
    b.st_global(Operand::Reg(gid), data as i32, Operand::Reg(v));
    b.pad_regs(16);
    b.build(ctas, 32).unwrap()
}

fn vt_residency() -> ResidencyConfig {
    ResidencyConfig {
        admission: AdmissionPolicy::CapacityOnly {
            max_resident_ctas: None,
        },
        active: ActivePolicy::SchedulingLimit,
        swap: Some(SwapConfig {
            trigger: SwapTrigger::AllWarpsStalled,
            save_cycles: 2,
            restore_cycles: 2,
            fresh_activation_cycles: 0,
            throttle: None,
        }),
    }
}

struct Rig {
    sm: Sm,
    mem: MemSystem,
    image: MemImage,
    core: CoreConfig,
    res: ResidencyConfig,
    stats: RunStats,
    cycle: u64,
}

impl Rig {
    fn new(res: ResidencyConfig) -> Rig {
        let core = CoreConfig::default();
        let mem_cfg = MemConfig::default();
        Rig {
            sm: Sm::new(0, &core, mem_cfg.line_bytes),
            mem: MemSystem::new(&mem_cfg, 1),
            image: MemImage::zeroed(65536 / 4 * 4),
            core,
            res,
            stats: RunStats::default(),
            cycle: 0,
        }
    }

    fn tick(&mut self, kernel: &Kernel) {
        self.mem.tick(self.cycle);
        self.sm
            .tick(
                self.cycle,
                kernel,
                &self.core,
                &self.res,
                &mut self.mem,
                &mut self.image,
                &mut self.stats,
                EmptyAttr::drained(),
            )
            .expect("no traps");
        self.cycle += 1;
    }

    fn admit_while_possible(&mut self, kernel: &Kernel, limit: u32) -> u32 {
        let mut admitted = 0;
        while admitted < limit && self.sm.can_admit(kernel, &self.core, &self.res) {
            self.sm.admit(
                admitted,
                kernel,
                &self.core,
                &self.res,
                self.cycle,
                &mut self.stats,
            );
            admitted += 1;
        }
        admitted
    }
}

#[test]
fn baseline_admission_stops_at_cta_slots() {
    let k = load_kernel(64);
    let mut rig = Rig::new(ResidencyConfig::baseline());
    let admitted = rig.admit_while_possible(&k, 64);
    assert_eq!(admitted, rig.core.max_ctas_per_sm, "CTA slots bind");
    assert_eq!(rig.sm.resident_ctas(), 8);
    assert_eq!(
        rig.sm.slot_ctas(),
        8,
        "baseline activates everything admitted"
    );
}

#[test]
fn capacity_admission_goes_to_the_register_limit() {
    let k = load_kernel(64);
    let mut rig = Rig::new(vt_residency());
    let admitted = rig.admit_while_possible(&k, 128);
    // 32 threads x 16 regs x 4 B = 2 KiB per CTA; 128 KiB register file.
    assert_eq!(admitted, 64);
    assert_eq!(rig.sm.resident_ctas(), 64);
    assert_eq!(
        rig.sm.slot_ctas(),
        8,
        "active slots still respect the scheduling limit"
    );
}

#[test]
fn explicit_cap_bounds_admission() {
    let k = load_kernel(64);
    let mut rig = Rig::new(ResidencyConfig {
        admission: AdmissionPolicy::CapacityOnly {
            max_resident_ctas: Some(13),
        },
        ..vt_residency()
    });
    assert_eq!(rig.admit_while_possible(&k, 128), 13);
}

#[test]
fn unlimited_active_policy_activates_everything() {
    let k = load_kernel(64);
    let mut rig = Rig::new(ResidencyConfig {
        admission: AdmissionPolicy::CapacityOnly {
            max_resident_ctas: None,
        },
        active: ActivePolicy::Unlimited,
        swap: None,
    });
    rig.admit_while_possible(&k, 128);
    assert_eq!(rig.sm.slot_ctas(), 64, "ideal machine has no active limit");
}

#[test]
fn all_warps_stalled_trigger_swaps_against_ready_ctas() {
    let k = load_kernel(64);
    let mut rig = Rig::new(vt_residency());
    rig.admit_while_possible(&k, 128);
    // Run until the active CTAs have issued their loads and stalled; the
    // trigger must rotate parked fresh CTAs in.
    for _ in 0..200 {
        rig.tick(&k);
    }
    assert!(
        rig.stats.swaps.swaps_out > 0,
        "stalled CTAs must be switched out"
    );
    assert!(
        rig.stats.swaps.fresh_activations > 8,
        "parked CTAs took the slots"
    );
    assert!(rig.sm.slot_ctas() <= 8);
}

#[test]
fn never_trigger_blocks_rotation_until_completion() {
    let k = load_kernel(64);
    let mut rig = Rig::new(ResidencyConfig {
        swap: Some(SwapConfig {
            trigger: SwapTrigger::Never,
            save_cycles: 2,
            restore_cycles: 2,
            fresh_activation_cycles: 0,
            throttle: None,
        }),
        ..vt_residency()
    });
    rig.admit_while_possible(&k, 128);
    for _ in 0..300 {
        rig.tick(&k);
    }
    assert_eq!(rig.stats.swaps.swaps_out, 0, "never means never");
    // Activation still happens when CTAs finish.
    if rig.stats.ctas_completed > 0 {
        assert!(rig.stats.swaps.fresh_activations > 8);
    }
}

#[test]
fn throttle_settles_and_stays_functional() {
    let k = load_kernel(64);
    let mut rig = Rig::new(ResidencyConfig {
        swap: Some(SwapConfig {
            trigger: SwapTrigger::AllWarpsStalled,
            save_cycles: 2,
            restore_cycles: 2,
            fresh_activation_cycles: 0,
            throttle: Some(vt_sim::config::ThrottleConfig {
                window_cycles: 64,
                phase_windows: 2,
                probe_every_phases: 2,
            }),
        }),
        ..vt_residency()
    });
    rig.admit_while_possible(&k, 128);
    for _ in 0..50_000 {
        rig.tick(&k);
        if rig.sm.idle() && rig.mem.quiesced() {
            break;
        }
    }
    assert_eq!(
        rig.stats.ctas_completed, 64,
        "throttled runs still complete"
    );
    assert!(rig.sm.slot_ctas() == 0);
}

#[test]
fn resident_ctas_drain_to_zero() {
    let k = load_kernel(16);
    let mut rig = Rig::new(vt_residency());
    let admitted = rig.admit_while_possible(&k, 16);
    assert_eq!(admitted, 16);
    let mut done_at = None;
    for _ in 0..50_000 {
        rig.tick(&k);
        if rig.sm.idle() && rig.mem.quiesced() {
            done_at = Some(rig.cycle);
            break;
        }
    }
    assert!(done_at.is_some(), "SM drained");
    assert_eq!(rig.stats.ctas_completed, 16);
    assert_eq!(rig.sm.resident_ctas(), 0);
    assert_eq!(rig.sm.slot_ctas(), 0);
}

#[test]
fn admission_respects_shared_memory_capacity() {
    let mut b = KernelBuilder::new("smem-hog");
    b.pad_smem(12 * 1024);
    b.exit();
    let k = b.build(16, 32).unwrap();
    let mut rig = Rig::new(vt_residency());
    // 48 KiB / 12 KiB = 4 CTAs, far below the register limit.
    assert_eq!(rig.admit_while_possible(&k, 16), 4);
}

#[test]
#[should_panic(expected = "admit called without can_admit")]
fn admit_without_capacity_panics() {
    let k = load_kernel(64);
    let mut rig = Rig::new(ResidencyConfig::baseline());
    rig.admit_while_possible(&k, 64);
    let cycle = rig.cycle;
    rig.sm
        .admit(99, &k, &rig.core, &rig.res, cycle, &mut rig.stats);
}
