//! The whole-GPU simulation: CTA dispatcher, SMs, memory system and the
//! main clock loop.

use crate::config::{
    check_launchable, AdmissionPolicy, CoreConfig, LaunchError, ResidencyConfig, SimConfig,
};
use crate::exec::{
    CancelToken, Checkpoint, Progress, ProgressHook, RunBudget, RunOutcome, StopReason, Truncation,
    CHECKPOINT_VERSION,
};
use crate::hotspots::PcProfile;
use crate::metrics::MetricsSampler;
use crate::sm::{EmptyAttr, Sm};
use crate::stats::RunStats;
use std::error::Error;
use std::fmt;
use std::time::Instant;
use vt_isa::error::ExecError;
use vt_isa::kernel::MemImage;
use vt_isa::Kernel;
use vt_json::{req, req_array, req_str, req_u64, Json};
use vt_mem::{MemSystem, SmFront};
use vt_par::Pool;
use vt_trace::{BufSink, NullSink, TimedEvent, TraceSink};

/// Why a simulation could not complete.
///
/// Marked non-exhaustive: future execution-control features may add
/// variants, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The kernel cannot fit on the configured hardware at all.
    Launch(LaunchError),
    /// A warp trapped (functional fault).
    Exec(ExecError),
    /// The run exceeded the configured cycle watchdog.
    Watchdog {
        /// Cycle at which the run was aborted.
        cycle: u64,
    },
    /// A checkpoint could not be parsed or does not match the supplied
    /// configuration and kernel.
    Checkpoint {
        /// What was wrong with it.
        reason: String,
    },
    /// A run that was required to complete was truncated instead (see
    /// [`crate::exec::RunOutcome::completed`]).
    Truncated {
        /// What stopped the run.
        reason: StopReason,
    },
}

impl SimError {
    /// Whether retrying (with a larger budget, a later deadline, or a
    /// fresh cancellation token) could plausibly succeed. Launch,
    /// functional-trap and checkpoint-mismatch errors are deterministic
    /// and will fail again; watchdog and truncation are resource limits.
    pub fn is_retryable(&self) -> bool {
        match self {
            SimError::Watchdog { .. } | SimError::Truncated { .. } => true,
            SimError::Launch(_) | SimError::Exec(_) | SimError::Checkpoint { .. } => false,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Launch(e) => write!(f, "kernel not launchable: {e}"),
            SimError::Exec(e) => write!(f, "warp trapped: {e}"),
            SimError::Watchdog { cycle } => write!(f, "watchdog expired at cycle {cycle}"),
            SimError::Checkpoint { reason } => write!(f, "bad checkpoint: {reason}"),
            SimError::Truncated { reason } => {
                write!(f, "run truncated before completion ({reason:?})")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Launch(e) => Some(e),
            SimError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaunchError> for SimError {
    fn from(e: LaunchError) -> Self {
        SimError::Launch(e)
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

/// The outcome of a completed run: timing statistics plus the functional
/// final memory image (comparable against the reference interpreter).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Timing and utilisation statistics.
    pub stats: RunStats,
    /// Final global memory contents.
    pub mem_image: MemImage,
}

/// A cycle-level GPU simulation of one kernel launch.
///
/// # Example
///
/// ```
/// use vt_sim::{GpuSim, SimConfig};
/// use vt_isa::KernelBuilder;
/// use vt_isa::op::Operand;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = KernelBuilder::new("store-ones");
/// let out = b.alloc_global(256);
/// let gid = b.reg();
/// let off = b.reg();
/// b.global_thread_id(gid);
/// b.shl(off, Operand::Reg(gid), Operand::Imm(2));
/// b.st_global(Operand::Reg(off), out as i32, Operand::Imm(1));
/// let kernel = b.build(8, 32)?;
///
/// let result = GpuSim::new(&SimConfig::default(), &kernel)?.run()?;
/// assert!(result.stats.cycles > 0);
/// assert_eq!(result.mem_image.load(out + 4 * 100), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GpuSim<'k> {
    kernel: &'k Kernel,
    cfg: SimConfig,
    mem: MemSystem,
    image: MemImage,
    lanes: Vec<SmLane>,
    next_cta: u32,
    dispatch_ptr: usize,
    /// Whether this (kernel, config) pair is bound by the scheduling
    /// limit — fixed for the whole run, derived (not checkpointed) from
    /// the admission policy and `vt_isa::limits::CtaBounds::limiter`.
    /// Attributes empty SM-cycles while CTAs remain undispatched.
    sched_limited: bool,
    stats: RunStats,
    /// Current cycle (the next one the loop will execute).
    cycle: u64,
    /// Windowed metrics sampler, if metering is enabled; its registry
    /// moves into the stats at the epilogue.
    sampler: Option<MetricsSampler>,
}

/// One SM plus everything it is allowed to mutate during the concurrent
/// phase of a cycle: a private stats block and a private trace buffer.
/// Keeping these per-lane means the phase shares nothing between SMs, so
/// lanes can tick on worker threads without locks while the sequential
/// merge (in SM order) keeps every observable output bit-identical to a
/// single-threaded run.
#[derive(Debug)]
struct SmLane {
    sm: Sm,
    stats: RunStats,
    events: Vec<TimedEvent>,
    err: Option<ExecError>,
}

/// Advances one SM by one cycle against its private memory front.
/// Functional global-memory effects are deferred inside the SM and trace
/// events are buffered in the lane; both are drained by the merge phase.
/// `PROFILED` monomorphizes the per-PC hotspot recording in or out.
#[allow(clippy::too_many_arguments)]
fn tick_lane<const PROFILED: bool>(
    lane: &mut SmLane,
    front: &mut SmFront,
    cycle: u64,
    trace: bool,
    kernel: &Kernel,
    core: &CoreConfig,
    res: &ResidencyConfig,
    attr: EmptyAttr,
) {
    let r = if trace {
        lane.sm.tick_phase::<_, PROFILED>(
            cycle,
            kernel,
            core,
            res,
            front,
            &mut lane.stats,
            &mut BufSink(&mut lane.events),
            attr,
        )
    } else {
        lane.sm.tick_phase::<_, PROFILED>(
            cycle,
            kernel,
            core,
            res,
            front,
            &mut lane.stats,
            &mut NullSink,
            attr,
        )
    };
    if let Err(e) = r {
        lane.err = Some(e);
    }
}

impl<'k> GpuSim<'k> {
    /// Prepares a simulation of `kernel` under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Launch`] if one CTA of the kernel cannot fit on
    /// one SM.
    pub fn new(cfg: &SimConfig, kernel: &'k Kernel) -> Result<GpuSim<'k>, SimError> {
        check_launchable(&cfg.core, kernel)?;
        let num_sms = cfg.core.num_sms.max(1) as usize;
        // When profiling is on, every lane gets a per-PC profile sized to
        // the program (merged in SM order at the epilogue), and the
        // global block gets an empty one so resumed runs can tell the
        // setting apart from an unprofiled checkpoint.
        let profile = cfg
            .core
            .profile
            .then(|| PcProfile::new(kernel.program().len()));
        Ok(GpuSim {
            kernel,
            cfg: cfg.clone(),
            mem: MemSystem::new(&cfg.mem, num_sms),
            image: kernel.global_mem().clone(),
            lanes: (0..num_sms)
                .map(|i| SmLane {
                    sm: Sm::new(i, &cfg.core, cfg.mem.line_bytes),
                    stats: RunStats {
                        hotspots: profile.clone(),
                        ..RunStats::default()
                    },
                    events: Vec::new(),
                    err: None,
                })
                .collect(),
            next_cta: 0,
            dispatch_ptr: 0,
            sched_limited: scheduling_limited(cfg, kernel),
            stats: RunStats {
                hotspots: profile,
                ..RunStats::default()
            },
            cycle: 0,
            sampler: cfg
                .core
                .metrics_window
                .map(|w| MetricsSampler::new(w, num_sms)),
        })
    }

    /// Runs the kernel to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] on a functional trap and
    /// [`SimError::Watchdog`] if `core.max_cycles` elapses first.
    pub fn run(self) -> Result<RunResult, SimError> {
        self.execute(None, &mut NullSink, &RunBudget::unlimited(), None)?
            .completed()
    }

    /// [`GpuSim::run`] with the concurrent SM phase sharded across `pool`'s
    /// workers. `None` (or a one-thread pool) runs everything inline; any
    /// pool produces bit-identical results because only the merge order —
    /// which is always ascending SM id — is observable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] on a functional trap and
    /// [`SimError::Watchdog`] if `core.max_cycles` elapses first.
    #[deprecated(
        since = "0.2.0",
        note = "use GpuSim::execute (or vt-core's Session) instead"
    )]
    pub fn run_on(self, pool: Option<&Pool>) -> Result<RunResult, SimError> {
        self.execute(pool, &mut NullSink, &RunBudget::unlimited(), None)?
            .completed()
    }

    /// [`GpuSim::run`] with an explicit trace sink receiving every
    /// simulation event. With [`NullSink`] (what [`GpuSim::run`] passes)
    /// the sink calls compile away entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] on a functional trap and
    /// [`SimError::Watchdog`] if `core.max_cycles` elapses first.
    #[deprecated(
        since = "0.2.0",
        note = "use GpuSim::execute (or vt-core's Session) instead"
    )]
    pub fn run_traced<S: TraceSink>(self, sink: &mut S) -> Result<RunResult, SimError> {
        self.execute(None, sink, &RunBudget::unlimited(), None)?
            .completed()
    }

    /// [`GpuSim::run`] with a trace sink and optional SM-level
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] on a functional trap and
    /// [`SimError::Watchdog`] if `core.max_cycles` elapses first.
    #[deprecated(
        since = "0.2.0",
        note = "use GpuSim::execute (or vt-core's Session) instead"
    )]
    pub fn run_traced_on<S: TraceSink>(
        self,
        pool: Option<&Pool>,
        sink: &mut S,
    ) -> Result<RunResult, SimError> {
        self.execute(pool, sink, &RunBudget::unlimited(), None)?
            .completed()
    }

    /// The full engine: tracing, optional SM-level parallelism, and
    /// execution control (budget, cancellation).
    ///
    /// Each cycle has two phases. Phase A ticks every SM against its
    /// private [`SmFront`], buffering trace events and deferring functional
    /// global-memory effects; with a pool, lanes run on worker threads.
    /// The merge phase then walks SMs in ascending id order — flushing
    /// buffered events, applying deferred accesses to the memory image and
    /// surfacing traps — before outbound memory requests enter the
    /// interconnect in the same (SM, issue) order a sequential run uses.
    /// Stats, traces and the final image are therefore identical at any
    /// thread count.
    ///
    /// `budget` and `cancel` are polled once per cycle at the phase
    /// boundary. When one trips, the run returns
    /// [`RunOutcome::Truncated`] carrying partial statistics (which obey
    /// the same invariants as a completed run's, e.g. `idle.total() +
    /// issue_cycles == num_sms × cycles`) and a [`Checkpoint`] that
    /// [`GpuSim::resume`] continues bit-identically. If completion and a
    /// limit coincide on the same cycle, completion wins.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] on a functional trap and
    /// [`SimError::Watchdog`] if `core.max_cycles` elapses first.
    pub fn execute<S: TraceSink>(
        self,
        pool: Option<&Pool>,
        sink: &mut S,
        budget: &RunBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutcome, SimError> {
        self.execute_with_progress(pool, sink, budget, cancel, None)
    }

    /// [`GpuSim::execute`] with an optional periodic [`ProgressHook`].
    /// The hook fires at the top-of-cycle phase boundary every
    /// `hook.every` cycles with live counters (cycle, IPC, residency);
    /// observation never changes simulation state, so metered, hooked and
    /// plain runs produce bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] on a functional trap and
    /// [`SimError::Watchdog`] if `core.max_cycles` elapses first.
    pub fn execute_with_progress<S: TraceSink>(
        self,
        pool: Option<&Pool>,
        sink: &mut S,
        budget: &RunBudget,
        cancel: Option<&CancelToken>,
        progress: Option<ProgressHook<'_>>,
    ) -> Result<RunOutcome, SimError> {
        // Metering and profiling are monomorphized out exactly like
        // tracing: the unmetered/unprofiled instantiations contain no
        // sampler or per-PC recording code at all.
        match (self.sampler.is_some(), self.cfg.core.profile) {
            (true, true) => {
                self.execute_inner::<S, true, true>(pool, sink, budget, cancel, progress)
            }
            (true, false) => {
                self.execute_inner::<S, true, false>(pool, sink, budget, cancel, progress)
            }
            (false, true) => {
                self.execute_inner::<S, false, true>(pool, sink, budget, cancel, progress)
            }
            (false, false) => {
                self.execute_inner::<S, false, false>(pool, sink, budget, cancel, progress)
            }
        }
    }

    fn execute_inner<S: TraceSink, const METERED: bool, const PROFILED: bool>(
        mut self,
        pool: Option<&Pool>,
        sink: &mut S,
        budget: &RunBudget,
        cancel: Option<&CancelToken>,
        mut progress: Option<ProgressHook<'_>>,
    ) -> Result<RunOutcome, SimError> {
        let started = budget.deadline.map(|_| Instant::now());
        let cycle_limit = budget
            .max_cycles
            .map(|n| self.cycle.saturating_add(n.max(1)));
        // (cycle, thread_instrs) at the last progress report, for the
        // windowed-IPC figure in the ticker.
        let mut progress_mark = (
            self.cycle,
            self.stats.thread_instrs
                + self
                    .lanes
                    .iter()
                    .map(|l| l.stats.thread_instrs)
                    .sum::<u64>(),
        );
        loop {
            let cycle = self.cycle;
            if METERED {
                // Seal the window ending at this boundary *before* the
                // cycle executes, so window k covers [k·w, (k+1)·w)
                // exactly and a run truncated at a boundary leaves the
                // seal to its resumption.
                let window = self.sampler.as_ref().expect("metered").window();
                if cycle > 0 && cycle.is_multiple_of(window) {
                    let sampler = self.sampler.as_mut().expect("metered");
                    sampler.seal_window(
                        &self.stats,
                        self.lanes.iter().map(|l| (&l.sm, &l.stats)),
                        &self.mem,
                    );
                }
            }
            if let Some(hook) = progress.as_mut() {
                if cycle > 0 && cycle.is_multiple_of(hook.every) {
                    let thread_instrs = self.stats.thread_instrs
                        + self
                            .lanes
                            .iter()
                            .map(|l| l.stats.thread_instrs)
                            .sum::<u64>();
                    let (last_cycle, last_instrs) = progress_mark;
                    let span = cycle.saturating_sub(last_cycle);
                    let p = Progress {
                        cycle,
                        budget_cycles: budget.max_cycles,
                        thread_instrs,
                        ipc: thread_instrs as f64 / cycle as f64,
                        window_ipc: if span > 0 {
                            thread_instrs.saturating_sub(last_instrs) as f64 / span as f64
                        } else {
                            0.0
                        },
                        resident_ctas: self
                            .lanes
                            .iter()
                            .map(|l| u64::from(l.sm.resident_ctas()))
                            .sum(),
                        active_ctas: self.lanes.iter().map(|l| u64::from(l.sm.slot_ctas())).sum(),
                        resident_warps: self
                            .lanes
                            .iter()
                            .map(|l| u64::from(l.sm.resident_warps()))
                            .sum(),
                    };
                    (hook.callback)(&p);
                    progress_mark = (cycle, thread_instrs);
                }
            }
            self.mem.tick_traced(cycle, sink);

            // Empty-cycle attribution context, fixed before Phase A so
            // every lane observes the same dispatcher state at any
            // worker count.
            let attr = EmptyAttr {
                work_left: self.next_cta < self.kernel.num_ctas(),
                scheduling_limited: self.sched_limited,
            };

            // Phase A: every SM advances one cycle touching only its own
            // lane and memory front.
            let parallel = pool.is_some_and(|p| p.threads() > 1) && self.lanes.len() > 1;
            if parallel {
                let pool = pool.expect("checked above");
                let kernel = self.kernel;
                let core = &self.cfg.core;
                let res = &self.cfg.residency;
                pool.run_pairs(&mut self.lanes, self.mem.fronts_mut(), &|_, lane, front| {
                    tick_lane::<PROFILED>(lane, front, cycle, S::ENABLED, kernel, core, res, attr);
                });
            } else {
                for (lane, front) in self.lanes.iter_mut().zip(self.mem.fronts_mut()) {
                    tick_lane::<PROFILED>(
                        lane,
                        front,
                        cycle,
                        S::ENABLED,
                        self.kernel,
                        &self.cfg.core,
                        &self.cfg.residency,
                        attr,
                    );
                }
            }

            // Merge phase, strictly in ascending SM order: flush the
            // buffered trace events, apply the deferred functional memory
            // ops, and surface the first trap exactly where a sequential
            // run would.
            for lane in &mut self.lanes {
                if S::ENABLED {
                    for e in lane.events.drain(..) {
                        sink.emit(e.t, e.ev);
                    }
                }
                lane.sm.apply_deferred(&mut self.image)?;
                if let Some(e) = lane.err.take() {
                    return Err(SimError::Exec(e));
                }
            }
            self.mem.merge_outboxes();

            self.dispatch(cycle, sink);
            if self.finished() {
                break;
            }
            self.cycle += 1;
            if self.cycle >= self.cfg.core.max_cycles {
                return Err(SimError::Watchdog { cycle: self.cycle });
            }
            // Execution-control checks, once per cycle at the phase
            // boundary. Completion (the break above) wins ties.
            let reason = if cycle_limit.is_some_and(|limit| self.cycle >= limit) {
                Some(StopReason::CycleBudget)
            } else if cancel.is_some_and(|c| c.is_cancelled()) {
                Some(StopReason::Cancelled)
            } else if let (Some(deadline), Some(start)) = (budget.deadline, started) {
                (start.elapsed() >= deadline).then_some(StopReason::Deadline)
            } else {
                None
            };
            if let Some(reason) = reason {
                // Snapshot the live state first; the stats epilogue
                // below consumes it.
                let checkpoint = self.checkpoint();
                let stats = self.finish_stats(self.cycle);
                return Ok(RunOutcome::Truncated(Box::new(Truncation {
                    reason,
                    stats,
                    checkpoint,
                })));
            }
        }
        let stats = self.finish_stats(self.cycle + 1);
        Ok(RunOutcome::Completed(RunResult {
            stats,
            mem_image: self.image,
        }))
    }

    /// Folds the per-lane stat blocks and memory statistics into the
    /// global stats, stamping the cycle count. Consumes the accumulation
    /// state, so it runs exactly once per outcome.
    fn finish_stats(&mut self, cycles: u64) -> RunStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = cycles;
        for lane in &self.lanes {
            stats.merge(&lane.stats);
        }
        stats.mem = self.mem.stats();
        stats.max_simt_depth = self
            .lanes
            .iter()
            .map(|l| l.sm.max_simt_depth())
            .max()
            .unwrap_or(0);
        stats.series = self.sampler.take().map(MetricsSampler::into_registry);
        stats
    }

    /// Serializes the complete simulator state at the current cycle
    /// boundary. The result can be stored as text
    /// ([`Checkpoint::to_text`]) and later revived with
    /// [`Checkpoint::parse`] + [`GpuSim::resume`], which continues the
    /// run bit-identically to one that was never interrupted — at any
    /// worker count.
    pub fn checkpoint(&self) -> Checkpoint {
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                Json::Object(vec![
                    ("sm".into(), l.sm.snapshot()),
                    ("stats".into(), l.stats.snapshot()),
                ])
            })
            .collect();
        Checkpoint::from_json(Json::Object(vec![
            ("version".into(), Json::UInt(CHECKPOINT_VERSION)),
            ("kernel".into(), Json::Str(self.kernel.name().to_string())),
            (
                "num_ctas".into(),
                Json::UInt(u64::from(self.kernel.num_ctas())),
            ),
            ("num_sms".into(), Json::UInt(self.lanes.len() as u64)),
            ("cycle".into(), Json::UInt(self.cycle)),
            ("next_cta".into(), Json::UInt(u64::from(self.next_cta))),
            ("dispatch_ptr".into(), Json::UInt(self.dispatch_ptr as u64)),
            ("stats".into(), self.stats.snapshot()),
            (
                "metrics".into(),
                match &self.sampler {
                    Some(s) => s.registry().snapshot(),
                    None => Json::Null,
                },
            ),
            ("lanes".into(), Json::Array(lanes)),
            ("mem".into(), self.mem.snapshot()),
            (
                "image".into(),
                Json::Array(
                    self.image
                        .as_words()
                        .iter()
                        .map(|&w| Json::UInt(u64::from(w)))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Revives a simulation from a checkpoint taken by
    /// [`GpuSim::checkpoint`], validating that `cfg` and `kernel` match
    /// the run the checkpoint came from. The continued run is
    /// bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] if the checkpoint is malformed
    /// or belongs to a different kernel or machine geometry, and
    /// [`SimError::Launch`] if `kernel` cannot launch under `cfg`.
    pub fn resume(
        cfg: &SimConfig,
        kernel: &'k Kernel,
        ckpt: &Checkpoint,
    ) -> Result<GpuSim<'k>, SimError> {
        check_launchable(&cfg.core, kernel)?;
        let bad = |reason: String| SimError::Checkpoint { reason };
        let v = ckpt.json();
        let version = req_u64(v, "version").map_err(bad)?;
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        let name = req_str(v, "kernel").map_err(bad)?;
        if name != kernel.name() {
            return Err(bad(format!(
                "checkpoint is for kernel {:?}, not {:?}",
                name,
                kernel.name()
            )));
        }
        let num_ctas = req_u64(v, "num_ctas").map_err(bad)?;
        if num_ctas != u64::from(kernel.num_ctas()) {
            return Err(bad(format!(
                "checkpoint has {num_ctas} CTAs, kernel has {}",
                kernel.num_ctas()
            )));
        }
        let num_sms = req_u64(v, "num_sms").map_err(bad)? as usize;
        if num_sms != cfg.core.num_sms.max(1) as usize {
            return Err(bad(format!(
                "checkpoint has {num_sms} SMs, config has {}",
                cfg.core.num_sms.max(1)
            )));
        }
        let lane_docs = req_array(v, "lanes").map_err(bad)?;
        if lane_docs.len() != num_sms {
            return Err(bad(format!(
                "checkpoint lane table has {} entries for {num_sms} SMs",
                lane_docs.len()
            )));
        }
        let mut lanes = Vec::with_capacity(num_sms);
        for doc in lane_docs {
            lanes.push(SmLane {
                sm: Sm::restore(req(doc, "sm").map_err(bad)?).map_err(bad)?,
                stats: RunStats::restore(req(doc, "stats").map_err(bad)?).map_err(bad)?,
                events: Vec::new(),
                err: None,
            });
        }
        let image_words = req_array(v, "image")
            .map_err(bad)?
            .iter()
            .map(|w| {
                w.as_u64()
                    .map(|x| x as u32)
                    .ok_or("image word is not a u64")
            })
            .collect::<Result<Vec<u32>, &str>>()
            .map_err(|e| bad(e.to_string()))?;
        // The metering setting must agree between the checkpoint and the
        // resuming configuration: stitched series are only bit-identical
        // to an uninterrupted run when sampling is continuous.
        let sampler = match (cfg.core.metrics_window, req(v, "metrics").map_err(bad)?) {
            (None, Json::Null) => None,
            (Some(_), Json::Null) => {
                return Err(bad(
                    "config enables metrics but the checkpoint was taken unmetered".to_string(),
                ));
            }
            (None, _) => {
                return Err(bad(
                    "checkpoint was taken with metrics enabled but the config disables them"
                        .to_string(),
                ));
            }
            (Some(w), m) => {
                let registry = vt_trace::MetricsRegistry::restore(m).map_err(bad)?;
                if registry.window() != w.max(1) {
                    return Err(bad(format!(
                        "checkpoint metrics window is {}, config wants {}",
                        registry.window(),
                        w.max(1)
                    )));
                }
                Some(MetricsSampler::from_registry(registry, num_sms).map_err(bad)?)
            }
        };
        // The profiling setting must agree too: a stitched per-PC profile
        // is only exact when collection was continuous across the cut.
        let stats = RunStats::restore(req(v, "stats").map_err(bad)?).map_err(bad)?;
        match (cfg.core.profile, &stats.hotspots) {
            (true, None) => {
                return Err(bad(
                    "config enables profiling but the checkpoint was taken unprofiled".to_string(),
                ));
            }
            (false, Some(_)) => {
                return Err(bad(
                    "checkpoint was taken with profiling enabled but the config disables it"
                        .to_string(),
                ));
            }
            (true, Some(h)) if h.len() != kernel.program().len() => {
                return Err(bad(format!(
                    "checkpoint profile covers {} PCs, kernel has {}",
                    h.len(),
                    kernel.program().len()
                )));
            }
            _ => {}
        }
        Ok(GpuSim {
            kernel,
            cfg: cfg.clone(),
            mem: MemSystem::restore(&cfg.mem, req(v, "mem").map_err(bad)?).map_err(bad)?,
            image: MemImage::from_words(image_words),
            lanes,
            next_cta: req_u64(v, "next_cta").map_err(bad)? as u32,
            dispatch_ptr: req_u64(v, "dispatch_ptr").map_err(bad)? as usize,
            sched_limited: scheduling_limited(cfg, kernel),
            stats,
            cycle: req_u64(v, "cycle").map_err(bad)?,
            sampler,
        })
    }

    /// Hands out up to one CTA per SM per cycle, rotating the starting SM
    /// for balance.
    fn dispatch<S: TraceSink>(&mut self, now: u64, sink: &mut S) {
        if self.next_cta >= self.kernel.num_ctas() {
            return;
        }
        let n = self.lanes.len();
        for i in 0..n {
            if self.next_cta >= self.kernel.num_ctas() {
                break;
            }
            let sm = &mut self.lanes[(self.dispatch_ptr + i) % n].sm;
            if sm.can_admit(self.kernel, &self.cfg.core, &self.cfg.residency) {
                sm.admit_traced(
                    self.next_cta,
                    self.kernel,
                    &self.cfg.core,
                    &self.cfg.residency,
                    now,
                    &mut self.stats,
                    sink,
                );
                self.next_cta += 1;
            }
        }
        self.dispatch_ptr = (self.dispatch_ptr + 1) % n;
    }

    fn finished(&self) -> bool {
        self.next_cta >= self.kernel.num_ctas()
            && self.lanes.iter().all(|l| l.sm.idle())
            && self.mem.quiesced()
    }
}

/// Whether empty SM-cycles with undispatched work should be attributed
/// to the scheduling limit for this (config, kernel) pair. Under baseline
/// admission the classification follows the static limiter; under
/// `CapacityOnly` the scheduling structures are virtualised, so an empty
/// SM can only be capacity-starved.
fn scheduling_limited(cfg: &SimConfig, kernel: &Kernel) -> bool {
    match cfg.residency.admission {
        AdmissionPolicy::SchedulingAndCapacity => {
            cfg.core.limits().bounds(kernel).limiter().is_scheduling()
        }
        AdmissionPolicy::CapacityOnly { .. } => false,
    }
}

/// Convenience: build and run in one call.
///
/// # Errors
///
/// Propagates any [`SimError`] from construction or the run.
pub fn simulate(cfg: &SimConfig, kernel: &Kernel) -> Result<RunResult, SimError> {
    GpuSim::new(cfg, kernel)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        ActivePolicy, AdmissionPolicy, ResidencyConfig, SchedPolicy, SwapConfig, SwapTrigger,
    };
    use vt_isa::interp::Interpreter;
    use vt_isa::op::{AtomOp, Operand, Sreg};
    use vt_isa::KernelBuilder;

    /// out[gid] = xs[gid] * 3 + 1, streaming.
    fn streaming_kernel(ctas: u32, threads: u32) -> Kernel {
        let n = (ctas * threads) as usize;
        let mut b = KernelBuilder::new("stream");
        let xs = b.alloc_global_init(&(0..n as u32).collect::<Vec<_>>());
        let out = b.alloc_global(n);
        let gid = b.reg();
        let off = b.reg();
        let v = b.reg();
        b.global_thread_id(gid);
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(off), xs as i32);
        b.mad(v, Operand::Reg(v), Operand::Imm(3), Operand::Imm(1));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(v));
        b.exit();
        b.build(ctas, threads).unwrap()
    }

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.core.num_sms = 2;
        cfg
    }

    #[test]
    fn streaming_kernel_matches_interpreter() {
        let k = streaming_kernel(8, 64);
        let sim = simulate(&small_cfg(), &k).unwrap();
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(sim.mem_image.as_words(), reference.mem().as_words());
        assert_eq!(sim.stats.ctas_completed, 8);
        assert!(sim.stats.cycles > 0);
        assert!(sim.stats.warp_instrs >= 8 * 2 * 6);
    }

    #[test]
    fn divergent_kernel_matches_interpreter() {
        let mut b = KernelBuilder::new("diverge");
        let out = b.alloc_global(256);
        let gid = b.reg();
        let off = b.reg();
        let p = b.reg();
        let v = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.and_(p, Operand::Reg(gid), Operand::Imm(3));
        b.mov(v, Operand::Imm(0));
        b.for_range(i, Operand::Imm(0), Operand::Reg(p), 1, |b, i| {
            b.add(v, Operand::Reg(v), Operand::Reg(i));
        });
        b.if_else(
            Operand::Reg(p),
            |b| b.add(v, Operand::Reg(v), Operand::Imm(100)),
            |b| b.add(v, Operand::Reg(v), Operand::Imm(200)),
        );
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(v));
        b.exit();
        let k = b.build(4, 64).unwrap();
        let sim = simulate(&small_cfg(), &k).unwrap();
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(sim.mem_image.as_words(), reference.mem().as_words());
        assert!(sim.stats.divergent_branches > 0);
    }

    #[test]
    fn barrier_reduction_matches_interpreter() {
        let nt = 64u32;
        let mut b = KernelBuilder::new("reduce");
        let out = b.alloc_global(16);
        let buf = b.alloc_shared(nt);
        let soff = b.reg();
        let stride = b.reg();
        let p = b.reg();
        let x = b.reg();
        let y = b.reg();
        let other = b.reg();
        b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
        b.st_shared(Operand::Reg(soff), buf as i32, Operand::Sreg(Sreg::Tid));
        b.bar();
        b.mov(stride, Operand::Imm(nt / 2));
        b.while_(
            |b| {
                let c = b.reg();
                b.set_gt(c, Operand::Reg(stride), Operand::Imm(0));
                Operand::Reg(c)
            },
            |b| {
                b.set_lt(p, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
                b.if_(Operand::Reg(p), |b| {
                    b.add(other, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
                    b.shl(other, Operand::Reg(other), Operand::Imm(2));
                    b.ld_shared(x, Operand::Reg(soff), buf as i32);
                    b.ld_shared(y, Operand::Reg(other), buf as i32);
                    b.add(x, Operand::Reg(x), Operand::Reg(y));
                    b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(x));
                });
                b.bar();
                b.shr(stride, Operand::Reg(stride), Operand::Imm(1));
            },
        );
        b.set_eq(p, Operand::Sreg(Sreg::Tid), Operand::Imm(0));
        b.if_(Operand::Reg(p), |b| {
            b.shl(x, Operand::Sreg(Sreg::CtaId), Operand::Imm(2));
            b.ld_shared(y, Operand::Reg(soff), buf as i32);
            b.st_global(Operand::Reg(x), out as i32, Operand::Reg(y));
        });
        b.exit();
        let k = b.build(6, nt).unwrap();
        let sim = simulate(&small_cfg(), &k).unwrap();
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(sim.mem_image.as_words(), reference.mem().as_words());
        assert!(sim.stats.barriers > 0);
    }

    #[test]
    fn atomics_match_interpreter() {
        let mut b = KernelBuilder::new("atom");
        let out = b.alloc_global(4);
        let bin = b.reg();
        b.and_(bin, Operand::Sreg(Sreg::Tid), Operand::Imm(3));
        b.shl(bin, Operand::Reg(bin), Operand::Imm(2));
        b.atom(
            AtomOp::Add,
            None,
            Operand::Reg(bin),
            out as i32,
            Operand::Imm(1),
        );
        b.exit();
        let k = b.build(6, 96).unwrap();
        let sim = simulate(&small_cfg(), &k).unwrap();
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(sim.mem_image.as_words(), reference.mem().as_words());
        assert_eq!(sim.mem_image.load(out), Some(6 * 96 / 4));
    }

    #[test]
    fn deterministic_cycle_counts() {
        let k = streaming_kernel(10, 96);
        let a = simulate(&small_cfg(), &k).unwrap();
        let b = simulate(&small_cfg(), &k).unwrap();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn lrr_and_gto_both_complete() {
        let k = streaming_kernel(8, 64);
        for policy in [SchedPolicy::Lrr, SchedPolicy::Gto] {
            let mut cfg = small_cfg();
            cfg.core.scheduler = policy;
            let r = simulate(&cfg, &k).unwrap();
            let reference = Interpreter::new(&k).unwrap().run().unwrap();
            assert_eq!(
                r.mem_image.as_words(),
                reference.mem().as_words(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn virtual_thread_config_runs_and_swaps() {
        // Memory-latency-bound kernel with few warps per CTA: the baseline
        // scheduling limit strands capacity, VT uses it.
        let k = streaming_kernel(64, 64);
        let mut cfg = small_cfg();
        cfg.residency = ResidencyConfig {
            admission: AdmissionPolicy::CapacityOnly {
                max_resident_ctas: Some(32),
            },
            active: ActivePolicy::SchedulingLimit,
            swap: Some(SwapConfig {
                trigger: SwapTrigger::AllWarpsStalled,
                save_cycles: 20,
                restore_cycles: 20,
                fresh_activation_cycles: 2,
                throttle: None,
            }),
        };
        let vt = simulate(&cfg, &k).unwrap();
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(vt.mem_image.as_words(), reference.mem().as_words());
        assert!(vt.stats.swaps.swaps_out > 0, "VT should context switch");

        let base = simulate(&small_cfg(), &k).unwrap();
        assert_eq!(base.mem_image.as_words(), reference.mem().as_words());
        assert!(
            vt.stats.occupancy.avg_resident_warps() > base.stats.occupancy.avg_resident_warps(),
            "VT hosts more TLP"
        );
    }

    #[test]
    fn ideal_config_at_least_as_fast_as_baseline() {
        let k = streaming_kernel(48, 64);
        let base = simulate(&small_cfg(), &k).unwrap();
        let mut cfg = small_cfg();
        cfg.residency = ResidencyConfig {
            admission: AdmissionPolicy::CapacityOnly {
                max_resident_ctas: None,
            },
            active: ActivePolicy::Unlimited,
            swap: None,
        };
        let ideal = simulate(&cfg, &k).unwrap();
        assert!(
            ideal.stats.cycles <= base.stats.cycles,
            "ideal {} vs baseline {}",
            ideal.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn watchdog_fires() {
        let mut b = KernelBuilder::new("spin");
        b.while_(|_| Operand::Imm(1), |_| {});
        let k = b.build(1, 32).unwrap();
        let mut cfg = small_cfg();
        cfg.core.max_cycles = 5_000;
        assert_eq!(
            simulate(&cfg, &k).unwrap_err(),
            SimError::Watchdog { cycle: 5_000 }
        );
    }

    #[test]
    fn trap_propagates() {
        let mut b = KernelBuilder::new("oob");
        let r = b.reg();
        b.ld_global(r, Operand::Imm(1 << 26), 0);
        let k = b.build(1, 32).unwrap();
        let err = simulate(&small_cfg(), &k).unwrap_err();
        assert!(matches!(
            err,
            SimError::Exec(ExecError::GlobalOutOfRange { .. })
        ));
    }

    #[test]
    fn partial_warps_simulate_correctly() {
        let k = streaming_kernel(3, 40); // 40 threads: second warp partial
        let sim = simulate(&small_cfg(), &k).unwrap();
        let reference = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(sim.mem_image.as_words(), reference.mem().as_words());
    }

    #[test]
    fn metrics_sampling_is_opt_in() {
        let k = streaming_kernel(8, 64);
        let off = simulate(&small_cfg(), &k).unwrap();
        assert!(off.stats.metrics().is_none(), "disabled by default");

        let mut cfg = small_cfg();
        cfg.core.metrics_window = Some(50);
        let on = simulate(&cfg, &k).unwrap();
        let m = on.stats.metrics().expect("sampling enabled");
        assert_eq!(m.window(), 50);
        // The last executed cycle is cycles-1; every boundary at or
        // before it sealed a window, partial windows never seal.
        assert_eq!(m.windows(), (on.stats.cycles - 1) / 50);
        let wi = m.get("warp_instrs", None).unwrap();
        assert!(
            wi.total() <= on.stats.warp_instrs,
            "partial window unsealed"
        );
        assert!(wi.total() > 0, "the run issued inside sealed windows");
        // Per-SM series sum to the aggregate, window by window.
        let per_sm: Vec<u64> = (0..2)
            .map(|sm| m.get("warp_instrs", Some(sm)).unwrap())
            .fold(vec![0u64; m.windows() as usize], |mut acc, s| {
                for (a, v) in acc.iter_mut().zip(s.values()) {
                    *a += v;
                }
                acc
            });
        assert_eq!(per_sm, wi.values());
        // Levels stay within physical capacity (2 SMs × warp slots).
        let rw = m.get("resident_warps", None).unwrap();
        assert!(rw.max() <= u64::from(cfg.core.max_warps_per_sm) * 2);
        // Metering never perturbs the simulation itself.
        let mut unmetered = on.stats.clone();
        unmetered.series = None;
        assert_eq!(unmetered, off.stats);
    }

    #[test]
    fn progress_hook_reports_without_perturbing() {
        let k = streaming_kernel(8, 64);
        let plain = simulate(&small_cfg(), &k).unwrap();
        let mut reports: Vec<(u64, u64)> = Vec::new();
        let mut cb = |p: &Progress| reports.push((p.cycle, p.thread_instrs));
        let out = GpuSim::new(&small_cfg(), &k)
            .unwrap()
            .execute_with_progress(
                None,
                &mut NullSink,
                &RunBudget::unlimited(),
                None,
                Some(ProgressHook::new(64, &mut cb)),
            )
            .unwrap();
        let r = out.completed().unwrap();
        assert_eq!(r.stats, plain.stats, "observation is free");
        assert_eq!(reports.len() as u64, (plain.stats.cycles - 1) / 64);
        assert!(reports
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn metered_resume_rejects_sampling_mismatches() {
        let k = streaming_kernel(16, 64);
        let mut metered = small_cfg();
        metered.core.metrics_window = Some(64);
        let out = GpuSim::new(&metered, &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(100),
                None,
            )
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        // Resuming unmetered, or with a different window, is rejected.
        assert!(matches!(
            GpuSim::resume(&small_cfg(), &k, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
        let mut other = small_cfg();
        other.core.metrics_window = Some(128);
        assert!(matches!(
            GpuSim::resume(&other, &k, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
        // An unmetered checkpoint refuses a metered resume.
        let out = GpuSim::new(&small_cfg(), &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(100),
                None,
            )
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        assert!(matches!(
            GpuSim::resume(&metered, &k, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn profiling_is_opt_in_and_conserves() {
        let k = streaming_kernel(8, 64);
        let off = simulate(&small_cfg(), &k).unwrap();
        assert!(off.stats.hotspots.is_none(), "disabled by default");

        let mut cfg = small_cfg();
        cfg.core.profile = true;
        let on = simulate(&cfg, &k).unwrap();
        let h = on.stats.hotspots.as_ref().expect("profiling enabled");
        assert_eq!(h.len(), k.program().len());
        // Conservation: per-PC issue tallies sum exactly to the issued
        // bucket, and per-PC stall charges plus the unattributed
        // remainder sum exactly to each stall bucket of the CPI stack.
        let stack = on.stats.cpi_stack();
        assert_eq!(h.issued_total(), stack.issued);
        use crate::hotspots::StallReason;
        for (r, bucket) in [
            (StallReason::Memory, stack.stall_memory),
            (StallReason::Pipeline, stack.stall_pipeline),
            (StallReason::Barrier, stack.stall_barrier),
            (StallReason::Swap, stack.stall_swap),
            (StallReason::Structural, stack.stall_structural),
        ] {
            assert_eq!(
                h.stall_total(r) + h.unattributed[r.index()],
                bucket,
                "{} conserves",
                r.name()
            );
        }
        // A streaming kernel's load PC observes latency and coalescing.
        assert!(h.counters().iter().any(|c| c.mem_accesses > 0));
        assert!(h.counters().iter().any(|c| c.mem_latency.count > 0));
        // Profiling never perturbs the simulation itself.
        let mut unprofiled = on.stats.clone();
        unprofiled.hotspots = None;
        assert_eq!(unprofiled, off.stats);
        assert_eq!(on.mem_image.as_words(), off.mem_image.as_words());
    }

    #[test]
    fn profiled_resume_rejects_mismatches() {
        let k = streaming_kernel(16, 64);
        let mut profiled = small_cfg();
        profiled.core.profile = true;
        let out = GpuSim::new(&profiled, &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(100),
                None,
            )
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        // Resuming unprofiled is rejected...
        assert!(matches!(
            GpuSim::resume(&small_cfg(), &k, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
        // ...and an unprofiled checkpoint refuses a profiled resume.
        let out = GpuSim::new(&small_cfg(), &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(100),
                None,
            )
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        assert!(matches!(
            GpuSim::resume(&profiled, &k, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn profiled_resume_matches_uninterrupted_run_exactly() {
        let k = streaming_kernel(16, 64);
        let mut cfg = small_cfg();
        cfg.core.profile = true;
        let full = simulate(&cfg, &k).unwrap();
        for cut in [1u64, 50, 300] {
            let out = GpuSim::new(&cfg, &k)
                .unwrap()
                .execute(
                    None,
                    &mut NullSink,
                    &RunBudget::unlimited().with_max_cycles(cut),
                    None,
                )
                .unwrap();
            let RunOutcome::Truncated(t) = out else {
                panic!("run shorter than {cut} cycles");
            };
            let ckpt = Checkpoint::parse(&t.checkpoint.to_text()).unwrap();
            let resumed = GpuSim::resume(&cfg, &k, &ckpt).unwrap().run().unwrap();
            assert_eq!(resumed.stats, full.stats, "cut at {cut}");
        }
    }

    #[test]
    fn budget_truncates_with_valid_partial_stats() {
        let k = streaming_kernel(16, 64);
        let cfg = small_cfg();
        let out = GpuSim::new(&cfg, &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(100),
                None,
            )
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        assert_eq!(t.reason, StopReason::CycleBudget);
        assert_eq!(t.stats.cycles, 100);
        assert_eq!(
            t.stats.idle.total() + t.stats.issue_cycles,
            t.stats.occupancy.sm_cycles,
            "idle identity holds on partial stats"
        );
        assert_eq!(t.stats.occupancy.sm_cycles, 100 * 2, "2 SMs x 100 cycles");
        assert_eq!(t.checkpoint.cycle().unwrap(), 100);
    }

    #[test]
    fn resume_matches_uninterrupted_run_exactly() {
        let k = streaming_kernel(16, 64);
        let cfg = small_cfg();
        let full = simulate(&cfg, &k).unwrap();
        for cut in [1u64, 50, 300] {
            let out = GpuSim::new(&cfg, &k)
                .unwrap()
                .execute(
                    None,
                    &mut NullSink,
                    &RunBudget::unlimited().with_max_cycles(cut),
                    None,
                )
                .unwrap();
            let RunOutcome::Truncated(t) = out else {
                panic!("run shorter than {cut} cycles");
            };
            // Round-trip the checkpoint through its text form.
            let ckpt = Checkpoint::parse(&t.checkpoint.to_text()).unwrap();
            let resumed = GpuSim::resume(&cfg, &k, &ckpt).unwrap().run().unwrap();
            assert_eq!(resumed.stats, full.stats, "cut at {cut}");
            assert_eq!(
                resumed.mem_image.as_words(),
                full.mem_image.as_words(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn pre_cancelled_token_truncates_after_one_cycle() {
        let k = streaming_kernel(16, 64);
        let token = crate::exec::CancelToken::new();
        token.cancel();
        let out = GpuSim::new(&small_cfg(), &k)
            .unwrap()
            .execute(None, &mut NullSink, &RunBudget::unlimited(), Some(&token))
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        assert_eq!(t.reason, StopReason::Cancelled);
        assert_eq!(t.stats.cycles, 1, "polled at the first phase boundary");
    }

    #[test]
    fn resume_rejects_mismatched_kernel_and_geometry() {
        let k = streaming_kernel(8, 64);
        let cfg = small_cfg();
        let out = GpuSim::new(&cfg, &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(10),
                None,
            )
            .unwrap();
        let RunOutcome::Truncated(t) = out else {
            panic!("expected truncation");
        };
        let other = streaming_kernel(4, 64); // same name, different grid
        assert!(matches!(
            GpuSim::resume(&cfg, &other, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
        let mut big = small_cfg();
        big.core.num_sms = 4;
        assert!(matches!(
            GpuSim::resume(&big, &k, &t.checkpoint),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn completion_wins_over_budget_tie() {
        let k = streaming_kernel(2, 32);
        let cfg = small_cfg();
        let full = simulate(&cfg, &k).unwrap();
        // Budget exactly equal to the run length: the run completes.
        let out = GpuSim::new(&cfg, &k)
            .unwrap()
            .execute(
                None,
                &mut NullSink,
                &RunBudget::unlimited().with_max_cycles(full.stats.cycles),
                None,
            )
            .unwrap();
        assert!(matches!(out, RunOutcome::Completed(_)));
    }

    #[test]
    fn error_retryability() {
        assert!(SimError::Watchdog { cycle: 1 }.is_retryable());
        assert!(SimError::Truncated {
            reason: StopReason::Deadline
        }
        .is_retryable());
        assert!(!SimError::Checkpoint { reason: "x".into() }.is_retryable());
    }

    #[test]
    fn idle_breakdown_sums_to_unissued_cycles() {
        let k = streaming_kernel(8, 64);
        let r = simulate(&small_cfg(), &k).unwrap();
        let occ = &r.stats.occupancy;
        assert_eq!(
            occ.sm_cycles,
            r.stats.cycles * 2,
            "2 SMs accumulate once per cycle"
        );
        assert!(r.stats.idle.total() <= occ.sm_cycles);
        assert!(
            r.stats.idle.memory > 0,
            "a streaming kernel stalls on memory"
        );
    }
}
