//! The engine-side metrics sampler: wires a [`MetricsRegistry`] to the
//! two-phase cycle loop.
//!
//! [`MetricsSampler::new`] registers the standard series layout —
//! aggregate rates over the run counters (issued instructions, issue
//! cycles, the idle-reason breakdown, swap traffic, CTA completions),
//! aggregate levels over the residency state (resident/active warps and
//! CTAs, allocated register and shared-memory bytes, MSHR occupancy,
//! partition queues) and a per-window distribution of per-SM issue
//! balance — plus a small per-SM set (issued instructions, resident and
//! active warps, resident CTAs; the last is what the static occupancy
//! model's cross-validation oracle compares its bounds against). The
//! CPI-stack attribution rides along as three aggregate empty-split
//! rates (`cpi_empty_scheduling` / `cpi_empty_capacity` /
//! `cpi_empty_drain`) and a per-SM top level (`cpi_issued` /
//! `cpi_stalled` / `cpi_empty`), windowed under the same conservation
//! identity as the run totals.
//!
//! [`MetricsSampler::seal_window`] runs at the top of the cycle loop
//! whenever `cycle` is a window boundary, *before* the cycle executes, so
//! a window covers exactly `[k·w, (k+1)·w)`. A truncated run returns
//! before the boundary close at the truncation cycle; the resumed run's
//! first boundary seals that same window, so stitched series equal an
//! uninterrupted run's byte-for-byte (rates carry their cumulative
//! baselines inside the registry snapshot).

use crate::sm::Sm;
use crate::stats::RunStats;
use vt_mem::MemSystem;
use vt_trace::{MetricsRegistry, SeriesId, SeriesKind};

/// Per-SM series handles, indexed by SM id.
#[derive(Debug, Clone, Copy)]
struct PerSmIds {
    warp_instrs: SeriesId,
    resident_warps: SeriesId,
    active_warps: SeriesId,
    resident_ctas: SeriesId,
    cpi_issued: SeriesId,
    cpi_stalled: SeriesId,
    cpi_empty: SeriesId,
}

/// Aggregate rate-series handles, one per cumulative run counter.
#[derive(Debug, Clone, Copy)]
struct AggRates {
    warp_instrs: SeriesId,
    thread_instrs: SeriesId,
    issue_cycles: SeriesId,
    idle_no_warps: SeriesId,
    idle_memory: SeriesId,
    idle_pipeline: SeriesId,
    idle_barrier: SeriesId,
    idle_swapping: SeriesId,
    idle_other: SeriesId,
    swaps_in: SeriesId,
    swaps_out: SeriesId,
    ctas_completed: SeriesId,
    cpi_empty_scheduling: SeriesId,
    cpi_empty_capacity: SeriesId,
    cpi_empty_drain: SeriesId,
}

/// Aggregate level-series handles, one per instantaneous quantity.
#[derive(Debug, Clone, Copy)]
struct AggLevels {
    resident_warps: SeriesId,
    active_warps: SeriesId,
    resident_ctas: SeriesId,
    active_ctas: SeriesId,
    reg_bytes: SeriesId,
    smem_bytes: SeriesId,
    mshr_in_flight: SeriesId,
    partition_queue: SeriesId,
}

/// Owns the registry and the series handles for the standard layout.
#[derive(Debug)]
pub struct MetricsSampler {
    registry: MetricsRegistry,
    rates: AggRates,
    levels: AggLevels,
    issue_balance: SeriesId,
    per_sm: Vec<PerSmIds>,
}

impl MetricsSampler {
    /// A fresh sampler sealing a window every `window` cycles, with
    /// per-SM series for `num_sms` SMs.
    pub fn new(window: u64, num_sms: usize) -> MetricsSampler {
        let mut m = MetricsRegistry::new(window);
        let rates = AggRates {
            warp_instrs: m.rate("warp_instrs", None),
            thread_instrs: m.rate("thread_instrs", None),
            issue_cycles: m.rate("issue_cycles", None),
            idle_no_warps: m.rate("idle_no_warps", None),
            idle_memory: m.rate("idle_memory", None),
            idle_pipeline: m.rate("idle_pipeline", None),
            idle_barrier: m.rate("idle_barrier", None),
            idle_swapping: m.rate("idle_swapping", None),
            idle_other: m.rate("idle_other", None),
            swaps_in: m.rate("swaps_in", None),
            swaps_out: m.rate("swaps_out", None),
            ctas_completed: m.rate("ctas_completed", None),
            cpi_empty_scheduling: m.rate("cpi_empty_scheduling", None),
            cpi_empty_capacity: m.rate("cpi_empty_capacity", None),
            cpi_empty_drain: m.rate("cpi_empty_drain", None),
        };
        let levels = AggLevels {
            resident_warps: m.level("resident_warps", None),
            active_warps: m.level("active_warps", None),
            resident_ctas: m.level("resident_ctas", None),
            active_ctas: m.level("active_ctas", None),
            reg_bytes: m.level("reg_bytes", None),
            smem_bytes: m.level("smem_bytes", None),
            mshr_in_flight: m.level("mshr_in_flight", None),
            partition_queue: m.level("partition_queue", None),
        };
        let issue_balance = m.dist("sm_issue_balance", None);
        let per_sm = (0..num_sms)
            .map(|i| {
                let sm = Some(i as u32);
                PerSmIds {
                    warp_instrs: m.rate("warp_instrs", sm),
                    resident_warps: m.level("resident_warps", sm),
                    active_warps: m.level("active_warps", sm),
                    resident_ctas: m.level("resident_ctas", sm),
                    cpi_issued: m.rate("cpi_issued", sm),
                    cpi_stalled: m.rate("cpi_stalled", sm),
                    cpi_empty: m.rate("cpi_empty", sm),
                }
            })
            .collect();
        MetricsSampler {
            registry: m,
            rates,
            levels,
            issue_balance,
            per_sm,
        }
    }

    /// Revives a sampler from a checkpointed registry, re-deriving the
    /// series handles. The restored registry must carry exactly the
    /// layout [`MetricsSampler::new`] registers (same names, scopes and
    /// kinds in the same order) for the given SM count.
    ///
    /// # Errors
    ///
    /// Returns a message when the layout does not match.
    pub fn from_registry(
        registry: MetricsRegistry,
        num_sms: usize,
    ) -> Result<MetricsSampler, String> {
        let fresh = MetricsSampler::new(registry.window(), num_sms);
        if registry.len() != fresh.registry.len() {
            return Err(format!(
                "checkpoint metrics carry {} series, expected {}",
                registry.len(),
                fresh.registry.len()
            ));
        }
        for (have, want) in registry.series().iter().zip(fresh.registry.series()) {
            let same_kind = matches!(
                (&have.kind, &want.kind),
                (SeriesKind::Rate { .. }, SeriesKind::Rate { .. })
                    | (SeriesKind::Level { .. }, SeriesKind::Level { .. })
                    | (SeriesKind::Dist { .. }, SeriesKind::Dist { .. })
            );
            if have.name != want.name || have.sm != want.sm || !same_kind {
                return Err(format!(
                    "checkpoint metrics series {:?}/{:?} does not match the engine layout",
                    have.name, have.sm
                ));
            }
        }
        Ok(MetricsSampler { registry, ..fresh })
    }

    /// Cycles per window.
    pub fn window(&self) -> u64 {
        self.registry.window()
    }

    /// Read access to the registry (for checkpointing).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the sampler, yielding the registry for the stats
    /// epilogue.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    /// Samples every series at a window boundary and seals the window.
    /// `lanes` yields each SM with its private stats block in ascending
    /// SM order; `gpu_stats` is the dispatcher-level block the lane stats
    /// merge into at the epilogue, included so aggregate rates stay exact
    /// even for counters accrued outside the lanes.
    pub fn seal_window<'a>(
        &mut self,
        gpu_stats: &RunStats,
        lanes: impl Iterator<Item = (&'a Sm, &'a RunStats)>,
        mem: &MemSystem,
    ) {
        let mut sum = RunStats::default();
        let mut resident_warps = 0u64;
        let mut active_warps = 0u64;
        let mut resident_ctas = 0u64;
        let mut active_ctas = 0u64;
        let mut reg_bytes = 0u64;
        let mut smem_bytes = 0u64;
        for (i, (sm, stats)) in lanes.enumerate() {
            sum.warp_instrs += stats.warp_instrs;
            sum.thread_instrs += stats.thread_instrs;
            sum.issue_cycles += stats.issue_cycles;
            sum.ctas_completed += stats.ctas_completed;
            sum.idle.merge(&stats.idle);
            sum.empty.merge(&stats.empty);
            sum.swaps.merge(&stats.swaps);
            resident_warps += u64::from(sm.resident_warps());
            active_warps += u64::from(sm.active_warps());
            resident_ctas += u64::from(sm.resident_ctas());
            active_ctas += u64::from(sm.slot_ctas());
            reg_bytes += u64::from(sm.resident_reg_bytes());
            smem_bytes += u64::from(sm.resident_smem_bytes());
            let ids = self.per_sm[i];
            let delta = self
                .registry
                .sample_total(ids.warp_instrs, stats.warp_instrs);
            self.registry.observe(self.issue_balance, delta);
            self.registry
                .sample_level(ids.resident_warps, u64::from(sm.resident_warps()));
            self.registry
                .sample_level(ids.active_warps, u64::from(sm.active_warps()));
            self.registry
                .sample_level(ids.resident_ctas, u64::from(sm.resident_ctas()));
            // Per-SM top level of the CPI stack; the aggregate idle_*
            // rates expose the stalled sub-buckets, the cpi_empty_*
            // aggregates the empty ones.
            self.registry
                .sample_total(ids.cpi_issued, stats.issue_cycles);
            self.registry
                .sample_total(ids.cpi_stalled, stats.idle.total() - stats.idle.no_warps);
            self.registry
                .sample_total(ids.cpi_empty, stats.idle.no_warps);
        }
        let m = &mut self.registry;
        let r = &self.rates;
        let g = gpu_stats;
        m.sample_total(r.warp_instrs, g.warp_instrs + sum.warp_instrs);
        m.sample_total(r.thread_instrs, g.thread_instrs + sum.thread_instrs);
        m.sample_total(r.issue_cycles, g.issue_cycles + sum.issue_cycles);
        m.sample_total(r.idle_no_warps, g.idle.no_warps + sum.idle.no_warps);
        m.sample_total(r.idle_memory, g.idle.memory + sum.idle.memory);
        m.sample_total(r.idle_pipeline, g.idle.pipeline + sum.idle.pipeline);
        m.sample_total(r.idle_barrier, g.idle.barrier + sum.idle.barrier);
        m.sample_total(r.idle_swapping, g.idle.swapping + sum.idle.swapping);
        m.sample_total(r.idle_other, g.idle.other + sum.idle.other);
        m.sample_total(r.swaps_in, g.swaps.swaps_in + sum.swaps.swaps_in);
        m.sample_total(r.swaps_out, g.swaps.swaps_out + sum.swaps.swaps_out);
        m.sample_total(r.ctas_completed, g.ctas_completed + sum.ctas_completed);
        m.sample_total(
            r.cpi_empty_scheduling,
            g.empty.scheduling + sum.empty.scheduling,
        );
        m.sample_total(r.cpi_empty_capacity, g.empty.capacity + sum.empty.capacity);
        m.sample_total(r.cpi_empty_drain, g.empty.drain + sum.empty.drain);
        let l = &self.levels;
        m.sample_level(l.resident_warps, resident_warps);
        m.sample_level(l.active_warps, active_warps);
        m.sample_level(l.resident_ctas, resident_ctas);
        m.sample_level(l.active_ctas, active_ctas);
        m.sample_level(l.reg_bytes, reg_bytes);
        m.sample_level(l.smem_bytes, smem_bytes);
        m.sample_level(l.mshr_in_flight, mem.mshr_in_flight());
        m.sample_level(l.partition_queue, mem.partition_queue_len());
        m.seal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_registers_aggregate_and_per_sm_series() {
        let s = MetricsSampler::new(256, 2);
        let m = s.registry();
        assert_eq!(m.window(), 256);
        assert_eq!(m.len(), 15 + 8 + 1 + 7 * 2);
        assert!(m.get("warp_instrs", None).is_some());
        assert!(m.get("warp_instrs", Some(1)).is_some());
        assert!(m.get("resident_ctas", Some(0)).is_some());
        assert!(m.get("sm_issue_balance", None).is_some());
        assert!(m.get("mshr_in_flight", None).is_some());
        assert!(m.get("cpi_empty_scheduling", None).is_some());
        assert!(m.get("cpi_issued", Some(1)).is_some());
        assert!(m.get("cpi_empty", Some(0)).is_some());
    }

    #[test]
    fn restore_validates_the_layout() {
        let s = MetricsSampler::new(128, 3);
        let reg = s.into_registry();
        assert!(MetricsSampler::from_registry(reg.clone(), 3).is_ok());
        assert!(
            MetricsSampler::from_registry(reg, 2).is_err(),
            "SM count mismatch must be rejected"
        );
        let foreign = MetricsRegistry::new(128);
        assert!(MetricsSampler::from_registry(foreign, 3).is_err());
    }
}
