//! Per-warp runtime state.

use crate::scoreboard::Scoreboard;
use vt_isa::{SimtEntry, SimtStack, WARP_SIZE};
use vt_json::{elem_u64, req, req_array, req_bool, req_u64, Json};

/// The runtime state of one warp resident on an SM.
///
/// This bundles exactly the state the Virtual Thread paper splits into two
/// classes: the *scheduling state* (PC + SIMT stack + scoreboard — what VT
/// saves to the context buffer on a swap) and the *capacity state* (the
/// register values, which stay resident on chip for active and inactive
/// CTAs alike).
#[derive(Debug, Clone)]
pub struct WarpRt {
    /// Slot of the owning CTA in the SM's CTA table.
    pub cta_slot: usize,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// First thread id of this warp within the CTA.
    pub first_tid: u32,
    /// PC + reconvergence stack.
    pub stack: SimtStack,
    /// In-flight destination registers.
    pub scoreboard: Scoreboard,
    /// Register values, `[lane * regs_per_thread + reg]`.
    pub regs: Vec<u32>,
    /// Registers per thread (row stride of `regs`).
    pub regs_per_thread: u16,
    /// Waiting at a CTA barrier.
    pub waiting_barrier: bool,
    /// Cycle this warp arrived at the barrier it is waiting on (valid
    /// while `waiting_barrier`); feeds the barrier-wait histogram.
    pub barrier_since: u64,
    /// Outstanding global load/atomic *instructions* (not transactions).
    pub pending_loads: u32,
    /// Outstanding loads known to have missed the L1 — the long-latency
    /// stalls the Virtual Thread swap trigger reacts to.
    pub long_pending_loads: u32,
    /// All lanes exited.
    pub done: bool,
    /// Global launch order, used by the greedy-then-oldest scheduler.
    pub age: u64,
}

impl WarpRt {
    /// Creates the state for a fresh warp of `lanes` live threads.
    pub fn new(
        cta_slot: usize,
        warp_in_cta: u32,
        lanes: u32,
        regs_per_thread: u16,
        age: u64,
    ) -> WarpRt {
        let mask = if lanes >= WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        WarpRt {
            cta_slot,
            warp_in_cta,
            first_tid: warp_in_cta * WARP_SIZE,
            stack: SimtStack::new(mask),
            scoreboard: Scoreboard::new(),
            regs: vec![0; WARP_SIZE as usize * regs_per_thread as usize],
            regs_per_thread,
            waiting_barrier: false,
            barrier_since: 0,
            pending_loads: 0,
            long_pending_loads: 0,
            done: false,
            age,
        }
    }

    /// Register `reg` of `lane`.
    pub fn reg(&self, lane: u32, reg: u16) -> u32 {
        self.regs[lane as usize * self.regs_per_thread as usize + reg as usize]
    }

    /// The register frame of `lane`.
    pub fn lane_regs(&self, lane: u32) -> &[u32] {
        let stride = self.regs_per_thread as usize;
        let base = lane as usize * stride;
        &self.regs[base..base + stride]
    }

    /// Writes register `reg` of `lane`.
    pub fn set_reg(&mut self, lane: u32, reg: u16, value: u32) {
        self.regs[lane as usize * self.regs_per_thread as usize + reg as usize] = value;
    }

    /// Serializes the complete warp state — scheduling state (SIMT stack,
    /// scoreboard, barrier flags) and capacity state (register values) —
    /// for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("cta_slot".into(), Json::UInt(self.cta_slot as u64)),
            (
                "warp_in_cta".into(),
                Json::UInt(u64::from(self.warp_in_cta)),
            ),
            ("first_tid".into(), Json::UInt(u64::from(self.first_tid))),
            (
                "stack".into(),
                Json::Array(
                    self.stack
                        .entries()
                        .iter()
                        .map(|e| {
                            Json::Array(vec![
                                Json::UInt(e.pc as u64),
                                match e.rpc {
                                    Some(rpc) => Json::UInt(rpc as u64),
                                    None => Json::Null,
                                },
                                Json::UInt(u64::from(e.mask)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stack_max_depth".into(),
                Json::UInt(self.stack.max_depth() as u64),
            ),
            ("scoreboard".into(), self.scoreboard.snapshot()),
            (
                "regs".into(),
                Json::Array(
                    self.regs
                        .iter()
                        .map(|&r| Json::UInt(u64::from(r)))
                        .collect(),
                ),
            ),
            (
                "regs_per_thread".into(),
                Json::UInt(u64::from(self.regs_per_thread)),
            ),
            ("waiting_barrier".into(), Json::Bool(self.waiting_barrier)),
            ("barrier_since".into(), Json::UInt(self.barrier_since)),
            (
                "pending_loads".into(),
                Json::UInt(u64::from(self.pending_loads)),
            ),
            (
                "long_pending_loads".into(),
                Json::UInt(u64::from(self.long_pending_loads)),
            ),
            ("done".into(), Json::Bool(self.done)),
            ("age".into(), Json::UInt(self.age)),
        ])
    }

    /// Rebuilds a warp from [`WarpRt::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<WarpRt, String> {
        let mut entries = Vec::new();
        for item in req_array(v, "stack")? {
            let a = item.as_array().ok_or("SIMT entry is not an array")?;
            let rpc = match a.get(1) {
                Some(Json::Null) => None,
                Some(j) => Some(j.as_u64().ok_or("SIMT rpc is not a u64")? as usize),
                None => return Err("SIMT entry too short".to_string()),
            };
            entries.push(SimtEntry {
                pc: elem_u64(a, 0)? as usize,
                rpc,
                mask: elem_u64(a, 2)? as u32,
            });
        }
        let stack = SimtStack::from_saved(entries, req_u64(v, "stack_max_depth")? as usize);
        let regs = req_array(v, "regs")?
            .iter()
            .map(|r| r.as_u64().map(|x| x as u32).ok_or("reg is not a u64"))
            .collect::<Result<Vec<u32>, &str>>()?;
        Ok(WarpRt {
            cta_slot: req_u64(v, "cta_slot")? as usize,
            warp_in_cta: req_u64(v, "warp_in_cta")? as u32,
            first_tid: req_u64(v, "first_tid")? as u32,
            stack,
            scoreboard: Scoreboard::restore(req(v, "scoreboard")?)?,
            regs,
            regs_per_thread: req_u64(v, "regs_per_thread")? as u16,
            waiting_barrier: req_bool(v, "waiting_barrier")?,
            barrier_since: req_u64(v, "barrier_since")?,
            pending_loads: req_u64(v, "pending_loads")? as u32,
            long_pending_loads: req_u64(v, "long_pending_loads")? as u32,
            done: req_bool(v, "done")?,
            age: req_u64(v, "age")?,
        })
    }

    /// Whether the warp is parked for a long-latency event: waiting at a
    /// barrier or holding outstanding global loads. Used by the swap
    /// trigger.
    pub fn long_stalled(&self) -> bool {
        self.waiting_barrier || self.pending_loads > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_warp_state() {
        let w = WarpRt::new(3, 2, 32, 8, 17);
        assert_eq!(w.first_tid, 64);
        assert_eq!(w.stack.active_mask(), u32::MAX);
        assert!(!w.done);
        assert_eq!(w.age, 17);
        assert_eq!(w.regs.len(), 32 * 8);
    }

    #[test]
    fn partial_warp_mask() {
        let w = WarpRt::new(0, 0, 5, 4, 0);
        assert_eq!(w.stack.active_mask(), 0b11111);
    }

    #[test]
    fn reg_accessors_are_lane_major() {
        let mut w = WarpRt::new(0, 0, 32, 4, 0);
        w.set_reg(2, 3, 42);
        assert_eq!(w.reg(2, 3), 42);
        assert_eq!(w.lane_regs(2), &[0, 0, 0, 42]);
        assert_eq!(w.reg(3, 3), 0);
    }

    #[test]
    fn long_stall_detection() {
        let mut w = WarpRt::new(0, 0, 32, 4, 0);
        assert!(!w.long_stalled());
        w.pending_loads = 1;
        assert!(w.long_stalled());
        w.pending_loads = 0;
        w.waiting_barrier = true;
        assert!(w.long_stalled());
    }
}
