//! Per-warp runtime state.

use crate::scoreboard::Scoreboard;
use vt_isa::{SimtStack, WARP_SIZE};

/// The runtime state of one warp resident on an SM.
///
/// This bundles exactly the state the Virtual Thread paper splits into two
/// classes: the *scheduling state* (PC + SIMT stack + scoreboard — what VT
/// saves to the context buffer on a swap) and the *capacity state* (the
/// register values, which stay resident on chip for active and inactive
/// CTAs alike).
#[derive(Debug, Clone)]
pub struct WarpRt {
    /// Slot of the owning CTA in the SM's CTA table.
    pub cta_slot: usize,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// First thread id of this warp within the CTA.
    pub first_tid: u32,
    /// PC + reconvergence stack.
    pub stack: SimtStack,
    /// In-flight destination registers.
    pub scoreboard: Scoreboard,
    /// Register values, `[lane * regs_per_thread + reg]`.
    pub regs: Vec<u32>,
    /// Registers per thread (row stride of `regs`).
    pub regs_per_thread: u16,
    /// Waiting at a CTA barrier.
    pub waiting_barrier: bool,
    /// Cycle this warp arrived at the barrier it is waiting on (valid
    /// while `waiting_barrier`); feeds the barrier-wait histogram.
    pub barrier_since: u64,
    /// Outstanding global load/atomic *instructions* (not transactions).
    pub pending_loads: u32,
    /// Outstanding loads known to have missed the L1 — the long-latency
    /// stalls the Virtual Thread swap trigger reacts to.
    pub long_pending_loads: u32,
    /// All lanes exited.
    pub done: bool,
    /// Global launch order, used by the greedy-then-oldest scheduler.
    pub age: u64,
}

impl WarpRt {
    /// Creates the state for a fresh warp of `lanes` live threads.
    pub fn new(
        cta_slot: usize,
        warp_in_cta: u32,
        lanes: u32,
        regs_per_thread: u16,
        age: u64,
    ) -> WarpRt {
        let mask = if lanes >= WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        WarpRt {
            cta_slot,
            warp_in_cta,
            first_tid: warp_in_cta * WARP_SIZE,
            stack: SimtStack::new(mask),
            scoreboard: Scoreboard::new(),
            regs: vec![0; WARP_SIZE as usize * regs_per_thread as usize],
            regs_per_thread,
            waiting_barrier: false,
            barrier_since: 0,
            pending_loads: 0,
            long_pending_loads: 0,
            done: false,
            age,
        }
    }

    /// Register `reg` of `lane`.
    pub fn reg(&self, lane: u32, reg: u16) -> u32 {
        self.regs[lane as usize * self.regs_per_thread as usize + reg as usize]
    }

    /// The register frame of `lane`.
    pub fn lane_regs(&self, lane: u32) -> &[u32] {
        let stride = self.regs_per_thread as usize;
        let base = lane as usize * stride;
        &self.regs[base..base + stride]
    }

    /// Writes register `reg` of `lane`.
    pub fn set_reg(&mut self, lane: u32, reg: u16, value: u32) {
        self.regs[lane as usize * self.regs_per_thread as usize + reg as usize] = value;
    }

    /// Whether the warp is parked for a long-latency event: waiting at a
    /// barrier or holding outstanding global loads. Used by the swap
    /// trigger.
    pub fn long_stalled(&self) -> bool {
        self.waiting_barrier || self.pending_loads > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_warp_state() {
        let w = WarpRt::new(3, 2, 32, 8, 17);
        assert_eq!(w.first_tid, 64);
        assert_eq!(w.stack.active_mask(), u32::MAX);
        assert!(!w.done);
        assert_eq!(w.age, 17);
        assert_eq!(w.regs.len(), 32 * 8);
    }

    #[test]
    fn partial_warp_mask() {
        let w = WarpRt::new(0, 0, 5, 4, 0);
        assert_eq!(w.stack.active_mask(), 0b11111);
    }

    #[test]
    fn reg_accessors_are_lane_major() {
        let mut w = WarpRt::new(0, 0, 32, 4, 0);
        w.set_reg(2, 3, 42);
        assert_eq!(w.reg(2, 3), 42);
        assert_eq!(w.lane_regs(2), &[0, 0, 0, 42]);
        assert_eq!(w.reg(3, 3), 0);
    }

    #[test]
    fn long_stall_detection() {
        let mut w = WarpRt::new(0, 0, 32, 4, 0);
        assert!(!w.long_stalled());
        w.pending_loads = 1;
        assert!(w.long_stalled());
        w.pending_loads = 0;
        w.waiting_barrier = true;
        assert!(w.long_stalled());
    }
}
