//! Per-PC hotspot profiling: instruction-level attribution of the same
//! SM-cycles the [`crate::stats::CpiStack`] accounts for at kernel
//! granularity, plus per-instruction memory behaviour (round-trip
//! latency, observed coalescing width, bank-conflict rounds) and branch
//! divergence activity.
//!
//! # Accounting model
//!
//! Profiling charges *SM-cycles* so every bucket is conserved against the
//! kernel-level stack:
//!
//! * `issued` — each SM-cycle with at least one issue is charged to the
//!   PC of the *first* instruction issued that cycle, so
//!   `Σ pcs.issued == cpi.issued` exactly. `warp_issues` and
//!   `thread_instrs` count every issue (per-scheduler) for ranking.
//! * Stall cycles are blamed on the **oldest-unready instruction**: the
//!   current PC of the first warp, in age order, whose readiness class
//!   matches the bucket the cycle was charged to (the classification in
//!   `Sm::accumulate_stats` is unchanged — profiling observes it). A
//!   barrier-stalled warp has already consumed its `Bar`, so barrier
//!   cycles blame the first instruction *after* the barrier.
//! * Stall cycles with no blamable instruction — swap transitions, or an
//!   all-inactive SM with no memory-waiting warp — land in
//!   [`PcProfile::unattributed`], keeping the identity
//!   `Σ pcs.stalls[r] + unattributed[r] == cpi.<stall r>` exact.
//! * Empty cycles (no resident warps) have no instruction by definition
//!   and are not attributed at all.
//!
//! The profile is per-SM-lane state merged additively in ascending SM
//! order, so results are bit-identical at any worker count, and it rides
//! [`crate::stats::RunStats`] through checkpoint/resume.

use vt_json::{req, req_array, req_u64, Json};
use vt_trace::Histogram;

/// Why a non-empty SM-cycle issued nothing — the stall half of the
/// [`crate::stats::CpiStack`] taxonomy, indexed for per-PC arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Blocked on an outstanding global-memory result.
    Memory,
    /// Blocked on short ALU/SFU scoreboard dependencies.
    Pipeline,
    /// All unfinished warps waiting at a barrier.
    Barrier,
    /// Active CTAs mid context switch.
    Swap,
    /// Structural hazards and anything unclassified.
    Structural,
}

impl StallReason {
    /// All reasons, in `CpiStack` bucket order.
    pub const ALL: [StallReason; STALL_REASONS] = [
        StallReason::Memory,
        StallReason::Pipeline,
        StallReason::Barrier,
        StallReason::Swap,
        StallReason::Structural,
    ];

    /// Index into per-PC stall arrays.
    pub fn index(self) -> usize {
        match self {
            StallReason::Memory => 0,
            StallReason::Pipeline => 1,
            StallReason::Barrier => 2,
            StallReason::Swap => 3,
            StallReason::Structural => 4,
        }
    }

    /// The matching `CpiStack` bucket name.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Memory => "stall_memory",
            StallReason::Pipeline => "stall_pipeline",
            StallReason::Barrier => "stall_barrier",
            StallReason::Swap => "stall_swap",
            StallReason::Structural => "stall_structural",
        }
    }
}

/// Number of stall reasons ([`StallReason::ALL`] length).
pub const STALL_REASONS: usize = 5;

/// Dynamic counters for one program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcCounters {
    /// SM-cycles charged to this PC as the cycle's first issue
    /// (`Σ == CpiStack::issued`).
    pub issued: u64,
    /// Warp instructions issued from this PC (every scheduler counts).
    pub warp_issues: u64,
    /// Thread instructions executed from this PC.
    pub thread_instrs: u64,
    /// Stall SM-cycles blamed on this PC, per [`StallReason`] index.
    pub stalls: [u64; STALL_REASONS],
    /// Round-trip latency of loads/atomics issued at this PC (issue to
    /// scoreboard release), in cycles.
    pub mem_latency: Histogram,
    /// Global accesses issued at this PC (coalescer invocations).
    pub mem_accesses: u64,
    /// Total coalesced transactions those accesses produced. The observed
    /// width is `mem_lines / mem_accesses`.
    pub mem_lines: u64,
    /// Worst (largest) transaction count one warp access produced.
    pub mem_lines_max: u64,
    /// Shared-memory accesses issued at this PC.
    pub smem_accesses: u64,
    /// Total bank-conflict rounds those accesses serialised into.
    pub smem_rounds: u64,
    /// Conditional branches executed at this PC (warp granularity).
    pub branches: u64,
    /// How many of them diverged.
    pub divergent: u64,
}

impl Default for PcCounters {
    fn default() -> PcCounters {
        PcCounters {
            issued: 0,
            warp_issues: 0,
            thread_instrs: 0,
            stalls: [0; STALL_REASONS],
            mem_latency: Histogram::default(),
            mem_accesses: 0,
            mem_lines: 0,
            mem_lines_max: 0,
            smem_accesses: 0,
            smem_rounds: 0,
            branches: 0,
            divergent: 0,
        }
    }
}

impl PcCounters {
    /// Total stall SM-cycles blamed on this PC, across all reasons.
    pub fn stalled(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Whether nothing was ever recorded against this PC.
    pub fn is_empty(&self) -> bool {
        *self == PcCounters::default()
    }

    fn merge(&mut self, o: &PcCounters) {
        self.issued += o.issued;
        self.warp_issues += o.warp_issues;
        self.thread_instrs += o.thread_instrs;
        for (a, b) in self.stalls.iter_mut().zip(&o.stalls) {
            *a += b;
        }
        self.mem_latency.merge(&o.mem_latency);
        self.mem_accesses += o.mem_accesses;
        self.mem_lines += o.mem_lines;
        self.mem_lines_max = self.mem_lines_max.max(o.mem_lines_max);
        self.smem_accesses += o.smem_accesses;
        self.smem_rounds += o.smem_rounds;
        self.branches += o.branches;
        self.divergent += o.divergent;
    }

    fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("issued".into(), Json::UInt(self.issued)),
            ("warp_issues".into(), Json::UInt(self.warp_issues)),
            ("thread_instrs".into(), Json::UInt(self.thread_instrs)),
            (
                "stalls".into(),
                Json::Array(self.stalls.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            ("mem_latency".into(), self.mem_latency.snapshot()),
            ("mem_accesses".into(), Json::UInt(self.mem_accesses)),
            ("mem_lines".into(), Json::UInt(self.mem_lines)),
            ("mem_lines_max".into(), Json::UInt(self.mem_lines_max)),
            ("smem_accesses".into(), Json::UInt(self.smem_accesses)),
            ("smem_rounds".into(), Json::UInt(self.smem_rounds)),
            ("branches".into(), Json::UInt(self.branches)),
            ("divergent".into(), Json::UInt(self.divergent)),
        ])
    }

    fn restore(v: &Json) -> Result<PcCounters, String> {
        let raw = req_array(v, "stalls")?;
        if raw.len() != STALL_REASONS {
            return Err(format!(
                "expected {STALL_REASONS} stall buckets, got {}",
                raw.len()
            ));
        }
        let mut stalls = [0u64; STALL_REASONS];
        for (slot, item) in stalls.iter_mut().zip(raw) {
            *slot = item.as_u64().ok_or("non-integer stall bucket")?;
        }
        Ok(PcCounters {
            issued: req_u64(v, "issued")?,
            warp_issues: req_u64(v, "warp_issues")?,
            thread_instrs: req_u64(v, "thread_instrs")?,
            stalls,
            mem_latency: Histogram::restore(req(v, "mem_latency")?)?,
            mem_accesses: req_u64(v, "mem_accesses")?,
            mem_lines: req_u64(v, "mem_lines")?,
            mem_lines_max: req_u64(v, "mem_lines_max")?,
            smem_accesses: req_u64(v, "smem_accesses")?,
            smem_rounds: req_u64(v, "smem_rounds")?,
            branches: req_u64(v, "branches")?,
            divergent: req_u64(v, "divergent")?,
        })
    }
}

/// The per-PC hotspot profile of one run (or one SM lane of it): one
/// [`PcCounters`] slot per program instruction, plus the stall cycles
/// that had no blamable instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcProfile {
    pcs: Vec<PcCounters>,
    /// Stall SM-cycles with no blamable instruction, per
    /// [`StallReason`] index (swap transitions never have one).
    pub unattributed: [u64; STALL_REASONS],
}

impl PcProfile {
    /// An empty profile for a program of `len` instructions.
    pub fn new(len: usize) -> PcProfile {
        PcProfile {
            pcs: vec![PcCounters::default(); len],
            unattributed: [0; STALL_REASONS],
        }
    }

    /// Number of program counters covered (the program length).
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the profile covers an empty program.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The counters of every PC, indexed by PC.
    pub fn counters(&self) -> &[PcCounters] {
        &self.pcs
    }

    /// The counters of one PC, if in range.
    pub fn get(&self, pc: usize) -> Option<&PcCounters> {
        self.pcs.get(pc)
    }

    /// Σ issued SM-cycles over all PCs (equals `CpiStack::issued`).
    pub fn issued_total(&self) -> u64 {
        self.pcs.iter().map(|c| c.issued).sum()
    }

    /// Σ stall SM-cycles blamed on PCs for `r`, *excluding* the
    /// unattributed remainder.
    pub fn stall_total(&self, r: StallReason) -> u64 {
        self.pcs.iter().map(|c| c.stalls[r.index()]).sum()
    }

    /// Charges one issued SM-cycle to `pc`.
    pub fn record_issue_cycle(&mut self, pc: usize) {
        if let Some(c) = self.pcs.get_mut(pc) {
            c.issued += 1;
        }
    }

    /// Records one warp instruction issued from `pc` over `lanes` threads.
    pub fn record_warp_issue(&mut self, pc: usize, lanes: u32) {
        if let Some(c) = self.pcs.get_mut(pc) {
            c.warp_issues += 1;
            c.thread_instrs += u64::from(lanes);
        }
    }

    /// Charges one stall SM-cycle of reason `r` to `pc`, or to the
    /// unattributed remainder when no instruction is blamable.
    pub fn record_stall(&mut self, pc: Option<usize>, r: StallReason) {
        match pc.and_then(|pc| self.pcs.get_mut(pc)) {
            Some(c) => c.stalls[r.index()] += 1,
            None => self.unattributed[r.index()] += 1,
        }
    }

    /// Records a completed load/atomic round trip issued at `pc`.
    pub fn record_mem_latency(&mut self, pc: usize, cycles: u64) {
        if let Some(c) = self.pcs.get_mut(pc) {
            c.mem_latency.record(cycles);
        }
    }

    /// Records one global access at `pc` that coalesced into `lines`
    /// transactions.
    pub fn record_coalesce(&mut self, pc: usize, lines: u64) {
        if let Some(c) = self.pcs.get_mut(pc) {
            c.mem_accesses += 1;
            c.mem_lines += lines;
            c.mem_lines_max = c.mem_lines_max.max(lines);
        }
    }

    /// Records one shared-memory access at `pc` of `rounds` conflict
    /// rounds.
    pub fn record_smem(&mut self, pc: usize, rounds: u64) {
        if let Some(c) = self.pcs.get_mut(pc) {
            c.smem_accesses += 1;
            c.smem_rounds += rounds;
        }
    }

    /// Records one conditional branch executed at `pc`.
    pub fn record_branch(&mut self, pc: usize, divergent: bool) {
        if let Some(c) = self.pcs.get_mut(pc) {
            c.branches += 1;
            if divergent {
                c.divergent += 1;
            }
        }
    }

    /// Adds another profile of the same program into this one. Purely
    /// additive, so folds are independent of lane order.
    ///
    /// # Panics
    ///
    /// Panics if the profiles cover different program lengths.
    pub fn merge(&mut self, o: &PcProfile) {
        assert_eq!(
            self.pcs.len(),
            o.pcs.len(),
            "merging profiles of different programs"
        );
        for (a, b) in self.pcs.iter_mut().zip(&o.pcs) {
            a.merge(b);
        }
        for (a, b) in self.unattributed.iter_mut().zip(&o.unattributed) {
            *a += b;
        }
    }

    /// Serializes the profile for checkpointing. Untouched PCs are
    /// emitted as `null` to keep checkpoints compact.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            (
                "pcs".into(),
                Json::Array(
                    self.pcs
                        .iter()
                        .map(|c| {
                            if c.is_empty() {
                                Json::Null
                            } else {
                                c.snapshot()
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "unattributed".into(),
                Json::Array(self.unattributed.iter().map(|&u| Json::UInt(u)).collect()),
            ),
        ])
    }

    /// Rebuilds a profile from [`PcProfile::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<PcProfile, String> {
        let mut pcs = Vec::new();
        for item in req_array(v, "pcs")? {
            pcs.push(match item {
                Json::Null => PcCounters::default(),
                other => PcCounters::restore(other)?,
            });
        }
        let raw = req_array(v, "unattributed")?;
        if raw.len() != STALL_REASONS {
            return Err(format!(
                "expected {STALL_REASONS} unattributed buckets, got {}",
                raw.len()
            ));
        }
        let mut unattributed = [0u64; STALL_REASONS];
        for (slot, item) in unattributed.iter_mut().zip(raw) {
            *slot = item.as_u64().ok_or("non-integer unattributed bucket")?;
        }
        Ok(PcProfile { pcs, unattributed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_lands_in_the_right_buckets() {
        let mut p = PcProfile::new(4);
        p.record_issue_cycle(1);
        p.record_warp_issue(1, 32);
        p.record_warp_issue(1, 7);
        p.record_stall(Some(2), StallReason::Memory);
        p.record_stall(None, StallReason::Swap);
        p.record_mem_latency(2, 400);
        p.record_coalesce(2, 8);
        p.record_coalesce(2, 2);
        p.record_smem(3, 4);
        p.record_branch(0, true);
        p.record_branch(0, false);
        assert_eq!(p.get(1).unwrap().issued, 1);
        assert_eq!(p.get(1).unwrap().warp_issues, 2);
        assert_eq!(p.get(1).unwrap().thread_instrs, 39);
        assert_eq!(p.get(2).unwrap().stalls[StallReason::Memory.index()], 1);
        assert_eq!(p.unattributed[StallReason::Swap.index()], 1);
        assert_eq!(p.get(2).unwrap().mem_latency.count, 1);
        assert_eq!(p.get(2).unwrap().mem_accesses, 2);
        assert_eq!(p.get(2).unwrap().mem_lines, 10);
        assert_eq!(p.get(2).unwrap().mem_lines_max, 8);
        assert_eq!(p.get(3).unwrap().smem_rounds, 4);
        assert_eq!(p.get(0).unwrap().branches, 2);
        assert_eq!(p.get(0).unwrap().divergent, 1);
        assert_eq!(p.issued_total(), 1);
        assert_eq!(p.stall_total(StallReason::Memory), 1);
    }

    #[test]
    fn out_of_range_records_are_dropped_not_panicking() {
        let mut p = PcProfile::new(1);
        p.record_issue_cycle(5);
        p.record_stall(Some(5), StallReason::Pipeline);
        assert_eq!(p.issued_total(), 0);
        // An out-of-range blame PC falls back to unattributed.
        assert_eq!(p.unattributed[StallReason::Pipeline.index()], 1);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = PcProfile::new(3);
        let mut b = PcProfile::new(3);
        let mut all = PcProfile::new(3);
        a.record_issue_cycle(0);
        all.record_issue_cycle(0);
        a.record_mem_latency(2, 10);
        all.record_mem_latency(2, 10);
        b.record_stall(Some(0), StallReason::Barrier);
        all.record_stall(Some(0), StallReason::Barrier);
        b.record_stall(None, StallReason::Memory);
        all.record_stall(None, StallReason::Memory);
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn snapshot_roundtrips_sparsely() {
        let mut p = PcProfile::new(5);
        p.record_issue_cycle(3);
        p.record_mem_latency(3, 123);
        p.record_stall(None, StallReason::Structural);
        let j = p.snapshot();
        // Untouched PCs serialize as null.
        let pcs = j.get("pcs").and_then(Json::as_array).unwrap();
        assert!(matches!(pcs[0], Json::Null));
        assert!(!matches!(pcs[3], Json::Null));
        let back = PcProfile::restore(&Json::parse(&j.compact()).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn stall_reason_indices_are_canonical() {
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(StallReason::Memory.name(), "stall_memory");
    }
}
