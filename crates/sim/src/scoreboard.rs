//! Per-warp register scoreboard.

use vt_isa::{Instr, Reg};
use vt_json::{req_array, req_u64, Json};

/// Tracks which destination registers of a warp have results in flight.
/// Issue is blocked on RAW and WAW hazards against pending registers.
///
/// Sized for the ISA's maximum of 256 architectural registers per thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scoreboard {
    pending: [u64; 4],
    count: u32,
}

impl Scoreboard {
    /// An empty scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    fn slot(reg: Reg) -> (usize, u64) {
        ((reg.0 / 64) as usize, 1u64 << (reg.0 % 64))
    }

    /// Marks `reg` as having a result in flight.
    pub fn set_pending(&mut self, reg: Reg) {
        let (i, m) = Self::slot(reg);
        if self.pending[i] & m == 0 {
            self.pending[i] |= m;
            self.count += 1;
        }
    }

    /// Clears `reg` (its result wrote back).
    pub fn clear(&mut self, reg: Reg) {
        let (i, m) = Self::slot(reg);
        if self.pending[i] & m != 0 {
            self.pending[i] &= !m;
            self.count -= 1;
        }
    }

    /// Whether `reg` has a result in flight.
    pub fn is_pending(&self, reg: Reg) -> bool {
        let (i, m) = Self::slot(reg);
        self.pending[i] & m != 0
    }

    /// Number of registers in flight.
    pub fn pending_count(&self) -> u32 {
        self.count
    }

    /// Serializes the scoreboard for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            (
                "pending".into(),
                Json::Array(self.pending.iter().map(|&w| Json::UInt(w)).collect()),
            ),
            ("count".into(), Json::UInt(u64::from(self.count))),
        ])
    }

    /// Rebuilds a scoreboard from [`Scoreboard::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<Scoreboard, String> {
        let words = req_array(v, "pending")?;
        if words.len() != 4 {
            return Err(format!("scoreboard has {} words, expected 4", words.len()));
        }
        let mut pending = [0u64; 4];
        for (i, w) in words.iter().enumerate() {
            pending[i] = w.as_u64().ok_or("scoreboard word is not a u64")?;
        }
        Ok(Scoreboard {
            pending,
            count: req_u64(v, "count")? as u32,
        })
    }

    /// Whether `instr` can issue: none of its sources or its destination
    /// may be pending.
    pub fn can_issue(&self, instr: &Instr) -> bool {
        if self.count == 0 {
            return true;
        }
        if let Some(d) = instr.dst() {
            if self.is_pending(d) {
                return false;
            }
        }
        instr
            .sources_fixed()
            .into_iter()
            .flatten()
            .filter_map(|o| o.reg())
            .all(|r| !self.is_pending(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::{AluOp, Operand};

    fn add(dst: u16, a: u16, b: u16) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a: Operand::Reg(Reg(a)),
            b: Operand::Reg(Reg(b)),
        }
    }

    #[test]
    fn set_clear_pending() {
        let mut s = Scoreboard::new();
        assert!(!s.is_pending(Reg(5)));
        s.set_pending(Reg(5));
        assert!(s.is_pending(Reg(5)));
        assert_eq!(s.pending_count(), 1);
        s.set_pending(Reg(5));
        assert_eq!(s.pending_count(), 1, "idempotent");
        s.clear(Reg(5));
        assert!(!s.is_pending(Reg(5)));
        assert_eq!(s.pending_count(), 0);
        s.clear(Reg(5));
        assert_eq!(s.pending_count(), 0, "double clear is safe");
    }

    #[test]
    fn raw_hazard_blocks_issue() {
        let mut s = Scoreboard::new();
        s.set_pending(Reg(1));
        assert!(!s.can_issue(&add(3, 1, 2)), "source pending");
        assert!(s.can_issue(&add(3, 2, 2)));
    }

    #[test]
    fn waw_hazard_blocks_issue() {
        let mut s = Scoreboard::new();
        s.set_pending(Reg(3));
        assert!(!s.can_issue(&add(3, 1, 2)), "destination pending");
    }

    #[test]
    fn high_register_indices_work() {
        let mut s = Scoreboard::new();
        s.set_pending(Reg(200));
        assert!(s.is_pending(Reg(200)));
        assert!(!s.is_pending(Reg(201)));
        assert!(!s.can_issue(&add(0, 200, 0)));
    }

    #[test]
    fn barriers_and_branches_always_issue() {
        let mut s = Scoreboard::new();
        s.set_pending(Reg(0));
        assert!(s.can_issue(&Instr::Bar));
        assert!(s.can_issue(&Instr::Exit));
    }
}
