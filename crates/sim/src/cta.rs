//! Per-CTA runtime state and the active/inactive phase machine.

use vt_json::{req, req_array, req_u64, Json};

/// Lifecycle phase of a resident CTA.
///
/// The Virtual Thread state machine: CTAs are admitted up to the capacity
/// limit, but only CTAs in [`CtaPhase::Active`] own warp-scheduler slots.
/// Context switches move CTAs through the `Swapping*` phases, charging the
/// configured cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtaPhase {
    /// Owns scheduling structures; its warps may issue.
    Active,
    /// Resident (registers + shared memory on chip) but not schedulable.
    /// `has_context` distinguishes a previously-run CTA (whose PCs/SIMT
    /// stacks sit in the context buffer) from a fresh one.
    Inactive {
        /// Whether saved scheduling state exists for this CTA.
        has_context: bool,
    },
    /// Scheduling state being saved to the context buffer.
    SwappingOut {
        /// Cycle at which the save completes.
        done_at: u64,
    },
    /// Scheduling state being restored (or initialised, for fresh CTAs).
    SwappingIn {
        /// Cycle at which the restore completes.
        done_at: u64,
    },
    /// All warps exited; the slot is reusable.
    Finished,
}

impl CtaPhase {
    /// Serializes the phase as a `[tag, payload]` pair.
    pub fn snapshot(&self) -> Json {
        match *self {
            CtaPhase::Active => Json::Array(vec![Json::Str("active".into()), Json::Null]),
            CtaPhase::Inactive { has_context } => {
                Json::Array(vec![Json::Str("inactive".into()), Json::Bool(has_context)])
            }
            CtaPhase::SwappingOut { done_at } => {
                Json::Array(vec![Json::Str("swapping_out".into()), Json::UInt(done_at)])
            }
            CtaPhase::SwappingIn { done_at } => {
                Json::Array(vec![Json::Str("swapping_in".into()), Json::UInt(done_at)])
            }
            CtaPhase::Finished => Json::Array(vec![Json::Str("finished".into()), Json::Null]),
        }
    }

    /// Rebuilds a phase from [`CtaPhase::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown tag or payload type mismatch.
    pub fn restore(v: &Json) -> Result<CtaPhase, String> {
        let a = v.as_array().ok_or("CTA phase is not an array")?;
        let tag = a
            .first()
            .and_then(Json::as_str)
            .ok_or("CTA phase tag missing")?;
        let payload = a.get(1).ok_or("CTA phase payload missing")?;
        match tag {
            "active" => Ok(CtaPhase::Active),
            "inactive" => Ok(CtaPhase::Inactive {
                has_context: payload.as_bool().ok_or("inactive payload is not a bool")?,
            }),
            "swapping_out" => Ok(CtaPhase::SwappingOut {
                done_at: payload
                    .as_u64()
                    .ok_or("swapping_out payload is not a u64")?,
            }),
            "swapping_in" => Ok(CtaPhase::SwappingIn {
                done_at: payload.as_u64().ok_or("swapping_in payload is not a u64")?,
            }),
            "finished" => Ok(CtaPhase::Finished),
            other => Err(format!("unknown CTA phase tag {other:?}")),
        }
    }
}

/// The runtime state of one resident CTA.
#[derive(Debug, Clone)]
pub struct CtaRt {
    /// Index of this CTA in the kernel grid.
    pub cta_id: u32,
    /// Lifecycle phase.
    pub phase: CtaPhase,
    /// Warp slots (indices into the SM warp table) of this CTA.
    pub warps: Vec<usize>,
    /// Warps that have not yet exited.
    pub live_warps: u32,
    /// Warps currently waiting at the barrier.
    pub barrier_arrived: u32,
    /// Shared-memory contents (functional).
    pub smem: Vec<u32>,
    /// Register-file bytes this CTA holds.
    pub reg_bytes: u32,
    /// Shared-memory bytes this CTA holds.
    pub smem_bytes: u32,
    /// Outstanding global loads summed over the CTA's warps.
    pub pending_loads: u32,
    /// Admission order (used as an age tiebreak).
    pub seq: u64,
    /// Cycle the CTA last became inactive (admission or swap-out
    /// completion); measures the gap until its next swap-in starts.
    pub inactive_since: u64,
}

impl CtaRt {
    /// Whether the CTA occupies an active slot. A CTA being swapped *out*
    /// releases its slot the moment the save starts (the incoming CTA's
    /// restore overlaps with the save through the dual-ported context
    /// buffer), so only `Active` and `SwappingIn` hold slots.
    pub fn holds_active_slot(&self) -> bool {
        matches!(self.phase, CtaPhase::Active | CtaPhase::SwappingIn { .. })
    }

    /// Whether the CTA is resident (counts against capacity).
    pub fn is_resident(&self) -> bool {
        !matches!(self.phase, CtaPhase::Finished)
    }

    /// Whether the CTA is schedulable right now.
    pub fn is_active(&self) -> bool {
        self.phase == CtaPhase::Active
    }

    /// Serializes the CTA — phase machine, warp-slot list and functional
    /// shared-memory contents — for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("cta_id".into(), Json::UInt(u64::from(self.cta_id))),
            ("phase".into(), self.phase.snapshot()),
            (
                "warps".into(),
                Json::Array(self.warps.iter().map(|&w| Json::UInt(w as u64)).collect()),
            ),
            ("live_warps".into(), Json::UInt(u64::from(self.live_warps))),
            (
                "barrier_arrived".into(),
                Json::UInt(u64::from(self.barrier_arrived)),
            ),
            (
                "smem".into(),
                Json::Array(
                    self.smem
                        .iter()
                        .map(|&w| Json::UInt(u64::from(w)))
                        .collect(),
                ),
            ),
            ("reg_bytes".into(), Json::UInt(u64::from(self.reg_bytes))),
            ("smem_bytes".into(), Json::UInt(u64::from(self.smem_bytes))),
            (
                "pending_loads".into(),
                Json::UInt(u64::from(self.pending_loads)),
            ),
            ("seq".into(), Json::UInt(self.seq)),
            ("inactive_since".into(), Json::UInt(self.inactive_since)),
        ])
    }

    /// Rebuilds a CTA from [`CtaRt::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<CtaRt, String> {
        let warps = req_array(v, "warps")?
            .iter()
            .map(|w| {
                w.as_u64()
                    .map(|x| x as usize)
                    .ok_or("warp slot is not a u64")
            })
            .collect::<Result<Vec<usize>, &str>>()?;
        let smem = req_array(v, "smem")?
            .iter()
            .map(|w| w.as_u64().map(|x| x as u32).ok_or("smem word is not a u64"))
            .collect::<Result<Vec<u32>, &str>>()?;
        Ok(CtaRt {
            cta_id: req_u64(v, "cta_id")? as u32,
            phase: CtaPhase::restore(req(v, "phase")?)?,
            warps,
            live_warps: req_u64(v, "live_warps")? as u32,
            barrier_arrived: req_u64(v, "barrier_arrived")? as u32,
            smem,
            reg_bytes: req_u64(v, "reg_bytes")? as u32,
            smem_bytes: req_u64(v, "smem_bytes")? as u32,
            pending_loads: req_u64(v, "pending_loads")? as u32,
            seq: req_u64(v, "seq")?,
            inactive_since: req_u64(v, "inactive_since")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta(phase: CtaPhase) -> CtaRt {
        CtaRt {
            cta_id: 0,
            phase,
            warps: vec![0, 1],
            live_warps: 2,
            barrier_arrived: 0,
            smem: Vec::new(),
            reg_bytes: 1024,
            smem_bytes: 0,
            pending_loads: 0,
            seq: 0,
            inactive_since: 0,
        }
    }

    #[test]
    fn phase_predicates() {
        assert!(cta(CtaPhase::Active).is_active());
        assert!(cta(CtaPhase::Active).holds_active_slot());
        assert!(!cta(CtaPhase::SwappingOut { done_at: 5 }).holds_active_slot());
        assert!(cta(CtaPhase::SwappingIn { done_at: 5 }).holds_active_slot());
        assert!(!cta(CtaPhase::Inactive { has_context: false }).holds_active_slot());
        assert!(!cta(CtaPhase::Finished).is_resident());
        assert!(cta(CtaPhase::Inactive { has_context: true }).is_resident());
        assert!(!cta(CtaPhase::SwappingIn { done_at: 1 }).is_active());
    }
}
