//! Per-CTA runtime state and the active/inactive phase machine.

/// Lifecycle phase of a resident CTA.
///
/// The Virtual Thread state machine: CTAs are admitted up to the capacity
/// limit, but only CTAs in [`CtaPhase::Active`] own warp-scheduler slots.
/// Context switches move CTAs through the `Swapping*` phases, charging the
/// configured cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtaPhase {
    /// Owns scheduling structures; its warps may issue.
    Active,
    /// Resident (registers + shared memory on chip) but not schedulable.
    /// `has_context` distinguishes a previously-run CTA (whose PCs/SIMT
    /// stacks sit in the context buffer) from a fresh one.
    Inactive {
        /// Whether saved scheduling state exists for this CTA.
        has_context: bool,
    },
    /// Scheduling state being saved to the context buffer.
    SwappingOut {
        /// Cycle at which the save completes.
        done_at: u64,
    },
    /// Scheduling state being restored (or initialised, for fresh CTAs).
    SwappingIn {
        /// Cycle at which the restore completes.
        done_at: u64,
    },
    /// All warps exited; the slot is reusable.
    Finished,
}

/// The runtime state of one resident CTA.
#[derive(Debug, Clone)]
pub struct CtaRt {
    /// Index of this CTA in the kernel grid.
    pub cta_id: u32,
    /// Lifecycle phase.
    pub phase: CtaPhase,
    /// Warp slots (indices into the SM warp table) of this CTA.
    pub warps: Vec<usize>,
    /// Warps that have not yet exited.
    pub live_warps: u32,
    /// Warps currently waiting at the barrier.
    pub barrier_arrived: u32,
    /// Shared-memory contents (functional).
    pub smem: Vec<u32>,
    /// Register-file bytes this CTA holds.
    pub reg_bytes: u32,
    /// Shared-memory bytes this CTA holds.
    pub smem_bytes: u32,
    /// Outstanding global loads summed over the CTA's warps.
    pub pending_loads: u32,
    /// Admission order (used as an age tiebreak).
    pub seq: u64,
    /// Cycle the CTA last became inactive (admission or swap-out
    /// completion); measures the gap until its next swap-in starts.
    pub inactive_since: u64,
}

impl CtaRt {
    /// Whether the CTA occupies an active slot. A CTA being swapped *out*
    /// releases its slot the moment the save starts (the incoming CTA's
    /// restore overlaps with the save through the dual-ported context
    /// buffer), so only `Active` and `SwappingIn` hold slots.
    pub fn holds_active_slot(&self) -> bool {
        matches!(self.phase, CtaPhase::Active | CtaPhase::SwappingIn { .. })
    }

    /// Whether the CTA is resident (counts against capacity).
    pub fn is_resident(&self) -> bool {
        !matches!(self.phase, CtaPhase::Finished)
    }

    /// Whether the CTA is schedulable right now.
    pub fn is_active(&self) -> bool {
        self.phase == CtaPhase::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta(phase: CtaPhase) -> CtaRt {
        CtaRt {
            cta_id: 0,
            phase,
            warps: vec![0, 1],
            live_warps: 2,
            barrier_arrived: 0,
            smem: Vec::new(),
            reg_bytes: 1024,
            smem_bytes: 0,
            pending_loads: 0,
            seq: 0,
            inactive_since: 0,
        }
    }

    #[test]
    fn phase_predicates() {
        assert!(cta(CtaPhase::Active).is_active());
        assert!(cta(CtaPhase::Active).holds_active_slot());
        assert!(!cta(CtaPhase::SwappingOut { done_at: 5 }).holds_active_slot());
        assert!(cta(CtaPhase::SwappingIn { done_at: 5 }).holds_active_slot());
        assert!(!cta(CtaPhase::Inactive { has_context: false }).holds_active_slot());
        assert!(!cta(CtaPhase::Finished).is_resident());
        assert!(cta(CtaPhase::Inactive { has_context: true }).is_resident());
        assert!(!cta(CtaPhase::SwappingIn { done_at: 1 }).is_active());
    }
}
