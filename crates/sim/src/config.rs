//! Simulator configuration: the SM core, the scheduling/capacity limits
//! and the CTA residency policy.

use vt_isa::{Kernel, SmLimits};
use vt_mem::MemConfig;

/// Warp-scheduler policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Loose round-robin: rotate through ready warps.
    Lrr,
    /// Greedy-then-oldest: keep issuing the same warp until it stalls,
    /// then fall back to the oldest ready warp.
    Gto,
}

/// Core (SM and chip) configuration.
///
/// Defaults approximate the GTX 480 (Fermi)-class machine the paper
/// simulates: 15 SMs, 48 warp slots and 8 CTA slots per SM (the
/// *scheduling limit*), 128 KiB register file and 48 KiB shared memory per
/// SM (the *capacity limit*), two warp schedulers.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Number of SMs.
    pub num_sms: u32,
    /// Warp slots per SM — part of the scheduling limit.
    pub max_warps_per_sm: u32,
    /// CTA slots per SM — part of the scheduling limit.
    pub max_ctas_per_sm: u32,
    /// Register-file bytes per SM — part of the capacity limit.
    pub regfile_bytes: u32,
    /// Shared-memory bytes per SM — part of the capacity limit.
    pub smem_bytes: u32,
    /// Warp schedulers per SM (each issues one instruction per cycle).
    pub schedulers_per_sm: u32,
    /// Scheduler policy.
    pub scheduler: SchedPolicy,
    /// SP-pipeline (ALU) result latency in cycles.
    pub alu_latency: u32,
    /// SFU result latency in cycles.
    pub sfu_latency: u32,
    /// Minimum cycles between SFU issues per SM (initiation interval).
    pub sfu_init_interval: u32,
    /// Shared-memory access latency (conflict-free).
    pub smem_latency: u32,
    /// Shared-memory banks.
    pub smem_banks: u32,
    /// Pending warp memory instructions the LD/ST unit queues per SM.
    pub ldst_queue_depth: u32,
    /// Watchdog: abort a run after this many cycles.
    pub max_cycles: u64,
    /// Seal a window of the metric series every this many cycles
    /// (`None` disables the sampler entirely; see
    /// `vt_trace::metrics::DEFAULT_WINDOW` for the conventional value).
    pub metrics_window: Option<u64>,
    /// Collect the per-PC hotspot profile
    /// (`crate::hotspots::PcProfile`). Off by default; disabled runs
    /// compile the profiling path out entirely and stay bit-identical.
    pub profile: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::from_limits(SmLimits::fermi())
    }
}

impl CoreConfig {
    /// A 15-SM configuration whose per-SM limits come from `limits` — the
    /// shared source of truth in `vt_isa::limits`. Pipeline and memory
    /// timing keep the Fermi-class defaults.
    pub fn from_limits(limits: SmLimits) -> CoreConfig {
        CoreConfig {
            num_sms: 15,
            max_warps_per_sm: limits.max_warps_per_sm,
            max_ctas_per_sm: limits.max_ctas_per_sm,
            regfile_bytes: limits.regfile_bytes,
            smem_bytes: limits.smem_bytes,
            schedulers_per_sm: 2,
            scheduler: SchedPolicy::Gto,
            alu_latency: 10,
            sfu_latency: 24,
            sfu_init_interval: 4,
            smem_latency: 24,
            smem_banks: 32,
            ldst_queue_depth: 8,
            max_cycles: 200_000_000,
            metrics_window: None,
            profile: false,
        }
    }
}

impl CoreConfig {
    /// The per-SM scheduling/capacity limits of this configuration, in the
    /// shared [`SmLimits`] form the static analyzer consumes.
    pub fn limits(&self) -> SmLimits {
        SmLimits {
            max_warps_per_sm: self.max_warps_per_sm,
            max_ctas_per_sm: self.max_ctas_per_sm,
            regfile_bytes: self.regfile_bytes,
            smem_bytes: self.smem_bytes,
        }
    }

    /// Thread slots per SM implied by the warp slots.
    pub fn max_threads_per_sm(&self) -> u32 {
        self.limits().max_threads_per_sm()
    }

    /// 32-bit registers per SM.
    pub fn regfile_regs(&self) -> u32 {
        self.limits().regfile_regs()
    }
}

/// How the CTA dispatcher decides whether another CTA fits on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Baseline hardware: respect both the scheduling limit (CTA and warp
    /// slots) and the capacity limit (registers, shared memory).
    SchedulingAndCapacity,
    /// Virtual Thread / Ideal: respect only the capacity limit, with an
    /// optional explicit cap on resident (virtual) CTAs per SM modelling
    /// a finite context buffer (`None` = unbounded).
    CapacityOnly {
        /// Maximum resident CTAs per SM, if the context buffer bounds it.
        max_resident_ctas: Option<u32>,
    },
}

/// How many resident CTAs may be *active* (own warp-scheduler slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivePolicy {
    /// Active CTAs respect the scheduling limit (the VT design point).
    SchedulingLimit,
    /// Every resident CTA is active (the paper's idealised comparison,
    /// where scheduling structures magically scale with capacity).
    Unlimited,
}

/// When an active CTA is context-switched out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapTrigger {
    /// The paper's policy: swap when every unfinished warp of the CTA is
    /// blocked on a long-latency stall (outstanding global load, or a
    /// barrier held up by such warps).
    AllWarpsStalled,
    /// Ablation: swap as soon as *any* warp of the CTA is memory-stalled
    /// and a ready CTA is waiting (overly eager).
    AnyWarpStalled,
    /// Ablation: never swap (inactive CTAs only activate when a slot
    /// frees because an active CTA finished).
    Never,
}

/// Thrash-feedback control: a bang-bang hill climber that measures the
/// SM's issue rate with CTA rotation enabled ("rotate") and disabled
/// ("hold"), keeps whichever mode issues more, and re-probes the other
/// mode periodically. Cache-sensitive kernels settle into "hold" (a
/// stable active working set, CCWS-style); latency-bound kernels settle
/// into "rotate".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleConfig {
    /// Cycles per observation window.
    pub window_cycles: u32,
    /// Windows per measurement phase; the first window of each phase is a
    /// warm-up and is not recorded.
    pub phase_windows: u32,
    /// Force a probe of the non-preferred mode every this many phases.
    pub probe_every_phases: u32,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            window_cycles: 2048,
            phase_windows: 4,
            probe_every_phases: 4,
        }
    }
}

/// Context-switch mechanics and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapConfig {
    /// Trigger policy.
    pub trigger: SwapTrigger,
    /// Cycles to save the outgoing CTA's scheduling state.
    pub save_cycles: u32,
    /// Cycles to restore a previously swapped-out CTA.
    pub restore_cycles: u32,
    /// Cycles to activate a fresh CTA that has no saved context.
    pub fresh_activation_cycles: u32,
    /// Optional thrash-feedback throttle.
    pub throttle: Option<ThrottleConfig>,
}

/// CTA residency policy: admission, activation and swapping. Composed by
/// `vt-core` for each architecture (Baseline / VT / Ideal / MemSwap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyConfig {
    /// Admission policy for making a CTA resident on an SM.
    pub admission: AdmissionPolicy,
    /// Activation policy.
    pub active: ActivePolicy,
    /// Swap mechanics; `None` disables context switching entirely.
    pub swap: Option<SwapConfig>,
}

impl ResidencyConfig {
    /// The baseline machine: scheduling + capacity admission, everything
    /// resident is active, no swapping.
    pub fn baseline() -> ResidencyConfig {
        ResidencyConfig {
            admission: AdmissionPolicy::SchedulingAndCapacity,
            active: ActivePolicy::SchedulingLimit,
            swap: None,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core/SM parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// CTA residency policy.
    pub residency: ResidencyConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            residency: ResidencyConfig::baseline(),
        }
    }
}

/// Why a kernel cannot be launched at all on a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// One CTA needs more warp slots than an SM has.
    CtaTooManyWarps {
        /// Warps the CTA needs.
        needed: u32,
        /// Warp slots available.
        available: u32,
    },
    /// One CTA needs more registers than an SM's register file.
    CtaTooManyRegs {
        /// Register bytes the CTA needs.
        needed: u32,
        /// Register-file bytes available.
        available: u32,
    },
    /// One CTA needs more shared memory than an SM has.
    CtaTooMuchSmem {
        /// Shared-memory bytes the CTA needs.
        needed: u32,
        /// Shared-memory bytes available.
        available: u32,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::CtaTooManyWarps { needed, available } => {
                write!(f, "CTA needs {needed} warp slots, SM has {available}")
            }
            LaunchError::CtaTooManyRegs { needed, available } => {
                write!(f, "CTA needs {needed} register bytes, SM has {available}")
            }
            LaunchError::CtaTooMuchSmem { needed, available } => {
                write!(
                    f,
                    "CTA needs {needed} shared-memory bytes, SM has {available}"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Checks that at least one CTA of `kernel` fits on one SM.
///
/// # Errors
///
/// Returns the violated resource as a [`LaunchError`].
pub fn check_launchable(core: &CoreConfig, kernel: &Kernel) -> Result<(), LaunchError> {
    let warps = kernel.warps_per_cta();
    if warps > core.max_warps_per_sm {
        return Err(LaunchError::CtaTooManyWarps {
            needed: warps,
            available: core.max_warps_per_sm,
        });
    }
    let regs = kernel.reg_bytes_per_cta();
    if regs > core.regfile_bytes {
        return Err(LaunchError::CtaTooManyRegs {
            needed: regs,
            available: core.regfile_bytes,
        });
    }
    let smem = kernel.smem_bytes_per_cta();
    if smem > core.smem_bytes {
        return Err(LaunchError::CtaTooMuchSmem {
            needed: smem,
            available: core.smem_bytes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::KernelBuilder;

    fn kernel(threads: u32, regs: u16, smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        b.pad_regs(regs);
        b.pad_smem(smem);
        b.exit();
        b.build(1, threads).unwrap()
    }

    #[test]
    fn default_config_is_fermi_like() {
        let c = CoreConfig::default();
        assert_eq!(c.max_threads_per_sm(), 1536);
        assert_eq!(c.regfile_regs(), 32768);
        assert_eq!(c.limits(), SmLimits::fermi(), "limits round-trip");
    }

    #[test]
    fn launchable_accepts_reasonable_kernel() {
        let c = CoreConfig::default();
        assert!(check_launchable(&c, &kernel(256, 20, 4096)).is_ok());
    }

    #[test]
    fn launchable_rejects_oversized_ctas() {
        let c = CoreConfig::default();
        assert!(matches!(
            check_launchable(&c, &kernel(c.max_threads_per_sm() + 32, 8, 0)),
            Err(LaunchError::CtaTooManyWarps { .. })
        ));
        assert!(matches!(
            check_launchable(&c, &kernel(1024, 255, 0)),
            Err(LaunchError::CtaTooManyRegs { .. })
        ));
        assert!(matches!(
            check_launchable(&c, &kernel(32, 8, 1 << 20)),
            Err(LaunchError::CtaTooMuchSmem { .. })
        ));
    }
}
