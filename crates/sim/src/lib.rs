//! # vt-sim — cycle-level GPU timing simulation
//!
//! This crate models a Fermi-class GPU at cycle granularity: per-SM warp
//! schedulers ([`config::SchedPolicy`]), scoreboards
//! ([`scoreboard::Scoreboard`]), SIMT reconvergence, execution pipelines
//! with latency classes, shared-memory bank conflicts, an in-order LD/ST
//! unit ([`ldst::LdstUnit`]) feeding the `vt-mem` hierarchy, CTA barriers,
//! and — the part the Virtual Thread paper modifies — the **CTA residency
//! machinery**: admission ([`config::AdmissionPolicy`]), active-slot
//! management ([`config::ActivePolicy`]) and context switching
//! ([`config::SwapConfig`]).
//!
//! Execution is *functional-at-issue*: instruction semantics run the
//! moment an instruction issues, while scoreboards, queues, caches and
//! DRAM decide when results become architecturally visible. Every run is
//! deterministic and the final memory image can be compared bit-for-bit
//! against `vt_isa::interp::Interpreter`.
//!
//! The public entry point is [`gpu::GpuSim`] (or the [`gpu::simulate`]
//! convenience function); higher-level architecture selection (Baseline /
//! VirtualThread / Ideal / MemSwap) lives in the `vt-core` crate.
#![forbid(unsafe_code)]

pub mod config;
pub mod cta;
pub mod exec;
pub mod gpu;
pub mod hotspots;
pub mod ldst;
pub mod metrics;
pub mod occupancy;
pub mod scoreboard;
pub mod sm;
pub mod stats;
pub mod warp;

pub use config::{
    check_launchable, ActivePolicy, AdmissionPolicy, CoreConfig, LaunchError, ResidencyConfig,
    SchedPolicy, SimConfig, SwapConfig, SwapTrigger,
};
pub use exec::{
    CancelToken, Checkpoint, Progress, ProgressHook, RunBudget, RunOutcome, StopReason, Truncation,
};
pub use gpu::{simulate, GpuSim, RunResult, SimError};
pub use hotspots::{PcCounters, PcProfile, StallReason, STALL_REASONS};
pub use metrics::MetricsSampler;
pub use occupancy::{analyze, Limiter, OccupancyAnalysis};
pub use stats::{CpiStack, EmptyBreakdown, IdleBreakdown, RunStats};
