//! Static occupancy analysis: how many CTAs fit per SM and which resource
//! binds — the paper's motivation study (its Figures 1–2).
//!
//! The bound arithmetic and the [`Limiter`] classification live in
//! [`vt_isa::limits`] (the shared source of truth also used by the
//! `vt-analysis` performance model); this module wraps them in the
//! simulator-facing [`OccupancyAnalysis`] with its utilization helpers.

use crate::config::CoreConfig;
use vt_isa::Kernel;

pub use vt_isa::limits::{CtaBounds, Limiter};

/// Static occupancy of one kernel on one SM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyAnalysis {
    /// CTAs allowed by the CTA-slot limit.
    pub by_cta_slots: u32,
    /// CTAs allowed by the warp-slot limit.
    pub by_warp_slots: u32,
    /// CTAs allowed by the register file.
    pub by_registers: u32,
    /// CTAs allowed by shared memory (`u32::MAX` when the kernel uses
    /// none).
    pub by_shared_memory: u32,
    /// Resident CTAs under the baseline (min of all four).
    pub baseline_ctas: u32,
    /// Resident CTAs under a capacity-only policy (min of the two
    /// capacity limits).
    pub capacity_ctas: u32,
    /// The binding resource class.
    pub limiter: Limiter,
}

impl OccupancyAnalysis {
    /// The per-resource bounds in their shared [`CtaBounds`] form.
    pub fn bounds(&self) -> CtaBounds {
        CtaBounds {
            by_cta_slots: self.by_cta_slots,
            by_warp_slots: self.by_warp_slots,
            by_registers: self.by_registers,
            by_shared_memory: self.by_shared_memory,
        }
    }

    /// How many times more CTAs Virtual Thread can host than the baseline.
    pub fn virtualization_headroom(&self) -> f64 {
        if self.baseline_ctas == 0 {
            return 0.0;
        }
        f64::from(self.capacity_ctas) / f64::from(self.baseline_ctas)
    }

    /// Fraction of the register file the baseline occupancy uses.
    pub fn baseline_reg_utilization(&self) -> f64 {
        if self.by_registers == 0 {
            return 0.0;
        }
        f64::from(self.baseline_ctas) / f64::from(self.by_registers)
    }

    /// Fraction of shared memory the baseline occupancy uses (0 when the
    /// kernel uses none).
    pub fn baseline_smem_utilization(&self) -> f64 {
        if self.by_shared_memory == u32::MAX || self.by_shared_memory == 0 {
            return 0.0;
        }
        f64::from(self.baseline_ctas) / f64::from(self.by_shared_memory)
    }

    /// Fraction of thread slots the baseline occupancy uses.
    pub fn baseline_thread_slot_utilization(&self) -> f64 {
        if self.by_warp_slots == 0 {
            return 0.0;
        }
        f64::from(self.baseline_ctas) / f64::from(self.by_warp_slots)
    }
}

/// Computes the static occupancy of `kernel` on `core`.
pub fn analyze(core: &CoreConfig, kernel: &Kernel) -> OccupancyAnalysis {
    let b = core.limits().bounds(kernel);
    OccupancyAnalysis {
        by_cta_slots: b.by_cta_slots,
        by_warp_slots: b.by_warp_slots,
        by_registers: b.by_registers,
        by_shared_memory: b.by_shared_memory,
        baseline_ctas: b.baseline(),
        capacity_ctas: b.capacity(),
        limiter: b.limiter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::KernelBuilder;

    fn kernel(threads: u32, regs: u16, smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        b.pad_regs(regs);
        b.pad_smem(smem);
        b.exit();
        b.build(1, threads).unwrap()
    }

    #[test]
    fn small_ctas_are_cta_slot_limited() {
        let core = CoreConfig::default();
        // 64 threads, 16 regs, no smem: 8 CTA slots bind long before
        // 32768/1024 = 32 CTAs of registers.
        let a = analyze(&core, &kernel(64, 16, 0));
        assert_eq!(a.by_cta_slots, 8);
        assert_eq!(a.by_warp_slots, 24);
        assert_eq!(a.by_registers, 32768 * 4 / (64 * 16 * 4));
        assert_eq!(a.baseline_ctas, 8);
        assert_eq!(a.limiter, Limiter::CtaSlots);
        assert!(a.limiter.is_scheduling());
        assert!(a.virtualization_headroom() > 2.0);
    }

    #[test]
    fn large_ctas_are_warp_slot_limited() {
        let core = CoreConfig::default();
        // 512 threads/CTA: 48/16 = 3 CTAs by warps; 8 CTA slots; regs
        // allow 4 (512*16 regs per CTA → 8192 regs → 32768/8192 = 4).
        let a = analyze(&core, &kernel(512, 16, 0));
        assert_eq!(a.by_warp_slots, 3);
        assert_eq!(a.limiter, Limiter::WarpSlots);
        assert_eq!(a.baseline_ctas, 3);
    }

    #[test]
    fn register_heavy_kernels_are_capacity_limited() {
        let core = CoreConfig::default();
        // 256 threads × 42 regs = 10752 regs/CTA → 3 CTAs by registers;
        // warp slots would allow 6.
        let a = analyze(&core, &kernel(256, 42, 0));
        assert_eq!(a.limiter, Limiter::Registers);
        assert!(!a.limiter.is_scheduling());
        assert_eq!(a.baseline_ctas, a.capacity_ctas, "VT cannot help");
        assert!((a.virtualization_headroom() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smem_heavy_kernels_are_capacity_limited() {
        let core = CoreConfig::default();
        let a = analyze(&core, &kernel(128, 16, 16 * 1024));
        assert_eq!(a.by_shared_memory, 3);
        assert_eq!(a.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn balanced_kernels_classify_as_balanced() {
        let core = CoreConfig::default();
        // 8 by CTA slots; choose regs so capacity also allows exactly 8:
        // 32768 regs / 8 = 4096 regs/CTA = 128 threads × 32 regs.
        let a = analyze(&core, &kernel(128, 32, 0));
        assert_eq!(a.by_registers, 8);
        assert_eq!(a.limiter, Limiter::Balanced);
    }

    #[test]
    fn analysis_agrees_with_shared_bounds() {
        let core = CoreConfig::default();
        let k = kernel(96, 24, 2048);
        let a = analyze(&core, &k);
        let b = core.limits().bounds(&k);
        assert_eq!(a.bounds(), b);
        assert_eq!(a.baseline_ctas, b.baseline());
        assert_eq!(a.capacity_ctas, b.capacity());
        assert_eq!(a.limiter, b.limiter());
    }

    #[test]
    fn utilization_fractions() {
        let core = CoreConfig::default();
        let a = analyze(&core, &kernel(64, 16, 0));
        assert!(a.baseline_reg_utilization() < 0.5, "registers mostly idle");
        assert_eq!(a.baseline_smem_utilization(), 0.0);
        assert!(a.baseline_thread_slot_utilization() <= 1.0);
    }
}
