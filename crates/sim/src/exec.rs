//! Execution control: run budgets, cooperative cancellation and
//! checkpointing.
//!
//! A simulation is normally run to completion, but long sweeps need three
//! extra controls, all of which stop the deterministic two-phase cycle
//! loop *at a phase boundary* so the partial state is coherent:
//!
//! * [`RunBudget`] — a cycle and/or wall-clock ceiling. A run that hits
//!   its budget returns [`RunOutcome::Truncated`] with valid partial
//!   statistics and a [`Checkpoint`] it can later resume from.
//! * [`CancelToken`] — a thread-safe flag polled once per cycle, for
//!   Ctrl-C handlers and supervisor threads.
//! * [`Checkpoint`] — the full serialized simulator state. Resuming a
//!   checkpoint continues bit-identically to the uninterrupted run, at
//!   any worker count.

use crate::gpu::{RunResult, SimError};
use crate::stats::RunStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vt_json::{req_str, req_u64, Json};

/// Limits on how long one `execute` call may run. The default is
/// unlimited; both limits may be combined, and whichever trips first
/// truncates the run.
///
/// Budgets are *relative to the call*: a resumed simulation gets a fresh
/// allowance, so a sweep can advance a long kernel in fixed-size slices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum simulated cycles this call may execute (not a cumulative
    /// cycle number). `None` means unlimited.
    pub max_cycles: Option<u64>,
    /// Maximum wall-clock time this call may take. `None` means
    /// unlimited. Checked at cycle boundaries, so the overshoot is at
    /// most one cycle's work.
    pub deadline: Option<Duration>,
}

impl RunBudget {
    /// No limits: run to completion (or the watchdog).
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Caps the simulated cycles executed by one call.
    pub fn with_max_cycles(mut self, cycles: u64) -> RunBudget {
        self.max_cycles = Some(cycles);
        self
    }

    /// Caps the wall-clock duration of one call.
    pub fn with_deadline(mut self, deadline: Duration) -> RunBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Whether this budget can never truncate a run.
    pub fn is_unlimited(&self) -> bool {
        self.max_cycles.is_none() && self.deadline.is_none()
    }
}

/// A thread-safe cooperative cancellation flag.
///
/// Clones share the flag. The engine polls it once per cycle; after
/// [`CancelToken::cancel`] the run stops at the next phase boundary and
/// returns [`RunOutcome::Truncated`] with [`StopReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Safe to call from any thread, including a
    /// signal handler (a relaxed atomic store).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a run stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The [`RunBudget::max_cycles`] allowance was used up.
    CycleBudget,
    /// The [`RunBudget::deadline`] wall-clock limit passed.
    Deadline,
    /// A [`CancelToken`] was cancelled.
    Cancelled,
}

/// A truncated run: why it stopped, the statistics accumulated so far
/// (valid — the same invariants as a completed run's, just over fewer
/// cycles), and a checkpoint to resume from.
#[derive(Debug, Clone)]
pub struct Truncation {
    /// What stopped the run.
    pub reason: StopReason,
    /// Statistics over the cycles actually executed.
    pub stats: RunStats,
    /// Full simulator state at the stop boundary.
    pub checkpoint: Checkpoint,
}

/// The outcome of an `execute` call: ran to completion, or was stopped
/// by the budget / a cancellation.
// One RunOutcome exists per run, so the stats payload's size is
// irrelevant; boxing it would only make the common completed path
// clumsier.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The kernel finished; the result is complete.
    Completed(RunResult),
    /// The run stopped early; partial stats and a resumable checkpoint.
    Truncated(Box<Truncation>),
}

impl RunOutcome {
    /// The completed result, or an error naming the stop reason. Use
    /// when truncation is not expected (e.g. unlimited budgets).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Truncated`] if the run did not complete.
    pub fn completed(self) -> Result<RunResult, SimError> {
        match self {
            RunOutcome::Completed(r) => Ok(r),
            RunOutcome::Truncated(t) => Err(SimError::Truncated { reason: t.reason }),
        }
    }

    /// The run's statistics, complete or partial.
    pub fn stats(&self) -> &RunStats {
        match self {
            RunOutcome::Completed(r) => &r.stats,
            RunOutcome::Truncated(t) => &t.stats,
        }
    }
}

/// A point-in-time view of a running simulation, handed to a
/// [`ProgressHook`] callback. Built from the engine's live counters, so
/// observing progress never perturbs the simulation itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Current cycle.
    pub cycle: u64,
    /// This call's cycle allowance ([`RunBudget::max_cycles`]), if any.
    pub budget_cycles: Option<u64>,
    /// Thread instructions executed so far.
    pub thread_instrs: u64,
    /// Cumulative IPC (thread instructions / cycles).
    pub ipc: f64,
    /// IPC over the cycles since the previous progress report.
    pub window_ipc: f64,
    /// CTAs currently resident across all SMs (active + swapped out).
    pub resident_ctas: u64,
    /// CTAs currently holding an active slot across all SMs.
    pub active_ctas: u64,
    /// Warps currently resident across all SMs.
    pub resident_warps: u64,
}

/// A periodic progress callback: the engine invokes `callback` every
/// `every` cycles (at the top-of-cycle phase boundary, where state is
/// coherent). Independent of metrics sampling — a progress ticker does
/// not require a metered run.
pub struct ProgressHook<'a> {
    /// Cycles between callbacks (clamped to ≥ 1).
    pub every: u64,
    /// Receives each [`Progress`] report.
    pub callback: &'a mut dyn FnMut(&Progress),
}

impl<'a> ProgressHook<'a> {
    /// A hook firing every `every` cycles.
    pub fn new(every: u64, callback: &'a mut dyn FnMut(&Progress)) -> ProgressHook<'a> {
        ProgressHook {
            every: every.max(1),
            callback,
        }
    }
}

impl std::fmt::Debug for ProgressHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressHook")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// Serialization format version written into checkpoints. Version 2
/// added the `metrics` registry snapshot (replacing the occupancy
/// timeline of version 1); version 3 added the `empty` sub-split of
/// `idle.no_warps` to every stats block (CPI-stack attribution);
/// version 4 added the per-PC `hotspots` profile to every stats block
/// and issue-site PC/cycle tags to the LD/ST unit's in-flight state.
pub const CHECKPOINT_VERSION: u64 = 4;

/// A serialized simulator state: every SM (schedulers, SIMT stacks,
/// scoreboards, CTA residency and swap state, LD/ST unit), the memory
/// hierarchy (L1/L2 caches, MSHRs, interconnect, DRAM), the functional
/// memory image, and all statistics. Produced at a cycle boundary;
/// resuming continues bit-identically at any worker count.
///
/// The representation is `vt-json` text, so checkpoints can be written
/// to disk and inspected with ordinary tools.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    json: Json,
}

impl Checkpoint {
    /// Wraps an already-validated JSON document. Used by the engine;
    /// external callers should use [`Checkpoint::parse`].
    pub(crate) fn from_json(json: Json) -> Checkpoint {
        Checkpoint { json }
    }

    /// The underlying JSON document.
    pub fn json(&self) -> &Json {
        &self.json
    }

    /// Serializes the checkpoint as pretty-printed JSON text.
    pub fn to_text(&self) -> String {
        self.json.pretty()
    }

    /// Parses checkpoint text produced by [`Checkpoint::to_text`],
    /// validating the header fields.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on malformed JSON, a missing
    /// header, or an unsupported version.
    pub fn parse(text: &str) -> Result<Checkpoint, SimError> {
        let json = Json::parse(text).map_err(|e| SimError::Checkpoint {
            reason: format!("malformed checkpoint JSON: {e}"),
        })?;
        let c = Checkpoint { json };
        let version = c.header_u64("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(SimError::Checkpoint {
                reason: format!(
                    "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
                ),
            });
        }
        c.header_u64("cycle")?;
        c.kernel_name()?;
        Ok(c)
    }

    fn header_u64(&self, key: &str) -> Result<u64, SimError> {
        req_u64(&self.json, key).map_err(|reason| SimError::Checkpoint { reason })
    }

    /// The cycle at which the checkpoint was taken.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] if the field is missing.
    pub fn cycle(&self) -> Result<u64, SimError> {
        self.header_u64("cycle")
    }

    /// The name of the kernel the checkpoint belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] if the field is missing.
    pub fn kernel_name(&self) -> Result<&str, SimError> {
        req_str(&self.json, "kernel").map_err(|reason| SimError::Checkpoint { reason })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builders_compose() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        let b = b
            .with_max_cycles(500)
            .with_deadline(Duration::from_millis(10));
        assert_eq!(b.max_cycles, Some(500));
        assert_eq!(b.deadline, Some(Duration::from_millis(10)));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn checkpoint_parse_rejects_garbage() {
        assert!(matches!(
            Checkpoint::parse("not json"),
            Err(SimError::Checkpoint { .. })
        ));
        assert!(matches!(
            Checkpoint::parse("{\"version\": 999}"),
            Err(SimError::Checkpoint { .. })
        ));
        assert!(matches!(
            Checkpoint::parse("{\"version\": 4}"),
            Err(SimError::Checkpoint { .. }),
        ));
    }

    #[test]
    fn progress_hook_clamps_period() {
        let mut hits = 0u32;
        {
            let mut cb = |_p: &Progress| hits += 1;
            let hook = ProgressHook::new(0, &mut cb);
            assert_eq!(hook.every, 1);
            (hook.callback)(&Progress {
                cycle: 1,
                budget_cycles: None,
                thread_instrs: 0,
                ipc: 0.0,
                window_ipc: 0.0,
                resident_ctas: 0,
                active_ctas: 0,
                resident_warps: 0,
            });
        }
        assert_eq!(hits, 1);
    }
}
