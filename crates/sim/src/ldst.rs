//! The SM's LD/ST unit: an in-order queue of warp memory instructions
//! feeding shared memory (with bank-conflict serialisation) and the L1D.

use std::collections::{HashMap, VecDeque};
use vt_isa::Reg;
use vt_json::{elem, elem_bool, elem_u64, req_array, req_u64, Json};
use vt_mem::{MemSystem, ReqKind, SmFront, Submit};
use vt_trace::{NullSink, TraceSink};

fn reg_json(r: Option<Reg>) -> Json {
    match r {
        Some(Reg(n)) => Json::UInt(u64::from(n)),
        None => Json::Null,
    }
}

fn reg_from(v: &Json) -> Result<Option<Reg>, String> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(Reg(
            other.as_u64().ok_or("register is not a u64")? as u16
        ))),
    }
}

/// One warp memory instruction queued in the LD/ST unit.
#[derive(Debug, Clone)]
pub struct MemWork {
    /// Warp slot of the issuing warp.
    pub warp_slot: usize,
    /// Uid of the issuing warp, guarding against slot reuse.
    pub warp_uid: u64,
    /// Program counter the instruction issued from (hotspot profiling).
    pub pc: u32,
    /// Cycle the instruction issued at (round-trip latency attribution).
    pub issued_at: u64,
    /// Operation body.
    pub body: MemWorkBody,
}

/// The two paths through the LD/ST unit.
#[derive(Debug, Clone)]
pub enum MemWorkBody {
    /// Shared-memory access: serialised over bank-conflict rounds, then a
    /// fixed latency to writeback (for loads).
    Shared {
        /// Conflict rounds remaining.
        rounds_left: u32,
        /// Destination register (loads only).
        dst: Option<Reg>,
    },
    /// Global access: coalesced transactions injected into the L1 one per
    /// port per cycle.
    Global {
        /// Coalesced line addresses.
        lines: Vec<u64>,
        /// How many have been accepted by the L1.
        submitted: usize,
        /// Load-group token for response matching (loads/atomics).
        token: Option<u64>,
        /// Kind submitted to the memory system.
        kind: ReqKind,
    },
}

/// A group of transactions belonging to one load/atomic instruction; the
/// destination register is released when the last one responds.
#[derive(Debug, Clone, Copy)]
pub struct LoadGroup {
    /// Warp slot of the issuing warp.
    pub warp_slot: usize,
    /// Uid of the issuing warp, guarding against slot reuse.
    pub warp_uid: u64,
    /// Destination register to release (atomics without a destination
    /// still track completion for the pending-load count).
    pub dst: Option<Reg>,
    /// Responses still outstanding.
    pub remaining: u32,
    /// Whether any transaction of this group missed the L1 — i.e. the
    /// warp is in a *long-latency* stall, the condition the Virtual
    /// Thread swap trigger reacts to.
    pub missed: bool,
    /// Program counter the instruction issued from (hotspot profiling).
    pub pc: u32,
    /// Cycle the instruction issued at (round-trip latency attribution).
    pub issued_at: u64,
}

/// Completion record returned to the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCompletion {
    /// Warp slot whose instruction completed.
    pub warp_slot: usize,
    /// Uid the warp had at issue; the SM drops completions whose slot has
    /// been reassigned since.
    pub warp_uid: u64,
    /// Register to clear in the warp's scoreboard, if any.
    pub dst: Option<Reg>,
    /// Whether this was a global load/atomic (decrements pending loads).
    pub was_global_load: bool,
    /// Whether the access went below the L1 (ends a long-latency stall).
    pub was_long: bool,
    /// Program counter the instruction issued from (hotspot profiling).
    pub pc: u32,
    /// Cycle the instruction issued at; `now - issued_at` is the observed
    /// round-trip latency.
    pub issued_at: u64,
}

/// An event the LD/ST unit reports to the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdstEvent {
    /// A warp memory instruction fully completed.
    Completed(MemCompletion),
    /// A load/atomic was observed to go below the L1: the issuing warp
    /// has entered a long-latency stall.
    MissObserved {
        /// Warp slot of the stalled warp.
        warp_slot: usize,
        /// Uid the warp had at issue.
        warp_uid: u64,
    },
}

/// The LD/ST unit of one SM.
#[derive(Debug)]
pub struct LdstUnit {
    queue: VecDeque<MemWork>,
    depth: usize,
    smem_latency: u64,
    groups: HashMap<u64, LoadGroup>,
    req_to_group: HashMap<u64, u64>,
    next_id: u64,
    sm_id: usize,
    /// Shared loads whose rounds finished, waiting out the access latency:
    /// (ready cycle, warp slot, warp uid, dst, pc, issued_at).
    smem_inflight: VecDeque<(u64, usize, u64, Option<Reg>, u32, u64)>,
}

impl LdstUnit {
    /// A unit for SM `sm_id` with the given queue depth and conflict-free
    /// shared-memory latency.
    pub fn new(sm_id: usize, depth: u32, smem_latency: u32) -> LdstUnit {
        LdstUnit {
            queue: VecDeque::new(),
            depth: depth.max(1) as usize,
            smem_latency: u64::from(smem_latency),
            groups: HashMap::new(),
            req_to_group: HashMap::new(),
            next_id: 0,
            sm_id,
            smem_inflight: VecDeque::new(),
        }
    }

    /// Whether another warp memory instruction can be accepted this cycle.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.depth
    }

    /// Queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        ((self.sm_id as u64) << 40) | self.next_id
    }

    /// Enqueues a shared-memory access of `rounds` bank-conflict rounds.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers must check
    /// [`LdstUnit::has_space`] at issue.
    pub fn push_shared(
        &mut self,
        warp_slot: usize,
        warp_uid: u64,
        rounds: u32,
        dst: Option<Reg>,
        pc: u32,
        issued_at: u64,
    ) {
        assert!(self.has_space(), "LD/ST queue overflow");
        self.queue.push_back(MemWork {
            warp_slot,
            warp_uid,
            pc,
            issued_at,
            body: MemWorkBody::Shared {
                rounds_left: rounds.max(1),
                dst,
            },
        });
    }

    /// Enqueues a global access of coalesced `lines`. For loads and
    /// atomics a load group is created so the destination register is
    /// released when every transaction has responded.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `lines` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn push_global(
        &mut self,
        warp_slot: usize,
        warp_uid: u64,
        lines: Vec<u64>,
        kind: ReqKind,
        dst: Option<Reg>,
        pc: u32,
        issued_at: u64,
    ) {
        assert!(self.has_space(), "LD/ST queue overflow");
        assert!(!lines.is_empty(), "global access with no transactions");
        let token = if kind == ReqKind::Store {
            None
        } else {
            let token = self.fresh_id();
            self.groups.insert(
                token,
                LoadGroup {
                    warp_slot,
                    warp_uid,
                    dst,
                    remaining: lines.len() as u32,
                    missed: false,
                    pc,
                    issued_at,
                },
            );
            Some(token)
        };
        self.queue.push_back(MemWork {
            warp_slot,
            warp_uid,
            pc,
            issued_at,
            body: MemWorkBody::Global {
                lines,
                submitted: 0,
                token,
                kind,
            },
        });
    }

    /// Advances the unit one cycle against the whole memory system
    /// (sequential compatibility path: drives this SM's front and flushes
    /// its outbox immediately). The engine's parallel SM phase uses
    /// [`LdstUnit::tick_traced`] with the front alone.
    pub fn tick(&mut self, now: u64, mem: &mut MemSystem) -> Vec<LdstEvent> {
        let sm = self.sm_id;
        let out = self.tick_traced(now, mem.front_mut(sm), &mut NullSink);
        mem.flush_outbox(sm);
        out
    }

    /// Advances the unit one cycle: injects the front work's transactions
    /// into this SM's memory front-end and completes shared-memory
    /// accesses whose latency elapsed. Returns events for the SM to
    /// apply. Touches only per-SM state — accepted requests park in the
    /// front's outbox until the engine's ordered merge.
    pub fn tick_traced<S: TraceSink>(
        &mut self,
        now: u64,
        front: &mut SmFront,
        sink: &mut S,
    ) -> Vec<LdstEvent> {
        let mut out = Vec::new();

        // Shared accesses that finished their latency.
        while let Some(&(ready, warp_slot, warp_uid, dst, pc, issued_at)) =
            self.smem_inflight.front()
        {
            if ready > now {
                break;
            }
            self.smem_inflight.pop_front();
            out.push(LdstEvent::Completed(MemCompletion {
                warp_slot,
                warp_uid,
                dst,
                was_global_load: false,
                was_long: false,
                pc,
                issued_at,
            }));
        }

        // Process the front of the in-order queue.
        let mut pop = false;
        if let Some(work) = self.queue.front_mut() {
            match &mut work.body {
                MemWorkBody::Shared { rounds_left, dst } => {
                    *rounds_left -= 1;
                    if *rounds_left == 0 {
                        if dst.is_some() {
                            self.smem_inflight.push_back((
                                now + self.smem_latency,
                                work.warp_slot,
                                work.warp_uid,
                                *dst,
                                work.pc,
                                work.issued_at,
                            ));
                        }
                        pop = true;
                    }
                }
                MemWorkBody::Global {
                    lines,
                    submitted,
                    token,
                    kind,
                } => {
                    // Each transaction gets its own request id, mapped back
                    // to the instruction's load group on response.
                    while *submitted < lines.len() {
                        let id = ((self.sm_id as u64) << 40) | (self.next_id + 1);
                        let outcome =
                            front.try_submit_traced(now, id, lines[*submitted], *kind, sink);
                        if outcome == Submit::Rejected {
                            break;
                        }
                        self.next_id += 1;
                        if let Some(t) = token {
                            self.req_to_group.insert(id, *t);
                            if outcome == Submit::Miss {
                                let g = self.groups.get_mut(t).expect("group exists");
                                if !g.missed {
                                    g.missed = true;
                                    out.push(LdstEvent::MissObserved {
                                        warp_slot: g.warp_slot,
                                        warp_uid: g.warp_uid,
                                    });
                                }
                            }
                        }
                        *submitted += 1;
                    }
                    if *submitted == lines.len() {
                        pop = true;
                    }
                }
            }
        }
        if pop {
            self.queue.pop_front();
        }

        // Drain global responses.
        while let Some(id) = front.pop_response_traced(now, sink) {
            let Some(token) = self.req_to_group.remove(&id) else {
                continue;
            };
            let group = self.groups.get_mut(&token).expect("group exists for token");
            group.remaining -= 1;
            if group.remaining == 0 {
                let g = self.groups.remove(&token).expect("present");
                out.push(LdstEvent::Completed(MemCompletion {
                    warp_slot: g.warp_slot,
                    warp_uid: g.warp_uid,
                    dst: g.dst,
                    was_global_load: true,
                    was_long: g.missed,
                    pc: g.pc,
                    issued_at: g.issued_at,
                }));
            }
        }
        out
    }

    /// Whether nothing is queued or in flight in this unit (global
    /// responses may still be travelling in the memory system itself).
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.groups.is_empty() && self.smem_inflight.is_empty()
    }

    /// Serializes the unit for checkpointing. The in-order queue and the
    /// shared-memory latency pipe keep their exact order; the load-group
    /// tables are emitted sorted by token/request id (nothing iterates
    /// them, so rebuild order is irrelevant to determinism).
    pub fn snapshot(&self) -> Json {
        let mut tokens: Vec<u64> = self.groups.keys().copied().collect();
        tokens.sort_unstable();
        let mut req_ids: Vec<u64> = self.req_to_group.keys().copied().collect();
        req_ids.sort_unstable();
        Json::Object(vec![
            (
                "queue".into(),
                Json::Array(self.queue.iter().map(work_json).collect()),
            ),
            ("depth".into(), Json::UInt(self.depth as u64)),
            ("smem_latency".into(), Json::UInt(self.smem_latency)),
            (
                "groups".into(),
                Json::Array(
                    tokens
                        .into_iter()
                        .map(|t| {
                            let g = &self.groups[&t];
                            Json::Array(vec![
                                Json::UInt(t),
                                Json::UInt(g.warp_slot as u64),
                                Json::UInt(g.warp_uid),
                                reg_json(g.dst),
                                Json::UInt(u64::from(g.remaining)),
                                Json::Bool(g.missed),
                                Json::UInt(u64::from(g.pc)),
                                Json::UInt(g.issued_at),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "req_to_group".into(),
                Json::Array(
                    req_ids
                        .into_iter()
                        .map(|id| {
                            Json::Array(vec![Json::UInt(id), Json::UInt(self.req_to_group[&id])])
                        })
                        .collect(),
                ),
            ),
            ("next_id".into(), Json::UInt(self.next_id)),
            ("sm_id".into(), Json::UInt(self.sm_id as u64)),
            (
                "smem_inflight".into(),
                Json::Array(
                    self.smem_inflight
                        .iter()
                        .map(|&(ready, slot, uid, dst, pc, issued_at)| {
                            Json::Array(vec![
                                Json::UInt(ready),
                                Json::UInt(slot as u64),
                                Json::UInt(uid),
                                reg_json(dst),
                                Json::UInt(u64::from(pc)),
                                Json::UInt(issued_at),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a unit from [`LdstUnit::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<LdstUnit, String> {
        let mut queue = VecDeque::new();
        for item in req_array(v, "queue")? {
            queue.push_back(work_from(item)?);
        }
        let mut groups = HashMap::new();
        for item in req_array(v, "groups")? {
            let a = item.as_array().ok_or("load group is not an array")?;
            groups.insert(
                elem_u64(a, 0)?,
                LoadGroup {
                    warp_slot: elem_u64(a, 1)? as usize,
                    warp_uid: elem_u64(a, 2)?,
                    dst: reg_from(elem(a, 3)?)?,
                    remaining: elem_u64(a, 4)? as u32,
                    missed: elem_bool(a, 5)?,
                    pc: elem_u64(a, 6)? as u32,
                    issued_at: elem_u64(a, 7)?,
                },
            );
        }
        let mut req_to_group = HashMap::new();
        for item in req_array(v, "req_to_group")? {
            let a = item.as_array().ok_or("req mapping is not an array")?;
            req_to_group.insert(elem_u64(a, 0)?, elem_u64(a, 1)?);
        }
        let mut smem_inflight = VecDeque::new();
        for item in req_array(v, "smem_inflight")? {
            let a = item.as_array().ok_or("smem inflight is not an array")?;
            smem_inflight.push_back((
                elem_u64(a, 0)?,
                elem_u64(a, 1)? as usize,
                elem_u64(a, 2)?,
                reg_from(elem(a, 3)?)?,
                elem_u64(a, 4)? as u32,
                elem_u64(a, 5)?,
            ));
        }
        Ok(LdstUnit {
            queue,
            depth: (req_u64(v, "depth")? as usize).max(1),
            smem_latency: req_u64(v, "smem_latency")?,
            groups,
            req_to_group,
            next_id: req_u64(v, "next_id")?,
            sm_id: req_u64(v, "sm_id")? as usize,
            smem_inflight,
        })
    }
}

fn work_json(w: &MemWork) -> Json {
    let body = match &w.body {
        MemWorkBody::Shared { rounds_left, dst } => Json::Array(vec![
            Json::Str("shared".into()),
            Json::UInt(u64::from(*rounds_left)),
            reg_json(*dst),
        ]),
        MemWorkBody::Global {
            lines,
            submitted,
            token,
            kind,
        } => Json::Array(vec![
            Json::Str("global".into()),
            Json::Array(lines.iter().map(|&l| Json::UInt(l)).collect()),
            Json::UInt(*submitted as u64),
            match token {
                Some(t) => Json::UInt(*t),
                None => Json::Null,
            },
            Json::Str(kind.tag().into()),
        ]),
    };
    Json::Array(vec![
        Json::UInt(w.warp_slot as u64),
        Json::UInt(w.warp_uid),
        body,
        Json::UInt(u64::from(w.pc)),
        Json::UInt(w.issued_at),
    ])
}

fn work_from(v: &Json) -> Result<MemWork, String> {
    let a = v.as_array().ok_or("mem work is not an array")?;
    let b = elem(a, 2)?.as_array().ok_or("work body is not an array")?;
    let tag = b
        .first()
        .and_then(Json::as_str)
        .ok_or("work body tag missing")?;
    let body = match tag {
        "shared" => MemWorkBody::Shared {
            rounds_left: elem_u64(b, 1)? as u32,
            dst: reg_from(elem(b, 2)?)?,
        },
        "global" => {
            let lines = elem(b, 1)?
                .as_array()
                .ok_or("lines is not an array")?
                .iter()
                .map(|l| l.as_u64().ok_or("line is not a u64"))
                .collect::<Result<Vec<u64>, &str>>()?;
            MemWorkBody::Global {
                lines,
                submitted: elem_u64(b, 2)? as usize,
                token: match elem(b, 3)? {
                    Json::Null => None,
                    t => Some(t.as_u64().ok_or("token is not a u64")?),
                },
                kind: ReqKind::from_tag(elem(b, 4)?.as_str().ok_or("req kind is not a string")?)?,
            }
        }
        other => return Err(format!("unknown work body tag {other:?}")),
    };
    Ok(MemWork {
        warp_slot: elem_u64(a, 0)? as usize,
        warp_uid: elem_u64(a, 1)?,
        body,
        pc: elem_u64(a, 3)? as u32,
        issued_at: elem_u64(a, 4)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_mem::MemConfig;

    fn mem() -> MemSystem {
        MemSystem::new(&MemConfig::default(), 1)
    }

    #[test]
    fn shared_load_completes_after_rounds_and_latency() {
        let mut mem = mem();
        let mut u = LdstUnit::new(0, 8, 24);
        u.push_shared(3, 11, 2, Some(Reg(5)), 7, 0);
        let mut done = Vec::new();
        let mut finish = None;
        for now in 0..100 {
            mem.tick(now);
            for c in u.tick(now, &mut mem) {
                finish = Some(now);
                done.push(c);
            }
            if finish.is_some() {
                break;
            }
        }
        // 2 conflict rounds (cycles 0 and 1) + 24 latency.
        assert_eq!(finish, Some(1 + 24));
        assert_eq!(
            done[0],
            LdstEvent::Completed(MemCompletion {
                warp_slot: 3,
                warp_uid: 11,
                dst: Some(Reg(5)),
                was_global_load: false,
                was_long: false,
                pc: 7,
                issued_at: 0,
            })
        );
        assert!(u.idle());
    }

    #[test]
    fn shared_store_frees_queue_without_completion() {
        let mut mem = mem();
        let mut u = LdstUnit::new(0, 8, 24);
        u.push_shared(0, 1, 1, None, 0, 0);
        mem.tick(0);
        assert!(u.tick(0, &mut mem).is_empty());
        assert!(u.idle());
    }

    #[test]
    fn global_load_group_waits_for_all_transactions() {
        let mut mem = mem();
        let mut u = LdstUnit::new(0, 8, 24);
        u.push_global(7, 9, vec![10, 20, 30], ReqKind::Load, Some(Reg(1)), 4, 0);
        let mut misses = 0;
        let mut completions = Vec::new();
        for now in 0..5000 {
            mem.tick(now);
            for e in u.tick(now, &mut mem) {
                match e {
                    LdstEvent::Completed(c) => completions.push(c),
                    LdstEvent::MissObserved {
                        warp_slot,
                        warp_uid,
                    } => {
                        assert_eq!((warp_slot, warp_uid), (7, 9));
                        misses += 1;
                    }
                }
            }
            if !completions.is_empty() {
                break;
            }
        }
        assert_eq!(misses, 1, "one long-stall notification per instruction");
        assert_eq!(completions.len(), 1, "one completion for the whole group");
        assert_eq!(completions[0].warp_slot, 7);
        assert_eq!(completions[0].dst, Some(Reg(1)));
        assert!(completions[0].was_global_load);
        assert!(completions[0].was_long);
        assert_eq!(completions[0].pc, 4);
        assert_eq!(completions[0].issued_at, 0);
        assert!(u.idle());
    }

    #[test]
    fn transactions_respect_l1_port_limit() {
        let mut mem = mem(); // 1 port/cycle
        let mut u = LdstUnit::new(0, 8, 24);
        u.push_global(0, 1, vec![1, 2, 3], ReqKind::Load, Some(Reg(0)), 0, 0);
        mem.tick(0);
        u.tick(0, &mut mem);
        assert_eq!(u.queue_len(), 1, "not fully injected in one cycle");
        mem.tick(1);
        u.tick(1, &mut mem);
        mem.tick(2);
        u.tick(2, &mut mem);
        assert_eq!(u.queue_len(), 0, "three cycles for three transactions");
    }

    #[test]
    fn in_order_queue_blocks_behind_front() {
        let mut mem = mem();
        let mut u = LdstUnit::new(0, 2, 4);
        u.push_shared(0, 1, 3, None, 0, 0); // 3 rounds
        u.push_shared(1, 2, 1, None, 1, 0);
        assert!(!u.has_space());
        mem.tick(0);
        u.tick(0, &mut mem);
        assert_eq!(u.queue_len(), 2, "front still serialising");
        mem.tick(1);
        u.tick(1, &mut mem);
        mem.tick(2);
        u.tick(2, &mut mem);
        assert_eq!(u.queue_len(), 1, "front done after 3 rounds");
        assert!(u.has_space());
    }

    #[test]
    fn stores_need_no_group() {
        let mut mem = mem();
        let mut u = LdstUnit::new(0, 8, 4);
        u.push_global(0, 1, vec![5], ReqKind::Store, None, 0, 0);
        for now in 0..2000 {
            mem.tick(now);
            assert!(u.tick(now, &mut mem).is_empty(), "stores emit no events");
            if u.idle() && mem.quiesced() {
                break;
            }
        }
        assert!(u.idle());
        assert!(mem.quiesced());
    }
}
