//! The streaming multiprocessor: warp scheduling, instruction issue,
//! functional execution, barriers, and the CTA residency / context-switch
//! machinery at the heart of the Virtual Thread architecture.

use crate::config::{ActivePolicy, AdmissionPolicy, CoreConfig, ResidencyConfig, SwapTrigger};
use crate::cta::{CtaPhase, CtaRt};
use crate::hotspots::StallReason;
use crate::ldst::{LdstEvent, LdstUnit};
use crate::stats::RunStats;
use crate::warp::WarpRt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vt_isa::error::ExecError;
use vt_isa::exec::{self, ThreadCtx};
use vt_isa::kernel::MemImage;
use vt_isa::op::{BranchIf, MemSpace, Operand};
use vt_isa::{Instr, Kernel, Reg, WARP_SIZE};
use vt_mem::coalesce::{coalesce, shared_bank_conflicts};
use vt_mem::{MemSystem, ReqKind, SmFront};
use vt_trace::{NullSink, SwapDir, TraceEvent, TraceSink};

/// Why a warp cannot issue this cycle; used for scheduling and for the
/// idle-cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Readiness {
    Ready,
    Done,
    Barrier,
    /// Scoreboard-blocked while global loads are outstanding.
    BlockedMem,
    /// Scoreboard-blocked on short pipeline latencies only.
    BlockedPipe,
    /// Structural: LD/ST queue full.
    LdstFull,
    /// Structural: SFU initiation interval.
    SfuBusy,
}

/// Per-cycle context for attributing *empty* SM-cycles (zero resident
/// warps) to a cause in the [`crate::stats::EmptyBreakdown`]. Computed
/// once per cycle by the engine — before the concurrent SM phase, so
/// every lane sees the same value regardless of worker count — and
/// passed by value into [`Sm::tick_phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyAttr {
    /// Undispatched CTAs remained in the grid at the top of this cycle.
    pub work_left: bool,
    /// Whether this run's admission regime is bound by the *scheduling*
    /// limit for this kernel (per `vt_isa::limits::CtaBounds::limiter`
    /// under `AdmissionPolicy::SchedulingAndCapacity`; always `false`
    /// under `CapacityOnly`, where scheduling structures are virtualised).
    pub scheduling_limited: bool,
}

impl EmptyAttr {
    /// The attribution for a run with no undispatched work — what a
    /// stand-alone [`Sm::tick`] caller without a grid dispatcher wants.
    pub fn drained() -> EmptyAttr {
        EmptyAttr {
            work_left: false,
            scheduling_limited: false,
        }
    }
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// This SM's index.
    pub id: usize,
    line_bytes: u32,
    ctas: Vec<CtaRt>,
    free_cta_slots: Vec<usize>,
    warps: Vec<WarpRt>,
    free_warp_slots: Vec<usize>,
    warp_uids: Vec<u64>,

    // Capacity accounting (resident CTAs).
    resident_reg_bytes: u32,
    resident_smem_bytes: u32,
    resident_warps: u32,
    resident_ctas: u32,
    // Scheduling-structure accounting (CTAs holding an active slot,
    // including mid-swap) and actually schedulable warps.
    slot_ctas: u32,
    slot_warps: u32,
    active_phase_warps: u32,
    swapping_ctas: u32,

    sched_last: Vec<Option<usize>>,
    sched_ptr: Vec<usize>,
    sfu_free_at: u64,
    ldst: LdstUnit,
    // (ready cycle, warp slot, reg, warp uid)
    writebacks: BinaryHeap<Reverse<(u64, usize, u16, u64)>>,
    issue_list: Vec<usize>,
    issue_dirty: bool,
    next_uid: u64,
    cta_seq: u64,
    max_simt_depth: usize,
    /// Thrash-throttle (hill-climber) state: phase-based measurement of
    /// the issue rate under "rotate" vs "hold".
    throttle_hold: bool,
    throttle_window_end: u64,
    phase_window: u32,
    phase_accum: u64,
    phases_since_probe: u32,
    window_issues: u64,
    // Issue-rate estimate per mode, scaled by 2^16: [rotate, hold].
    mode_ipc_est: [Option<u64>; 2],
    /// Global-memory functional effects recorded during [`Sm::tick_phase`]
    /// (which must not touch the shared [`MemImage`]), applied by
    /// [`Sm::apply_deferred`] in issue order at the cycle's merge point.
    deferred: Vec<DeferredAccess>,
}

/// One warp global-memory instruction whose functional effect is deferred
/// to the sequential merge phase. Addresses and source operand values are
/// resolved at issue (phase A) — a warp issues at most one instruction
/// per cycle and registers are private to the warp, so no later
/// same-cycle write can change them — while the [`MemImage`]
/// read/modify/write happens at merge in `(sm_id, issue order)`, exactly
/// the order the sequential engine applies them in.
#[derive(Debug)]
struct DeferredAccess {
    wslot: usize,
    mask: u32,
    addrs: [u32; WARP_SIZE as usize],
    body: DeferredBody,
}

#[derive(Debug)]
enum DeferredBody {
    Load {
        dst: Reg,
    },
    Store {
        vals: [u32; WARP_SIZE as usize],
    },
    Atomic {
        op: vt_isa::AtomOp,
        dst: Option<Reg>,
        vals: [u32; WARP_SIZE as usize],
    },
}

impl Sm {
    /// Creates SM `id` under configuration `core`; `line_bytes` is the
    /// memory system's coalescing segment size.
    pub fn new(id: usize, core: &CoreConfig, line_bytes: u32) -> Sm {
        Sm {
            id,
            line_bytes,
            ctas: Vec::new(),
            free_cta_slots: Vec::new(),
            warps: Vec::new(),
            free_warp_slots: Vec::new(),
            warp_uids: Vec::new(),
            resident_reg_bytes: 0,
            resident_smem_bytes: 0,
            resident_warps: 0,
            resident_ctas: 0,
            slot_ctas: 0,
            slot_warps: 0,
            active_phase_warps: 0,
            swapping_ctas: 0,
            sched_last: vec![None; core.schedulers_per_sm.max(1) as usize],
            sched_ptr: vec![0; core.schedulers_per_sm.max(1) as usize],
            sfu_free_at: 0,
            ldst: LdstUnit::new(id, core.ldst_queue_depth, core.smem_latency),
            writebacks: BinaryHeap::new(),
            issue_list: Vec::new(),
            issue_dirty: true,
            next_uid: 0,
            cta_seq: 0,
            max_simt_depth: 0,
            throttle_hold: false,
            throttle_window_end: 0,
            phase_window: 0,
            phase_accum: 0,
            phases_since_probe: 0,
            window_issues: 0,
            mode_ipc_est: [None, None],
            deferred: Vec::new(),
        }
    }

    // ----- admission ------------------------------------------------------

    /// Whether another CTA of `kernel` can become resident under the
    /// residency policy.
    pub fn can_admit(&self, kernel: &Kernel, core: &CoreConfig, res: &ResidencyConfig) -> bool {
        let wpc = kernel.warps_per_cta();
        if wpc > core.max_warps_per_sm {
            return false;
        }
        // Capacity limit always applies: registers and shared memory are
        // physically finite.
        if self.resident_reg_bytes + kernel.reg_bytes_per_cta() > core.regfile_bytes {
            return false;
        }
        if self.resident_smem_bytes + kernel.smem_bytes_per_cta() > core.smem_bytes {
            return false;
        }
        match res.admission {
            AdmissionPolicy::SchedulingAndCapacity => {
                self.resident_ctas < core.max_ctas_per_sm
                    && self.resident_warps + wpc <= core.max_warps_per_sm
            }
            AdmissionPolicy::CapacityOnly { max_resident_ctas } => match max_resident_ctas {
                Some(cap) => self.resident_ctas < cap,
                None => true,
            },
        }
    }

    /// Makes CTA `cta_id` of `kernel` resident, activating it immediately
    /// if an active slot is free.
    ///
    /// # Panics
    ///
    /// Panics if [`Sm::can_admit`] would return false.
    pub fn admit(
        &mut self,
        cta_id: u32,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        now: u64,
        stats: &mut RunStats,
    ) {
        self.admit_traced(cta_id, kernel, core, res, now, stats, &mut NullSink);
    }

    /// [`Sm::admit`] with trace instrumentation; the `NullSink`
    /// instantiation is the plain admit.
    #[allow(clippy::too_many_arguments)]
    pub fn admit_traced<S: TraceSink>(
        &mut self,
        cta_id: u32,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        now: u64,
        stats: &mut RunStats,
        sink: &mut S,
    ) {
        assert!(
            self.can_admit(kernel, core, res),
            "admit called without can_admit"
        );
        let wpc = kernel.warps_per_cta();
        let nthreads = kernel.threads_per_cta();
        let cta_slot = match self.free_cta_slots.pop() {
            Some(s) => s,
            None => {
                self.ctas.push(CtaRt {
                    cta_id: 0,
                    phase: CtaPhase::Finished,
                    warps: Vec::new(),
                    live_warps: 0,
                    barrier_arrived: 0,
                    smem: Vec::new(),
                    reg_bytes: 0,
                    smem_bytes: 0,
                    pending_loads: 0,
                    seq: 0,
                    inactive_since: 0,
                });
                self.ctas.len() - 1
            }
        };
        let mut warp_slots = Vec::with_capacity(wpc as usize);
        for w in 0..wpc {
            let lanes = (nthreads - w * WARP_SIZE).min(WARP_SIZE);
            self.next_uid += 1;
            let warp = WarpRt::new(cta_slot, w, lanes, kernel.regs_per_thread(), self.next_uid);
            let slot = match self.free_warp_slots.pop() {
                Some(s) => {
                    self.warps[s] = warp;
                    self.warp_uids[s] = self.next_uid;
                    s
                }
                None => {
                    self.warps.push(warp);
                    self.warp_uids.push(self.next_uid);
                    self.warps.len() - 1
                }
            };
            warp_slots.push(slot);
        }
        self.cta_seq += 1;
        let cta = CtaRt {
            cta_id,
            phase: CtaPhase::Inactive { has_context: false },
            warps: warp_slots,
            live_warps: wpc,
            barrier_arrived: 0,
            smem: vec![0u32; (kernel.smem_bytes_per_cta() as usize).div_ceil(4)],
            reg_bytes: kernel.reg_bytes_per_cta(),
            smem_bytes: kernel.smem_bytes_per_cta(),
            pending_loads: 0,
            seq: self.cta_seq,
            inactive_since: now,
        };
        self.resident_reg_bytes += cta.reg_bytes;
        self.resident_smem_bytes += cta.smem_bytes;
        self.resident_warps += wpc;
        self.resident_ctas += 1;
        self.ctas[cta_slot] = cta;
        self.issue_dirty = true;
        if S::ENABLED {
            sink.emit(
                now,
                TraceEvent::CtaLaunch {
                    sm: self.id as u32,
                    cta_slot: cta_slot as u32,
                    cta_id,
                },
            );
        }
        self.try_activate(now, kernel, core, res, stats, sink);
    }

    fn active_slot_available(&self, wpc: u32, core: &CoreConfig, res: &ResidencyConfig) -> bool {
        match res.active {
            ActivePolicy::Unlimited => true,
            ActivePolicy::SchedulingLimit => {
                self.slot_ctas < core.max_ctas_per_sm
                    && self.slot_warps + wpc <= core.max_warps_per_sm
            }
        }
    }

    /// Whether an inactive CTA could make forward progress if activated.
    fn cta_ready(&self, cta: &CtaRt) -> bool {
        match cta.phase {
            CtaPhase::Inactive { has_context: false } => true,
            CtaPhase::Inactive { has_context: true } => cta.warps.iter().any(|&w| {
                let warp = &self.warps[w];
                !warp.done && !warp.waiting_barrier && warp.pending_loads == 0
            }),
            _ => false,
        }
    }

    /// Activates ready inactive CTAs while active slots are available.
    fn try_activate<S: TraceSink>(
        &mut self,
        now: u64,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        stats: &mut RunStats,
        sink: &mut S,
    ) {
        let wpc = kernel.warps_per_cta();
        loop {
            if !self.active_slot_available(wpc, core, res) {
                return;
            }
            // Oldest ready CTA first: partially-run CTAs drain capacity
            // sooner, fresh CTAs keep the pipeline fed.
            let candidate = self
                .ctas
                .iter()
                .enumerate()
                .filter(|(_, c)| self.cta_ready(c))
                .min_by_key(|(_, c)| c.seq)
                .map(|(i, c)| {
                    (
                        i,
                        matches!(c.phase, CtaPhase::Inactive { has_context: true }),
                    )
                });
            let Some((slot, has_context)) = candidate else {
                return;
            };
            let n_warps = self.ctas[slot].warps.len() as u32;
            self.slot_ctas += 1;
            self.slot_warps += n_warps;
            // Every activation opens a swap-in span (zero-length for
            // instant activations), so `finish_activation` can close it
            // unconditionally.
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEvent::SwapBegin {
                        sm: self.id as u32,
                        cta_slot: slot as u32,
                        cta_id: self.ctas[slot].cta_id,
                        dir: SwapDir::In,
                        fresh: !has_context,
                    },
                );
            }
            match res.swap {
                Some(swap) => {
                    let cost = if has_context {
                        stats.swaps.swaps_in += 1;
                        let cost = u64::from(swap.restore_cycles);
                        stats
                            .swap_gap
                            .record(now.saturating_sub(self.ctas[slot].inactive_since));
                        stats.swap_duration.record(cost);
                        cost
                    } else {
                        stats.swaps.fresh_activations += 1;
                        u64::from(swap.fresh_activation_cycles)
                    };
                    if cost == 0 {
                        self.finish_activation(slot, now, sink);
                    } else {
                        self.ctas[slot].phase = CtaPhase::SwappingIn {
                            done_at: now + cost,
                        };
                        self.swapping_ctas += 1;
                    }
                }
                None => {
                    if has_context {
                        stats.swaps.swaps_in += 1;
                    } else {
                        stats.swaps.fresh_activations += 1;
                    }
                    self.finish_activation(slot, now, sink);
                }
            }
        }
    }

    fn finish_activation<S: TraceSink>(&mut self, slot: usize, now: u64, sink: &mut S) {
        self.ctas[slot].phase = CtaPhase::Active;
        self.active_phase_warps += self.ctas[slot].warps.len() as u32;
        self.issue_dirty = true;
        if S::ENABLED {
            let (sm, cta_slot, cta_id) = (self.id as u32, slot as u32, self.ctas[slot].cta_id);
            sink.emit(
                now,
                TraceEvent::SwapEnd {
                    sm,
                    cta_slot,
                    cta_id,
                    dir: SwapDir::In,
                },
            );
            sink.emit(
                now,
                TraceEvent::CtaActivate {
                    sm,
                    cta_slot,
                    cta_id,
                },
            );
        }
    }

    /// Completes timed swap transitions and evaluates the swap trigger.
    #[allow(clippy::too_many_arguments)]
    fn update_residency<S: TraceSink>(
        &mut self,
        now: u64,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        stats: &mut RunStats,
        sink: &mut S,
    ) {
        let Some(swap) = res.swap else {
            // No swapping: still activate parked CTAs when slots free up
            // (e.g. after a CTA finished).
            if self.issue_dirty {
                self.try_activate(now, kernel, core, res, stats, sink);
            }
            return;
        };

        // 1. Complete in-flight transitions.
        for slot in 0..self.ctas.len() {
            match self.ctas[slot].phase {
                CtaPhase::SwappingOut { done_at } if done_at <= now => {
                    // The slot was already released when the save started.
                    self.ctas[slot].phase = CtaPhase::Inactive { has_context: true };
                    self.ctas[slot].inactive_since = now;
                    self.swapping_ctas -= 1;
                    if S::ENABLED {
                        sink.emit(
                            now,
                            TraceEvent::SwapEnd {
                                sm: self.id as u32,
                                cta_slot: slot as u32,
                                cta_id: self.ctas[slot].cta_id,
                                dir: SwapDir::Out,
                            },
                        );
                    }
                }
                CtaPhase::SwappingIn { done_at } if done_at <= now => {
                    self.swapping_ctas -= 1;
                    self.finish_activation(slot, now, sink);
                }
                _ => {}
            }
        }

        // 2. Fill any free active slots with ready CTAs.
        self.try_activate(now, kernel, core, res, stats, sink);

        // 3. Thrash feedback: hill-climb between "rotate" (normal VT) and
        //    "hold" (stable active set) on the measured issue rate.
        if let Some(th) = swap.throttle {
            if now >= self.throttle_window_end {
                let window = u64::from(th.window_cycles.max(1));
                let phase_len = th.phase_windows.max(2);
                if self.throttle_window_end > 0 {
                    // The first window of a phase inherits the previous
                    // mode's stall pattern; record the rest.
                    if self.phase_window >= 1 {
                        self.phase_accum += (self.window_issues << 16) / window;
                    }
                    self.phase_window += 1;
                    if self.phase_window >= phase_len {
                        let measured = self.phase_accum / u64::from(phase_len - 1);
                        let slot = usize::from(self.throttle_hold);
                        // Light EWMA so one noisy phase cannot flip modes
                        // permanently.
                        self.mode_ipc_est[slot] = Some(
                            self.mode_ipc_est[slot].map_or(measured, |old| (old + measured) / 2),
                        );
                        self.phase_accum = 0;
                        self.phase_window = 0;
                        self.phases_since_probe += 1;
                        self.throttle_hold = match (self.mode_ipc_est[0], self.mode_ipc_est[1]) {
                            (None, _) => false,
                            (Some(_), None) => true,
                            (Some(rotate), Some(hold)) => {
                                // Hysteresis: rotation is the architecture's
                                // default; holding must win by a clear margin.
                                let hold_wins = hold > rotate + rotate / 8;
                                if self.phases_since_probe >= th.probe_every_phases.max(2) {
                                    self.phases_since_probe = 0;
                                    !hold_wins // re-probe the loser
                                } else {
                                    hold_wins
                                }
                            }
                        };
                    }
                }
                self.window_issues = 0;
                self.throttle_window_end = now + window;
            }
            if self.throttle_hold {
                return;
            }
        }

        // 4. Trigger: swap out stalled active CTAs, one per ready
        //    replacement waiting in the inactive pool.
        if swap.trigger == SwapTrigger::Never {
            return;
        }
        let mut ready_replacements = self.ctas.iter().filter(|c| self.cta_ready(c)).count();
        if ready_replacements == 0 {
            return;
        }
        let mut swapped_any = false;
        for slot in 0..self.ctas.len() {
            if ready_replacements == 0 {
                break;
            }
            if self.ctas[slot].phase != CtaPhase::Active {
                continue;
            }
            if self.swap_trigger_met(slot, swap.trigger, kernel) {
                let n_warps = self.ctas[slot].warps.len() as u32;
                self.ctas[slot].phase = CtaPhase::SwappingOut {
                    done_at: now + u64::from(swap.save_cycles),
                };
                // Release the slot immediately: the incoming CTA's restore
                // overlaps with this save through the context buffer.
                self.slot_ctas -= 1;
                self.slot_warps -= n_warps;
                self.active_phase_warps -= n_warps;
                self.swapping_ctas += 1;
                self.issue_dirty = true;
                stats.swaps.swaps_out += 1;
                stats.swap_duration.record(u64::from(swap.save_cycles));
                if S::ENABLED {
                    let (sm, cta_slot, cta_id) =
                        (self.id as u32, slot as u32, self.ctas[slot].cta_id);
                    sink.emit(
                        now,
                        TraceEvent::CtaDeactivate {
                            sm,
                            cta_slot,
                            cta_id,
                        },
                    );
                    sink.emit(
                        now,
                        TraceEvent::SwapBegin {
                            sm,
                            cta_slot,
                            cta_id,
                            dir: SwapDir::Out,
                            fresh: false,
                        },
                    );
                }
                ready_replacements -= 1;
                swapped_any = true;
            }
        }
        if swapped_any {
            // Refill the freed slots in the same cycle (overlapped swap).
            self.try_activate(now, kernel, core, res, stats, sink);
        }
    }

    fn swap_trigger_met(&self, cta_slot: usize, trigger: SwapTrigger, kernel: &Kernel) -> bool {
        let cta = &self.ctas[cta_slot];
        let mut any_mem_stalled = false;
        let mut all_stalled = true;
        for &wslot in &cta.warps {
            let w = &self.warps[wslot];
            if w.done {
                continue;
            }
            if w.waiting_barrier {
                continue; // stalled, but not the memory kind
            }
            // Only *long-latency* stalls (L1 misses in flight) qualify;
            // a warp waiting out an L1 hit will resume within ~20 cycles
            // and swapping for it would thrash.
            let blocked_on_mem = w.long_pending_loads > 0
                && !w.scoreboard.can_issue(kernel.program().fetch(w.stack.pc()));
            if blocked_on_mem {
                any_mem_stalled = true;
            } else {
                all_stalled = false;
            }
        }
        match trigger {
            SwapTrigger::AllWarpsStalled => any_mem_stalled && all_stalled,
            SwapTrigger::AnyWarpStalled => any_mem_stalled,
            SwapTrigger::Never => false,
        }
    }

    // ----- per-cycle operation --------------------------------------------

    /// Advances the SM one cycle against the whole memory system and
    /// image (sequential compatibility path): runs the per-SM phase,
    /// flushes this SM's request outbox, and applies the deferred
    /// functional memory effects immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a warp traps (out-of-range or unaligned
    /// access).
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        mem: &mut MemSystem,
        image: &mut MemImage,
        stats: &mut RunStats,
        attr: EmptyAttr,
    ) -> Result<(), ExecError> {
        let id = self.id;
        let phase = if stats.hotspots.is_some() {
            self.tick_phase::<NullSink, true>(
                now,
                kernel,
                core,
                res,
                mem.front_mut(id),
                stats,
                &mut NullSink,
                attr,
            )
        } else {
            self.tick_phase::<NullSink, false>(
                now,
                kernel,
                core,
                res,
                mem.front_mut(id),
                stats,
                &mut NullSink,
                attr,
            )
        };
        mem.flush_outbox(id);
        self.apply_deferred(image)?;
        phase
    }

    /// The per-SM half of a cycle: writebacks, LD/ST events, residency,
    /// issue and stats. Touches only this SM's state plus its private
    /// memory front-end, so distinct SMs may run this phase on distinct
    /// threads. Global-memory functional effects are *recorded*, not
    /// applied — the engine must call [`Sm::apply_deferred`] afterwards,
    /// in SM order, to keep the shared [`MemImage`] bit-identical to the
    /// sequential schedule. With [`NullSink`] this monomorphizes to the
    /// untraced fast path, and with `PROFILED = false` every per-PC
    /// hotspot-profiling branch compiles out — unprofiled runs pay
    /// nothing and stay bit-identical.
    ///
    /// `PROFILED = true` requires `stats.hotspots` to be populated (the
    /// engine sets it up at construction when `CoreConfig::profile` is
    /// on); the recording calls are no-ops otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a warp traps on a fault detectable from
    /// per-SM state (unaligned or shared-memory out-of-range accesses);
    /// global out-of-range faults surface from [`Sm::apply_deferred`].
    #[allow(clippy::too_many_arguments)]
    pub fn tick_phase<S: TraceSink, const PROFILED: bool>(
        &mut self,
        now: u64,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        front: &mut SmFront,
        stats: &mut RunStats,
        sink: &mut S,
        attr: EmptyAttr,
    ) -> Result<(), ExecError> {
        // 1. Short-latency writebacks.
        while let Some(&Reverse((ready, wslot, reg, uid))) = self.writebacks.peek() {
            if ready > now {
                break;
            }
            self.writebacks.pop();
            if self.warp_uids[wslot] == uid {
                self.warps[wslot].scoreboard.clear(Reg(reg));
            }
        }

        // 2. Memory events (shared latency, global responses, long-stall
        //    notifications). Events may outlive their CTA — a warp can
        //    exit with loads in flight — so uids filter stale records.
        for event in self.ldst.tick_traced(now, front, sink) {
            match event {
                LdstEvent::Completed(c) => {
                    // Latency is observed per issue site, before the uid
                    // filter: the round trip happened even if the issuing
                    // warp's slot has since been recycled.
                    if PROFILED {
                        if let Some(h) = stats.hotspots.as_mut() {
                            h.record_mem_latency(c.pc as usize, now.saturating_sub(c.issued_at));
                        }
                    }
                    if self.warp_uids[c.warp_slot] != c.warp_uid {
                        continue;
                    }
                    let w = &mut self.warps[c.warp_slot];
                    if let Some(dst) = c.dst {
                        w.scoreboard.clear(dst);
                    }
                    if c.was_global_load {
                        w.pending_loads -= 1;
                        if c.was_long {
                            w.long_pending_loads -= 1;
                        }
                        let cta = &mut self.ctas[w.cta_slot];
                        cta.pending_loads -= 1;
                    }
                }
                LdstEvent::MissObserved {
                    warp_slot,
                    warp_uid,
                } => {
                    if self.warp_uids[warp_slot] == warp_uid {
                        self.warps[warp_slot].long_pending_loads += 1;
                    }
                }
            }
        }

        // 3. CTA residency: swap completions, trigger, activations.
        self.update_residency(now, kernel, core, res, stats, sink);

        // 4. Issue.
        if self.issue_dirty {
            self.rebuild_issue_list();
        }
        let schedulers = self.sched_last.len();
        let mut issued = 0u32;
        let mut first_issue_pc = None;
        for s in 0..schedulers {
            if let Some(wslot) = self.pick_warp(s, now, kernel, core) {
                if PROFILED && first_issue_pc.is_none() {
                    // Read before issue: the stack advances on issue.
                    first_issue_pc = Some(self.warps[wslot].stack.pc());
                }
                self.issue_warp::<S, PROFILED>(wslot, s, now, kernel, core, res, stats, sink)?;
                self.sched_last[s] = Some(wslot);
                issued += 1;
            }
        }

        self.window_issues += u64::from(issued);

        // 5. Stats.
        self.accumulate_stats::<PROFILED>(now, issued, first_issue_pc, kernel, stats, attr);
        Ok(())
    }

    fn rebuild_issue_list(&mut self) {
        self.issue_list.clear();
        for cta in &self.ctas {
            if cta.is_active() {
                for &w in &cta.warps {
                    if !self.warps[w].done {
                        self.issue_list.push(w);
                    }
                }
            }
        }
        // Age order gives the GTO scheduler its "oldest" notion and makes
        // LRR rotation deterministic.
        let warps = &self.warps;
        self.issue_list.sort_by_key(|&w| warps[w].age);
        self.issue_dirty = false;
    }

    fn readiness(&self, wslot: usize, now: u64, kernel: &Kernel) -> Readiness {
        let w = &self.warps[wslot];
        if w.done {
            return Readiness::Done;
        }
        if w.waiting_barrier {
            return Readiness::Barrier;
        }
        let instr = kernel.program().fetch(w.stack.pc());
        if !w.scoreboard.can_issue(instr) {
            return if w.pending_loads > 0 {
                Readiness::BlockedMem
            } else {
                Readiness::BlockedPipe
            };
        }
        if instr.is_mem() && !self.ldst.has_space() {
            return Readiness::LdstFull;
        }
        if matches!(instr, Instr::Sfu { .. }) && now < self.sfu_free_at {
            return Readiness::SfuBusy;
        }
        Readiness::Ready
    }

    /// Picks a warp for scheduler `s` (warps are statically partitioned
    /// across schedulers by slot index). Allocation-free: this runs once
    /// per scheduler per cycle.
    fn pick_warp(
        &mut self,
        s: usize,
        now: u64,
        kernel: &Kernel,
        core: &CoreConfig,
    ) -> Option<usize> {
        let schedulers = self.sched_last.len();
        let in_partition = |w: usize| w % schedulers == s;
        match core.scheduler {
            crate::config::SchedPolicy::Gto => {
                if let Some(last) = self.sched_last[s] {
                    if in_partition(last)
                        && self.issue_list.contains(&last)
                        && self.readiness(last, now, kernel) == Readiness::Ready
                    {
                        return Some(last);
                    }
                }
                // Oldest ready: the issue list is already age-sorted.
                self.issue_list
                    .iter()
                    .copied()
                    .filter(|&w| in_partition(w))
                    .find(|&w| self.readiness(w, now, kernel) == Readiness::Ready)
            }
            crate::config::SchedPolicy::Lrr => {
                let n = self.issue_list.iter().filter(|&&w| in_partition(w)).count();
                if n == 0 {
                    return None;
                }
                let start = self.sched_ptr[s] % n;
                // Rotate through the partition: positions start.. then 0..start.
                let mut pick = None;
                for round in 0..2 {
                    let mut idx = 0;
                    for &w in &self.issue_list {
                        if !in_partition(w) {
                            continue;
                        }
                        let in_range = if round == 0 {
                            idx >= start
                        } else {
                            idx < start
                        };
                        if in_range && self.readiness(w, now, kernel) == Readiness::Ready {
                            pick = Some((idx, w));
                            break;
                        }
                        idx += 1;
                    }
                    if pick.is_some() {
                        break;
                    }
                }
                let (pos, w) = pick?;
                self.sched_ptr[s] = (pos + 1) % n;
                Some(w)
            }
        }
    }

    // ----- instruction execution --------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn issue_warp<S: TraceSink, const PROFILED: bool>(
        &mut self,
        wslot: usize,
        sched: usize,
        now: u64,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        stats: &mut RunStats,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        let pc = self.warps[wslot].stack.pc();
        let instr = *kernel.program().fetch(pc);
        let mask = self.warps[wslot].stack.active_mask();
        stats.warp_instrs += 1;
        stats.thread_instrs += u64::from(mask.count_ones());
        if PROFILED {
            if let Some(h) = stats.hotspots.as_mut() {
                h.record_warp_issue(pc, mask.count_ones());
            }
        }
        if S::ENABLED {
            sink.emit(
                now,
                TraceEvent::WarpIssue {
                    sm: self.id as u32,
                    sched: sched as u32,
                    warp_slot: wslot as u32,
                    pc: pc as u32,
                },
            );
        }

        match instr {
            Instr::Alu { op, dst, a, b } => {
                self.exec_lanes(wslot, kernel, mask, |regs, ctx| {
                    let va = exec::resolve(a, regs, ctx);
                    let vb = exec::resolve(b, regs, ctx);
                    Some((dst, exec::eval_alu(op, va, vb)))
                });
                self.retire_alu(wslot, dst, now + u64::from(core.alu_latency));
                self.advance(wslot);
            }
            Instr::Mad { dst, a, b, c } => {
                self.exec_lanes(wslot, kernel, mask, |regs, ctx| {
                    let (va, vb, vc) = (
                        exec::resolve(a, regs, ctx),
                        exec::resolve(b, regs, ctx),
                        exec::resolve(c, regs, ctx),
                    );
                    Some((dst, exec::eval_mad(va, vb, vc)))
                });
                self.retire_alu(wslot, dst, now + u64::from(core.alu_latency));
                self.advance(wslot);
            }
            Instr::Ffma { dst, a, b, c } => {
                self.exec_lanes(wslot, kernel, mask, |regs, ctx| {
                    let (va, vb, vc) = (
                        exec::resolve(a, regs, ctx),
                        exec::resolve(b, regs, ctx),
                        exec::resolve(c, regs, ctx),
                    );
                    Some((dst, exec::eval_ffma(va, vb, vc)))
                });
                self.retire_alu(wslot, dst, now + u64::from(core.alu_latency));
                self.advance(wslot);
            }
            Instr::Sfu { op, dst, a } => {
                self.exec_lanes(wslot, kernel, mask, |regs, ctx| {
                    Some((dst, exec::eval_sfu(op, exec::resolve(a, regs, ctx))))
                });
                self.retire_alu(wslot, dst, now + u64::from(core.sfu_latency));
                self.sfu_free_at = now + u64::from(core.sfu_init_interval);
                self.advance(wslot);
            }
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                self.exec_mem::<S, PROFILED>(
                    wslot,
                    now,
                    pc,
                    kernel,
                    core,
                    mask,
                    space,
                    addr,
                    offset,
                    MemOp::Load { dst },
                    stats,
                    sink,
                )?;
                self.advance(wslot);
            }
            Instr::St {
                space,
                addr,
                offset,
                src,
            } => {
                self.exec_mem::<S, PROFILED>(
                    wslot,
                    now,
                    pc,
                    kernel,
                    core,
                    mask,
                    space,
                    addr,
                    offset,
                    MemOp::Store { src },
                    stats,
                    sink,
                )?;
                self.advance(wslot);
            }
            Instr::Atom {
                op,
                dst,
                addr,
                offset,
                val,
            } => {
                self.exec_mem::<S, PROFILED>(
                    wslot,
                    now,
                    pc,
                    kernel,
                    core,
                    mask,
                    MemSpace::Global,
                    addr,
                    offset,
                    MemOp::Atomic { op, dst, val },
                    stats,
                    sink,
                )?;
                self.advance(wslot);
            }
            Instr::Bar => {
                stats.barriers += 1;
                self.warps[wslot].waiting_barrier = true;
                self.warps[wslot].barrier_since = now;
                self.warps[wslot].stack.advance();
                let cta_slot = self.warps[wslot].cta_slot;
                self.ctas[cta_slot].barrier_arrived += 1;
                if S::ENABLED {
                    sink.emit(
                        now,
                        TraceEvent::BarrierArrive {
                            sm: self.id as u32,
                            cta_slot: cta_slot as u32,
                            warp_slot: wslot as u32,
                        },
                    );
                }
                self.check_barrier_release(cta_slot, now, stats, sink);
                self.issue_dirty = true;
            }
            Instr::Bra { target } => {
                self.warps[wslot].stack.jump(target);
                self.check_done(wslot, kernel, core, res, now, stats, sink);
            }
            Instr::BraCond {
                pred,
                when,
                target,
                reconv,
            } => {
                let mut taken = 0u32;
                {
                    let w = &self.warps[wslot];
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let ctx = thread_ctx(w, lane, kernel, &self.ctas);
                        let v = exec::resolve(pred, w.lane_regs(lane), &ctx);
                        let t = match when {
                            BranchIf::NonZero => v != 0,
                            BranchIf::Zero => v == 0,
                        };
                        if t {
                            taken |= 1 << lane;
                        }
                    }
                }
                let divergent = self.warps[wslot].stack.branch(taken, target, reconv);
                if divergent {
                    stats.divergent_branches += 1;
                }
                if PROFILED {
                    if let Some(h) = stats.hotspots.as_mut() {
                        h.record_branch(pc, divergent);
                    }
                }
            }
            Instr::Exit => {
                self.warps[wslot].stack.exit();
                self.check_done(wslot, kernel, core, res, now, stats, sink);
            }
        }
        Ok(())
    }

    /// Runs `f` over every active lane, writing its result register.
    fn exec_lanes(
        &mut self,
        wslot: usize,
        kernel: &Kernel,
        mask: u32,
        mut f: impl FnMut(&[u32], &ThreadCtx) -> Option<(Reg, u32)>,
    ) {
        let ctas = &self.ctas;
        let w = &mut self.warps[wslot];
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let ctx = thread_ctx(w, lane, kernel, ctas);
            if let Some((dst, v)) = f(w.lane_regs(lane), &ctx) {
                w.set_reg(lane, dst.0, v);
            }
        }
    }

    fn retire_alu(&mut self, wslot: usize, dst: Reg, ready: u64) {
        self.warps[wslot].scoreboard.set_pending(dst);
        self.writebacks
            .push(Reverse((ready, wslot, dst.0, self.warp_uids[wslot])));
    }

    fn advance(&mut self, wslot: usize) {
        self.warps[wslot].stack.advance();
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_mem<S: TraceSink, const PROFILED: bool>(
        &mut self,
        wslot: usize,
        now: u64,
        pc: usize,
        kernel: &Kernel,
        core: &CoreConfig,
        mask: u32,
        space: MemSpace,
        addr: Operand,
        offset: i32,
        op: MemOp,
        stats: &mut RunStats,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        // Compute lane addresses and resolve source operand values now;
        // the LD/ST unit and memory system model only the timing.
        // Shared-memory effects (per-CTA, per-SM state) also apply now,
        // but global-memory effects are *recorded* and applied by
        // [`Sm::apply_deferred`] at the cycle's ordered merge, so this
        // phase never touches state shared between SMs.
        let mut addrs = [0u32; WARP_SIZE as usize];
        let mut vals = [0u32; WARP_SIZE as usize];
        {
            let (warps, ctas) = (&mut self.warps, &mut self.ctas);
            let w = &mut warps[wslot];
            let cta = &mut ctas[w.cta_slot];
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                let ctx = ThreadCtx {
                    tid: w.first_tid + lane,
                    ctaid: cta.cta_id,
                    ntid: kernel.threads_per_cta(),
                    ncta: kernel.num_ctas(),
                };
                let a = exec::resolve(addr, w.lane_regs(lane), &ctx).wrapping_add(offset as u32);
                if !a.is_multiple_of(4) {
                    return Err(ExecError::Unaligned { addr: a });
                }
                addrs[lane as usize] = a;
                match op {
                    MemOp::Load { dst } => {
                        if space == MemSpace::Shared {
                            let v = *cta
                                .smem
                                .get((a / 4) as usize)
                                .ok_or(ExecError::SharedOutOfRange { addr: a })?;
                            w.set_reg(lane, dst.0, v);
                        }
                    }
                    MemOp::Store { src } => {
                        let v = exec::resolve(src, w.lane_regs(lane), &ctx);
                        match space {
                            MemSpace::Global => vals[lane as usize] = v,
                            MemSpace::Shared => {
                                let word = cta
                                    .smem
                                    .get_mut((a / 4) as usize)
                                    .ok_or(ExecError::SharedOutOfRange { addr: a })?;
                                *word = v;
                            }
                        }
                    }
                    MemOp::Atomic { val, .. } => {
                        vals[lane as usize] = exec::resolve(val, w.lane_regs(lane), &ctx);
                    }
                }
            }
        }
        if space == MemSpace::Global {
            let body = match op {
                MemOp::Load { dst } => DeferredBody::Load { dst },
                MemOp::Store { .. } => DeferredBody::Store { vals },
                MemOp::Atomic { op, dst, .. } => DeferredBody::Atomic { op, dst, vals },
            };
            self.deferred.push(DeferredAccess {
                wslot,
                mask,
                addrs,
                body,
            });
        }

        // Timing side.
        match space {
            MemSpace::Shared => {
                let rounds = shared_bank_conflicts(&addrs, mask, core.smem_banks);
                if PROFILED {
                    if let Some(h) = stats.hotspots.as_mut() {
                        h.record_smem(pc, u64::from(rounds));
                    }
                }
                let dst = match op {
                    MemOp::Load { dst } => {
                        self.warps[wslot].scoreboard.set_pending(dst);
                        Some(dst)
                    }
                    _ => None,
                };
                self.ldst
                    .push_shared(wslot, self.warp_uids[wslot], rounds, dst, pc as u32, now);
            }
            MemSpace::Global => {
                let txs = coalesce(&addrs, mask, self.line_bytes);
                let lines: Vec<u64> = txs.iter().map(|t| t.line_addr).collect();
                if PROFILED {
                    if let Some(h) = stats.hotspots.as_mut() {
                        h.record_coalesce(pc, lines.len() as u64);
                    }
                }
                if S::ENABLED {
                    let kind = match op {
                        MemOp::Load { .. } => ReqKind::Load,
                        MemOp::Store { .. } => ReqKind::Store,
                        MemOp::Atomic { .. } => ReqKind::Atomic,
                    };
                    sink.emit(
                        now,
                        TraceEvent::Coalesce {
                            sm: self.id as u32,
                            warp_slot: wslot as u32,
                            kind: kind.trace_kind(),
                            lines: lines.len() as u32,
                        },
                    );
                }
                match op {
                    MemOp::Load { dst } => {
                        self.warps[wslot].scoreboard.set_pending(dst);
                        self.warps[wslot].pending_loads += 1;
                        let cta_slot = self.warps[wslot].cta_slot;
                        self.ctas[cta_slot].pending_loads += 1;
                        self.ldst.push_global(
                            wslot,
                            self.warp_uids[wslot],
                            lines,
                            ReqKind::Load,
                            Some(dst),
                            pc as u32,
                            now,
                        );
                    }
                    MemOp::Store { .. } => {
                        self.ldst.push_global(
                            wslot,
                            self.warp_uids[wslot],
                            lines,
                            ReqKind::Store,
                            None,
                            pc as u32,
                            now,
                        );
                    }
                    MemOp::Atomic { dst, .. } => {
                        if let Some(d) = dst {
                            self.warps[wslot].scoreboard.set_pending(d);
                        }
                        self.warps[wslot].pending_loads += 1;
                        let cta_slot = self.warps[wslot].cta_slot;
                        self.ctas[cta_slot].pending_loads += 1;
                        self.ldst.push_global(
                            wslot,
                            self.warp_uids[wslot],
                            lines,
                            ReqKind::Atomic,
                            dst,
                            pc as u32,
                            now,
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies the global-memory functional effects recorded by this
    /// cycle's [`Sm::tick_phase`] to the shared image, in issue order.
    /// The engine calls this once per SM per cycle, in SM order, before
    /// dispatch — which is exactly the order the fully sequential engine
    /// interleaved these effects, so the image (and every value a later
    /// load observes) is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::GlobalOutOfRange`] when a recorded access
    /// falls outside the image — the sequential engine's trap, surfacing
    /// one merge step later.
    pub fn apply_deferred(&mut self, image: &mut MemImage) -> Result<(), ExecError> {
        let deferred = std::mem::take(&mut self.deferred);
        let mut result = Ok(());
        'outer: for acc in &deferred {
            let w = &mut self.warps[acc.wslot];
            let mut m = acc.mask;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                let a = acc.addrs[lane as usize];
                match acc.body {
                    DeferredBody::Load { dst } => match image.load(a) {
                        Some(v) => w.set_reg(lane, dst.0, v),
                        None => {
                            result = Err(ExecError::GlobalOutOfRange { addr: a });
                            break 'outer;
                        }
                    },
                    DeferredBody::Store { ref vals } => {
                        if !image.store(a, vals[lane as usize]) {
                            result = Err(ExecError::GlobalOutOfRange { addr: a });
                            break 'outer;
                        }
                    }
                    DeferredBody::Atomic { op, dst, ref vals } => match image.load(a) {
                        Some(old) => {
                            image.store(a, exec::eval_atom(op, old, vals[lane as usize]));
                            if let Some(d) = dst {
                                w.set_reg(lane, d.0, old);
                            }
                        }
                        None => {
                            result = Err(ExecError::GlobalOutOfRange { addr: a });
                            break 'outer;
                        }
                    },
                }
            }
        }
        // Hand the buffer back so its capacity is reused next cycle.
        let mut deferred = deferred;
        deferred.clear();
        self.deferred = deferred;
        result
    }

    fn check_barrier_release<S: TraceSink>(
        &mut self,
        cta_slot: usize,
        now: u64,
        stats: &mut RunStats,
        sink: &mut S,
    ) {
        let cta = &mut self.ctas[cta_slot];
        if cta.live_warps > 0 && cta.barrier_arrived >= cta.live_warps {
            cta.barrier_arrived = 0;
            for &w in &cta.warps.clone() {
                if self.warps[w].waiting_barrier {
                    self.warps[w].waiting_barrier = false;
                    stats
                        .barrier_wait
                        .record(now.saturating_sub(self.warps[w].barrier_since));
                    if S::ENABLED {
                        sink.emit(
                            now,
                            TraceEvent::BarrierRelease {
                                sm: self.id as u32,
                                cta_slot: cta_slot as u32,
                                warp_slot: w as u32,
                            },
                        );
                    }
                }
            }
            self.issue_dirty = true;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_done<S: TraceSink>(
        &mut self,
        wslot: usize,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        now: u64,
        stats: &mut RunStats,
        sink: &mut S,
    ) {
        if !self.warps[wslot].stack.is_done() || self.warps[wslot].done {
            return;
        }
        self.warps[wslot].done = true;
        self.max_simt_depth = self.max_simt_depth.max(self.warps[wslot].stack.max_depth());
        let cta_slot = self.warps[wslot].cta_slot;
        self.ctas[cta_slot].live_warps -= 1;
        self.issue_dirty = true;
        if self.ctas[cta_slot].live_warps == 0 {
            self.finish_cta(cta_slot, kernel, core, res, now, stats, sink);
        } else {
            // Remaining warps may all be at the barrier now.
            self.check_barrier_release(cta_slot, now, stats, sink);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_cta<S: TraceSink>(
        &mut self,
        cta_slot: usize,
        kernel: &Kernel,
        core: &CoreConfig,
        res: &ResidencyConfig,
        now: u64,
        stats: &mut RunStats,
        sink: &mut S,
    ) {
        let n_warps = self.ctas[cta_slot].warps.len() as u32;
        if S::ENABLED {
            let (sm, slot, cta_id) = (self.id as u32, cta_slot as u32, self.ctas[cta_slot].cta_id);
            // Close whatever span is open above the resident span so the
            // final CtaComplete balances the CtaLaunch.
            if self.ctas[cta_slot].is_active() {
                sink.emit(
                    now,
                    TraceEvent::CtaDeactivate {
                        sm,
                        cta_slot: slot,
                        cta_id,
                    },
                );
            } else if matches!(self.ctas[cta_slot].phase, CtaPhase::SwappingIn { .. }) {
                sink.emit(
                    now,
                    TraceEvent::SwapEnd {
                        sm,
                        cta_slot: slot,
                        cta_id,
                        dir: SwapDir::In,
                    },
                );
            }
            sink.emit(
                now,
                TraceEvent::CtaComplete {
                    sm,
                    cta_slot: slot,
                    cta_id,
                },
            );
        }
        if self.ctas[cta_slot].holds_active_slot() {
            self.slot_ctas -= 1;
            self.slot_warps -= n_warps;
            if self.ctas[cta_slot].is_active() {
                self.active_phase_warps -= n_warps;
            } else {
                self.swapping_ctas -= 1; // SwappingIn
            }
        } else {
            // Only Active CTAs issue, so a CTA cannot finish mid-swap.
            debug_assert!(
                !matches!(self.ctas[cta_slot].phase, CtaPhase::SwappingOut { .. }),
                "CTA finished while swapping out"
            );
        }
        self.resident_reg_bytes -= self.ctas[cta_slot].reg_bytes;
        self.resident_smem_bytes -= self.ctas[cta_slot].smem_bytes;
        self.resident_warps -= n_warps;
        self.resident_ctas -= 1;
        for &w in &self.ctas[cta_slot].warps.clone() {
            // Invalidate the slot's uid so in-flight completions and
            // writebacks for this warp are dropped.
            self.warp_uids[w] = 0;
            self.free_warp_slots.push(w);
        }
        self.ctas[cta_slot].phase = CtaPhase::Finished;
        self.ctas[cta_slot].warps.clear();
        self.free_cta_slots.push(cta_slot);
        self.issue_dirty = true;
        stats.ctas_completed += 1;
        // A slot freed: a parked CTA may activate.
        self.try_activate(now, kernel, core, res, stats, sink);
    }

    // ----- stats -------------------------------------------------------------

    fn accumulate_stats<const PROFILED: bool>(
        &self,
        now: u64,
        issued: u32,
        first_issue_pc: Option<usize>,
        kernel: &Kernel,
        stats: &mut RunStats,
        attr: EmptyAttr,
    ) {
        let occ = &mut stats.occupancy;
        occ.sm_cycles += 1;
        occ.resident_warp_cycles += u64::from(self.resident_warps);
        occ.active_warp_cycles += u64::from(self.active_phase_warps);
        occ.resident_cta_cycles += u64::from(self.resident_ctas);
        occ.active_cta_cycles += u64::from(self.slot_ctas);
        occ.reg_byte_cycles += u64::from(self.resident_reg_bytes);
        occ.smem_byte_cycles += u64::from(self.resident_smem_bytes);
        if self.swapping_ctas > 0 {
            stats.swaps.swap_busy_cycles += 1;
        }
        stats.ldst_queue.sample(self.ldst.queue_len() as u64);
        if issued > 0 {
            stats.issue_cycles += 1;
            // The cycle's one issue tally goes to the first PC that
            // issued, so per-PC `issued` sums exactly to `issue_cycles`.
            if PROFILED {
                if let (Some(h), Some(pc)) = (stats.hotspots.as_mut(), first_issue_pc) {
                    h.record_issue_cycle(pc);
                }
            }
            return;
        }
        // Idle cycle: classify.
        if self.resident_warps == 0 {
            stats.idle.no_warps += 1;
            // Empty sub-split (keeps `empty.total() == idle.no_warps`):
            // with undispatched CTAs left the SM is starved by whichever
            // limit family governs admission; otherwise it is draining.
            if !attr.work_left {
                stats.empty.drain += 1;
            } else if attr.scheduling_limited {
                stats.empty.scheduling += 1;
            } else {
                stats.empty.capacity += 1;
            }
            return;
        }
        if self.active_phase_warps == 0 {
            if self.swapping_ctas > 0 {
                stats.idle.swapping += 1;
                // Context-switch overhead has no instruction to blame.
                if PROFILED {
                    charge_stall(stats, None, StallReason::Swap);
                }
            } else {
                // Everything resident is inactive and waiting on memory.
                stats.idle.memory += 1;
                if PROFILED {
                    // Blame the oldest inactive warp with loads in flight.
                    let pc = self
                        .warps
                        .iter()
                        .filter(|w| !w.done && w.pending_loads > 0)
                        .min_by_key(|w| w.age)
                        .map(|w| w.stack.pc());
                    charge_stall(stats, pc, StallReason::Memory);
                }
            }
            return;
        }
        let (mut mem_b, mut pipe_b, mut barrier_b) = (false, false, false);
        let mut all_barrier = true;
        // Oldest blamable instruction per stall class; the issue list is
        // age-sorted, so the first hit of each class is the oldest.
        let (mut first_mem, mut first_pipe, mut first_barrier, mut first_other) =
            (None, None, None, None);
        for &w in &self.issue_list {
            match self.readiness(w, now, kernel) {
                Readiness::BlockedMem => {
                    mem_b = true;
                    all_barrier = false;
                    if PROFILED && first_mem.is_none() {
                        first_mem = Some(self.warps[w].stack.pc());
                    }
                }
                Readiness::BlockedPipe => {
                    pipe_b = true;
                    all_barrier = false;
                    if PROFILED && first_pipe.is_none() {
                        first_pipe = Some(self.warps[w].stack.pc());
                    }
                }
                Readiness::Barrier => {
                    barrier_b = true;
                    // The stack already advanced past the Bar: the charge
                    // lands on the instruction waiting behind the barrier.
                    if PROFILED && first_barrier.is_none() {
                        first_barrier = Some(self.warps[w].stack.pc());
                    }
                }
                Readiness::Done => {}
                // LD/ST queue or SFU structural hazards, and ready warps
                // a scheduler partition could not reach, fall through to
                // the `other` bucket below.
                Readiness::LdstFull | Readiness::SfuBusy | Readiness::Ready => {
                    all_barrier = false;
                    if PROFILED && first_other.is_none() {
                        first_other = Some(self.warps[w].stack.pc());
                    }
                }
            }
        }
        let (bucket, blame, reason) = if mem_b {
            (&mut stats.idle.memory, first_mem, StallReason::Memory)
        } else if barrier_b && all_barrier {
            (&mut stats.idle.barrier, first_barrier, StallReason::Barrier)
        } else if pipe_b {
            (&mut stats.idle.pipeline, first_pipe, StallReason::Pipeline)
        } else {
            // Structural hazards (LD/ST queue, SFU interval, scheduler
            // partition imbalance) and anything unclassified.
            (&mut stats.idle.other, first_other, StallReason::Structural)
        };
        *bucket += 1;
        if PROFILED {
            charge_stall(stats, blame, reason);
        }
    }

    // ----- introspection -------------------------------------------------------

    /// Whether the SM holds no CTAs and has no local work in flight.
    pub fn idle(&self) -> bool {
        self.resident_ctas == 0 && self.ldst.idle() && self.writebacks.is_empty()
    }

    /// Resident CTAs right now.
    pub fn resident_ctas(&self) -> u32 {
        self.resident_ctas
    }

    /// Resident warps right now.
    pub fn resident_warps(&self) -> u32 {
        self.resident_warps
    }

    /// Schedulable (active-phase) warps right now.
    pub fn active_warps(&self) -> u32 {
        self.active_phase_warps
    }

    /// CTAs holding active slots right now.
    pub fn slot_ctas(&self) -> u32 {
        self.slot_ctas
    }

    /// Deepest SIMT stack seen on this SM so far.
    pub fn max_simt_depth(&self) -> usize {
        self.max_simt_depth
    }

    /// Register-file bytes held by resident CTAs right now.
    pub fn resident_reg_bytes(&self) -> u32 {
        self.resident_reg_bytes
    }

    /// Shared-memory bytes held by resident CTAs right now.
    pub fn resident_smem_bytes(&self) -> u32 {
        self.resident_smem_bytes
    }

    // ----- checkpointing -------------------------------------------------------

    /// Serializes the complete SM state — CTA and warp tables (including
    /// freed slots awaiting reuse), scheduler pointers, LD/ST unit,
    /// writeback pipe and throttle state — for checkpointing. Must be
    /// called at a cycle boundary (after [`Sm::apply_deferred`]); the
    /// transient issue list is rebuilt on restore.
    ///
    /// # Panics
    ///
    /// Panics if deferred memory effects are still queued, which would
    /// mean the caller is mid-cycle.
    pub fn snapshot(&self) -> vt_json::Json {
        use vt_json::Json;
        assert!(
            self.deferred.is_empty(),
            "SM snapshot taken mid-cycle (deferred effects queued)"
        );
        let opt_u64 = |o: Option<u64>| match o {
            Some(x) => Json::UInt(x),
            None => Json::Null,
        };
        let mut writebacks: Vec<(u64, usize, u16, u64)> =
            self.writebacks.iter().map(|r| r.0).collect();
        writebacks.sort_unstable();
        Json::Object(vec![
            ("id".into(), Json::UInt(self.id as u64)),
            ("line_bytes".into(), Json::UInt(u64::from(self.line_bytes))),
            (
                "ctas".into(),
                Json::Array(self.ctas.iter().map(CtaRt::snapshot).collect()),
            ),
            (
                "free_cta_slots".into(),
                Json::Array(
                    self.free_cta_slots
                        .iter()
                        .map(|&s| Json::UInt(s as u64))
                        .collect(),
                ),
            ),
            (
                "warps".into(),
                Json::Array(self.warps.iter().map(WarpRt::snapshot).collect()),
            ),
            (
                "free_warp_slots".into(),
                Json::Array(
                    self.free_warp_slots
                        .iter()
                        .map(|&s| Json::UInt(s as u64))
                        .collect(),
                ),
            ),
            (
                "warp_uids".into(),
                Json::Array(self.warp_uids.iter().map(|&u| Json::UInt(u)).collect()),
            ),
            (
                "resident_reg_bytes".into(),
                Json::UInt(u64::from(self.resident_reg_bytes)),
            ),
            (
                "resident_smem_bytes".into(),
                Json::UInt(u64::from(self.resident_smem_bytes)),
            ),
            (
                "resident_warps".into(),
                Json::UInt(u64::from(self.resident_warps)),
            ),
            (
                "resident_ctas".into(),
                Json::UInt(u64::from(self.resident_ctas)),
            ),
            ("slot_ctas".into(), Json::UInt(u64::from(self.slot_ctas))),
            ("slot_warps".into(), Json::UInt(u64::from(self.slot_warps))),
            (
                "active_phase_warps".into(),
                Json::UInt(u64::from(self.active_phase_warps)),
            ),
            (
                "swapping_ctas".into(),
                Json::UInt(u64::from(self.swapping_ctas)),
            ),
            (
                "sched_last".into(),
                Json::Array(
                    self.sched_last
                        .iter()
                        .map(|&o| opt_u64(o.map(|s| s as u64)))
                        .collect(),
                ),
            ),
            (
                "sched_ptr".into(),
                Json::Array(
                    self.sched_ptr
                        .iter()
                        .map(|&p| Json::UInt(p as u64))
                        .collect(),
                ),
            ),
            ("sfu_free_at".into(), Json::UInt(self.sfu_free_at)),
            ("ldst".into(), self.ldst.snapshot()),
            (
                "writebacks".into(),
                Json::Array(
                    writebacks
                        .into_iter()
                        .map(|(ready, wslot, reg, uid)| {
                            Json::Array(vec![
                                Json::UInt(ready),
                                Json::UInt(wslot as u64),
                                Json::UInt(u64::from(reg)),
                                Json::UInt(uid),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("next_uid".into(), Json::UInt(self.next_uid)),
            ("cta_seq".into(), Json::UInt(self.cta_seq)),
            (
                "max_simt_depth".into(),
                Json::UInt(self.max_simt_depth as u64),
            ),
            ("throttle_hold".into(), Json::Bool(self.throttle_hold)),
            (
                "throttle_window_end".into(),
                Json::UInt(self.throttle_window_end),
            ),
            (
                "phase_window".into(),
                Json::UInt(u64::from(self.phase_window)),
            ),
            ("phase_accum".into(), Json::UInt(self.phase_accum)),
            (
                "phases_since_probe".into(),
                Json::UInt(u64::from(self.phases_since_probe)),
            ),
            ("window_issues".into(), Json::UInt(self.window_issues)),
            (
                "mode_ipc_est".into(),
                Json::Array(vec![
                    opt_u64(self.mode_ipc_est[0]),
                    opt_u64(self.mode_ipc_est[1]),
                ]),
            ),
        ])
    }

    /// Rebuilds an SM from [`Sm::snapshot`] output. The issue list is
    /// marked dirty so the first scheduling pass regenerates it.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &vt_json::Json) -> Result<Sm, String> {
        use vt_json::{elem_u64, req, req_array, req_bool, req_u64, Json};
        let opt_u64 = |j: &Json, what: &str| -> Result<Option<u64>, String> {
            match j {
                Json::Null => Ok(None),
                other => Ok(Some(
                    other
                        .as_u64()
                        .ok_or_else(|| format!("{what} is not a u64"))?,
                )),
            }
        };
        let usize_vec = |v: &Json, key: &str| -> Result<Vec<usize>, String> {
            req_array(v, key)?
                .iter()
                .map(|s| {
                    s.as_u64()
                        .map(|x| x as usize)
                        .ok_or_else(|| format!("{key} element is not a u64"))
                })
                .collect()
        };
        let ctas = req_array(v, "ctas")?
            .iter()
            .map(CtaRt::restore)
            .collect::<Result<Vec<_>, _>>()?;
        let warps = req_array(v, "warps")?
            .iter()
            .map(WarpRt::restore)
            .collect::<Result<Vec<_>, _>>()?;
        let warp_uids = req_array(v, "warp_uids")?
            .iter()
            .map(|u| u.as_u64().ok_or("warp uid is not a u64"))
            .collect::<Result<Vec<u64>, &str>>()?;
        if warp_uids.len() != warps.len() {
            return Err("warp uid table length mismatch".to_string());
        }
        let mut sched_last = Vec::new();
        for item in req_array(v, "sched_last")? {
            sched_last.push(opt_u64(item, "sched_last slot")?.map(|s| s as usize));
        }
        if sched_last.is_empty() {
            return Err("SM has no schedulers".to_string());
        }
        let mut writebacks = BinaryHeap::new();
        for item in req_array(v, "writebacks")? {
            let a = item.as_array().ok_or("writeback is not an array")?;
            writebacks.push(Reverse((
                elem_u64(a, 0)?,
                elem_u64(a, 1)? as usize,
                elem_u64(a, 2)? as u16,
                elem_u64(a, 3)?,
            )));
        }
        let est = req_array(v, "mode_ipc_est")?;
        if est.len() != 2 {
            return Err("mode_ipc_est must have 2 entries".to_string());
        }
        Ok(Sm {
            id: req_u64(v, "id")? as usize,
            line_bytes: req_u64(v, "line_bytes")? as u32,
            ctas,
            free_cta_slots: usize_vec(v, "free_cta_slots")?,
            warps,
            free_warp_slots: usize_vec(v, "free_warp_slots")?,
            warp_uids,
            resident_reg_bytes: req_u64(v, "resident_reg_bytes")? as u32,
            resident_smem_bytes: req_u64(v, "resident_smem_bytes")? as u32,
            resident_warps: req_u64(v, "resident_warps")? as u32,
            resident_ctas: req_u64(v, "resident_ctas")? as u32,
            slot_ctas: req_u64(v, "slot_ctas")? as u32,
            slot_warps: req_u64(v, "slot_warps")? as u32,
            active_phase_warps: req_u64(v, "active_phase_warps")? as u32,
            swapping_ctas: req_u64(v, "swapping_ctas")? as u32,
            sched_ptr: {
                let p = usize_vec(v, "sched_ptr")?;
                if p.len() != sched_last.len() {
                    return Err("scheduler pointer table length mismatch".to_string());
                }
                p
            },
            sched_last,
            sfu_free_at: req_u64(v, "sfu_free_at")?,
            ldst: LdstUnit::restore(req(v, "ldst")?)?,
            writebacks,
            issue_list: Vec::new(),
            issue_dirty: true,
            next_uid: req_u64(v, "next_uid")?,
            cta_seq: req_u64(v, "cta_seq")?,
            max_simt_depth: req_u64(v, "max_simt_depth")? as usize,
            throttle_hold: req_bool(v, "throttle_hold")?,
            throttle_window_end: req_u64(v, "throttle_window_end")?,
            phase_window: req_u64(v, "phase_window")? as u32,
            phase_accum: req_u64(v, "phase_accum")?,
            phases_since_probe: req_u64(v, "phases_since_probe")? as u32,
            window_issues: req_u64(v, "window_issues")?,
            mode_ipc_est: [
                opt_u64(&est[0], "mode_ipc_est[0]")?,
                opt_u64(&est[1], "mode_ipc_est[1]")?,
            ],
            deferred: Vec::new(),
        })
    }
}

/// Memory micro-op discriminant used by `exec_mem`.
#[derive(Debug, Clone, Copy)]
enum MemOp {
    Load {
        dst: Reg,
    },
    Store {
        src: Operand,
    },
    Atomic {
        op: vt_isa::AtomOp,
        dst: Option<Reg>,
        val: Operand,
    },
}

/// Charges one stall cycle of `reason` to `pc` in the hotspot profile
/// (unattributed when no instruction is blamable). Only called on
/// `PROFILED = true` paths.
fn charge_stall(stats: &mut RunStats, pc: Option<usize>, reason: StallReason) {
    if let Some(h) = stats.hotspots.as_mut() {
        h.record_stall(pc, reason);
    }
}

fn thread_ctx(w: &WarpRt, lane: u32, kernel: &Kernel, ctas: &[CtaRt]) -> ThreadCtx {
    ThreadCtx {
        tid: w.first_tid + lane,
        ctaid: ctas[w.cta_slot].cta_id,
        ntid: kernel.threads_per_cta(),
        ncta: kernel.num_ctas(),
    }
}
