//! Run statistics: performance, occupancy, stall breakdown and swap
//! activity — everything the paper's figures are built from.

use crate::hotspots::PcProfile;
use vt_json::{req, req_u64, Json};
use vt_mem::MemStats;
use vt_trace::{Gauge, Histogram, MetricsRegistry};

/// Why an SM issued nothing in a cycle. One bucket is charged per SM-cycle
/// with zero issues; the buckets are mutually exclusive by the listed
/// precedence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdleBreakdown {
    /// No warp resident at all (SM drained near kernel end or start).
    pub no_warps: u64,
    /// Every otherwise-ready warp was blocked waiting for a global-memory
    /// result — the stall VT attacks.
    pub memory: u64,
    /// Blocked on short ALU/SFU dependencies (scoreboard, no memory
    /// involvement).
    pub pipeline: u64,
    /// All unfinished warps were waiting at a barrier.
    pub barrier: u64,
    /// Active CTAs were mid context switch.
    pub swapping: u64,
    /// Anything else (e.g. LD/ST queue back-pressure).
    pub other: u64,
}

impl IdleBreakdown {
    /// Total idle SM-cycles.
    pub fn total(&self) -> u64 {
        self.no_warps + self.memory + self.pipeline + self.barrier + self.swapping + self.other
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, o: &IdleBreakdown) {
        self.no_warps += o.no_warps;
        self.memory += o.memory;
        self.pipeline += o.pipeline;
        self.barrier += o.barrier;
        self.swapping += o.swapping;
        self.other += o.other;
    }

    /// Serializes the breakdown for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("no_warps".into(), Json::UInt(self.no_warps)),
            ("memory".into(), Json::UInt(self.memory)),
            ("pipeline".into(), Json::UInt(self.pipeline)),
            ("barrier".into(), Json::UInt(self.barrier)),
            ("swapping".into(), Json::UInt(self.swapping)),
            ("other".into(), Json::UInt(self.other)),
        ])
    }

    /// Rebuilds a breakdown from [`IdleBreakdown::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields.
    pub fn restore(v: &Json) -> Result<IdleBreakdown, String> {
        Ok(IdleBreakdown {
            no_warps: req_u64(v, "no_warps")?,
            memory: req_u64(v, "memory")?,
            pipeline: req_u64(v, "pipeline")?,
            barrier: req_u64(v, "barrier")?,
            swapping: req_u64(v, "swapping")?,
            other: req_u64(v, "other")?,
        })
    }
}

/// Why an SM-cycle had *no resident warps at all* — the sub-split of
/// [`IdleBreakdown::no_warps`]. One bucket is charged per empty SM-cycle,
/// so `EmptyBreakdown::total() == idle.no_warps` exactly.
///
/// While undispatched CTAs remain, an empty SM is starved by whichever
/// limit family governs admission for this run (see
/// `vt_isa::limits::CtaBounds::limiter`): the scheduling limit (CTA/warp
/// slots — what Virtual Thread lifts) or the capacity limit (registers /
/// shared memory / context buffer). Once the grid is fully dispatched the
/// emptiness is just the end-of-kernel drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmptyBreakdown {
    /// Empty while work remained and admission was bound by the
    /// scheduling limit (CTA or warp slots).
    pub scheduling: u64,
    /// Empty while work remained and admission was bound by the capacity
    /// limit (registers, shared memory, or the VT context buffer).
    pub capacity: u64,
    /// Empty with the grid fully dispatched (kernel-end drain, or the
    /// pre-dispatch cycle at kernel start counts toward the binding limit
    /// only while CTAs are still undispatched).
    pub drain: u64,
}

impl EmptyBreakdown {
    /// Total empty SM-cycles; equals [`IdleBreakdown::no_warps`].
    pub fn total(&self) -> u64 {
        self.scheduling + self.capacity + self.drain
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, o: &EmptyBreakdown) {
        self.scheduling += o.scheduling;
        self.capacity += o.capacity;
        self.drain += o.drain;
    }

    /// Serializes the breakdown for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("scheduling".into(), Json::UInt(self.scheduling)),
            ("capacity".into(), Json::UInt(self.capacity)),
            ("drain".into(), Json::UInt(self.drain)),
        ])
    }

    /// Rebuilds a breakdown from [`EmptyBreakdown::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields.
    pub fn restore(v: &Json) -> Result<EmptyBreakdown, String> {
        Ok(EmptyBreakdown {
            scheduling: req_u64(v, "scheduling")?,
            capacity: req_u64(v, "capacity")?,
            drain: req_u64(v, "drain")?,
        })
    }
}

/// One kernel run's hierarchical cycle-accounting stack — every SM-cycle
/// attributed to exactly one leaf bucket. Derived from [`RunStats`] by
/// [`RunStats::cpi_stack`]; the conservation identity
/// `CpiStack::total() == num_sms × cycles` (`occupancy.sm_cycles`) holds
/// exactly because the idle and empty identities do.
///
/// Hierarchy: `issued`; `stalled → {memory, pipeline, barrier, swap,
/// structural}` (warps resident but none issued); `empty →
/// {scheduling, capacity, drain}` (no warps resident at all).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// SM-cycles in which at least one instruction issued.
    pub issued: u64,
    /// Stalled on an outstanding global-memory result.
    pub stall_memory: u64,
    /// Stalled on short ALU/SFU scoreboard dependencies.
    pub stall_pipeline: u64,
    /// All unfinished warps waiting at a barrier.
    pub stall_barrier: u64,
    /// Active CTAs mid context switch.
    pub stall_swap: u64,
    /// Structural hazards (LD/ST queue, SFU interval, scheduler
    /// partition imbalance) and anything unclassified.
    pub stall_structural: u64,
    /// Empty, starved by the scheduling limit with work left.
    pub empty_scheduling: u64,
    /// Empty, starved by the capacity limit with work left.
    pub empty_capacity: u64,
    /// Empty, grid fully dispatched (end-of-kernel drain).
    pub empty_drain: u64,
}

impl CpiStack {
    /// The bucket names and values in canonical (report) order.
    pub fn buckets(&self) -> [(&'static str, u64); 9] {
        [
            ("issued", self.issued),
            ("stall_memory", self.stall_memory),
            ("stall_pipeline", self.stall_pipeline),
            ("stall_barrier", self.stall_barrier),
            ("stall_swap", self.stall_swap),
            ("stall_structural", self.stall_structural),
            ("empty_scheduling", self.empty_scheduling),
            ("empty_capacity", self.empty_capacity),
            ("empty_drain", self.empty_drain),
        ]
    }

    /// Total attributed SM-cycles; equals `num_sms × cycles`.
    pub fn total(&self) -> u64 {
        self.buckets().iter().map(|&(_, v)| v).sum()
    }

    /// Stalled SM-cycles (warps resident, none issued).
    pub fn stalled(&self) -> u64 {
        self.stall_memory
            + self.stall_pipeline
            + self.stall_barrier
            + self.stall_swap
            + self.stall_structural
    }

    /// Empty SM-cycles (no resident warps).
    pub fn empty(&self) -> u64 {
        self.empty_scheduling + self.empty_capacity + self.empty_drain
    }

    /// Serializes the stack with named buckets plus the totals.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = self
            .buckets()
            .iter()
            .map(|&(n, v)| (n.to_string(), Json::UInt(v)))
            .collect();
        fields.push(("sm_cycles".into(), Json::UInt(self.total())));
        Json::Object(fields)
    }
}

/// Time-integrated resource occupancy, accumulated once per SM-cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancyAccum {
    /// Σ resident warps over SM-cycles.
    pub resident_warp_cycles: u64,
    /// Σ active (schedulable) warps over SM-cycles.
    pub active_warp_cycles: u64,
    /// Σ resident CTAs over SM-cycles.
    pub resident_cta_cycles: u64,
    /// Σ active CTAs over SM-cycles.
    pub active_cta_cycles: u64,
    /// Σ allocated register bytes over SM-cycles.
    pub reg_byte_cycles: u64,
    /// Σ allocated shared-memory bytes over SM-cycles.
    pub smem_byte_cycles: u64,
    /// SM-cycles accumulated (num_sms × cycles).
    pub sm_cycles: u64,
}

impl OccupancyAccum {
    /// Mean resident warps per SM.
    pub fn avg_resident_warps(&self) -> f64 {
        ratio(self.resident_warp_cycles, self.sm_cycles)
    }

    /// Mean active warps per SM.
    pub fn avg_active_warps(&self) -> f64 {
        ratio(self.active_warp_cycles, self.sm_cycles)
    }

    /// Mean resident CTAs per SM.
    pub fn avg_resident_ctas(&self) -> f64 {
        ratio(self.resident_cta_cycles, self.sm_cycles)
    }

    /// Mean register-file utilisation (0..1) given the file size.
    pub fn reg_utilization(&self, regfile_bytes: u32) -> f64 {
        ratio(
            self.reg_byte_cycles,
            self.sm_cycles * u64::from(regfile_bytes),
        )
    }

    /// Mean shared-memory utilisation (0..1) given the scratchpad size.
    pub fn smem_utilization(&self, smem_bytes: u32) -> f64 {
        ratio(
            self.smem_byte_cycles,
            self.sm_cycles * u64::from(smem_bytes),
        )
    }

    /// Mean thread-slot utilisation (0..1) given the warp slots, counting
    /// *active* warps (the ones occupying scheduling structures).
    pub fn thread_slot_utilization(&self, max_warps: u32) -> f64 {
        ratio(
            self.active_warp_cycles,
            self.sm_cycles * u64::from(max_warps),
        )
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, o: &OccupancyAccum) {
        self.resident_warp_cycles += o.resident_warp_cycles;
        self.active_warp_cycles += o.active_warp_cycles;
        self.resident_cta_cycles += o.resident_cta_cycles;
        self.active_cta_cycles += o.active_cta_cycles;
        self.reg_byte_cycles += o.reg_byte_cycles;
        self.smem_byte_cycles += o.smem_byte_cycles;
        self.sm_cycles += o.sm_cycles;
    }

    /// Serializes the accumulator for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            (
                "resident_warp_cycles".into(),
                Json::UInt(self.resident_warp_cycles),
            ),
            (
                "active_warp_cycles".into(),
                Json::UInt(self.active_warp_cycles),
            ),
            (
                "resident_cta_cycles".into(),
                Json::UInt(self.resident_cta_cycles),
            ),
            (
                "active_cta_cycles".into(),
                Json::UInt(self.active_cta_cycles),
            ),
            ("reg_byte_cycles".into(), Json::UInt(self.reg_byte_cycles)),
            ("smem_byte_cycles".into(), Json::UInt(self.smem_byte_cycles)),
            ("sm_cycles".into(), Json::UInt(self.sm_cycles)),
        ])
    }

    /// Rebuilds an accumulator from [`OccupancyAccum::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields.
    pub fn restore(v: &Json) -> Result<OccupancyAccum, String> {
        Ok(OccupancyAccum {
            resident_warp_cycles: req_u64(v, "resident_warp_cycles")?,
            active_warp_cycles: req_u64(v, "active_warp_cycles")?,
            resident_cta_cycles: req_u64(v, "resident_cta_cycles")?,
            active_cta_cycles: req_u64(v, "active_cta_cycles")?,
            reg_byte_cycles: req_u64(v, "reg_byte_cycles")?,
            smem_byte_cycles: req_u64(v, "smem_byte_cycles")?,
            sm_cycles: req_u64(v, "sm_cycles")?,
        })
    }
}

/// CTA context-switch activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// CTAs switched out.
    pub swaps_out: u64,
    /// CTAs switched in (activated from the swapped-out state).
    pub swaps_in: u64,
    /// Fresh CTAs activated into a slot vacated by a swap or completion.
    pub fresh_activations: u64,
    /// SM-cycles any CTA spent mid-switch.
    pub swap_busy_cycles: u64,
}

impl SwapStats {
    /// Adds another block into this one.
    pub fn merge(&mut self, o: &SwapStats) {
        self.swaps_out += o.swaps_out;
        self.swaps_in += o.swaps_in;
        self.fresh_activations += o.fresh_activations;
        self.swap_busy_cycles += o.swap_busy_cycles;
    }

    /// Serializes the block for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("swaps_out".into(), Json::UInt(self.swaps_out)),
            ("swaps_in".into(), Json::UInt(self.swaps_in)),
            (
                "fresh_activations".into(),
                Json::UInt(self.fresh_activations),
            ),
            ("swap_busy_cycles".into(), Json::UInt(self.swap_busy_cycles)),
        ])
    }

    /// Rebuilds a block from [`SwapStats::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields.
    pub fn restore(v: &Json) -> Result<SwapStats, String> {
        Ok(SwapStats {
            swaps_out: req_u64(v, "swaps_out")?,
            swaps_in: req_u64(v, "swaps_in")?,
            fresh_activations: req_u64(v, "fresh_activations")?,
            swap_busy_cycles: req_u64(v, "swap_busy_cycles")?,
        })
    }
}

/// Complete statistics of one simulated kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Cycles the kernel took.
    pub cycles: u64,
    /// Warp instructions issued.
    pub warp_instrs: u64,
    /// Thread instructions executed (warp instruction × active lanes).
    pub thread_instrs: u64,
    /// Divergent branches resolved.
    pub divergent_branches: u64,
    /// Barrier instructions executed (warp granularity).
    pub barriers: u64,
    /// CTAs completed.
    pub ctas_completed: u64,
    /// SM-cycles in which at least one instruction issued. Complements
    /// [`RunStats::idle`]: `idle.total() + issue_cycles ==
    /// occupancy.sm_cycles` exactly.
    pub issue_cycles: u64,
    /// Idle-cycle classification.
    pub idle: IdleBreakdown,
    /// Sub-split of `idle.no_warps`: why the SM was empty
    /// (`empty.total() == idle.no_warps` exactly).
    pub empty: EmptyBreakdown,
    /// Time-integrated occupancy.
    pub occupancy: OccupancyAccum,
    /// Context-switch activity.
    pub swaps: SwapStats,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Deepest SIMT stack observed.
    pub max_simt_depth: usize,
    /// Distribution of swap-in/out transfer durations in cycles (the
    /// configured save/restore costs, weighted by how often each fired).
    pub swap_duration: Histogram,
    /// Distribution of inactive gaps: cycles a swapped-out CTA waited
    /// between losing its slot and starting its swap back in.
    pub swap_gap: Histogram,
    /// Distribution of per-warp barrier wait times in cycles.
    pub barrier_wait: Histogram,
    /// LD/ST queue depth, sampled once per SM-cycle.
    pub ldst_queue: Gauge,
    /// Cycle-windowed metric series, if sampling was enabled
    /// (`CoreConfig::metrics_window`).
    pub series: Option<MetricsRegistry>,
    /// Per-PC hotspot profile, if profiling was enabled
    /// (`CoreConfig::profile`).
    pub hotspots: Option<PcProfile>,
}

impl RunStats {
    /// Thread instructions per cycle — the paper's IPC metric.
    pub fn ipc(&self) -> f64 {
        ratio(self.thread_instrs, self.cycles)
    }

    /// The windowed metric series, when the run was metered.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.series.as_ref()
    }

    /// The hierarchical cycle-accounting stack of this run. Conservation:
    /// `cpi_stack().total() == occupancy.sm_cycles == num_sms × cycles`.
    pub fn cpi_stack(&self) -> CpiStack {
        CpiStack {
            issued: self.issue_cycles,
            stall_memory: self.idle.memory,
            stall_pipeline: self.idle.pipeline,
            stall_barrier: self.idle.barrier,
            stall_swap: self.idle.swapping,
            stall_structural: self.idle.other,
            empty_scheduling: self.empty.scheduling,
            empty_capacity: self.empty.capacity,
            empty_drain: self.empty.drain,
        }
    }

    /// Adds another stats block into this one. Counters add, distributions
    /// merge, `cycles` and `max_simt_depth` take the maximum, and the
    /// metric series (a whole-GPU product of the sampler, not a per-SM
    /// quantity) is kept from `self`. The per-PC profile merges
    /// additively (each SM lane carries its own slice of it). The
    /// parallel engine uses this to fold per-SM stat lanes into the run
    /// total; because every field is either additive or a max, the fold
    /// is independent of lane order.
    pub fn merge(&mut self, o: &RunStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.warp_instrs += o.warp_instrs;
        self.thread_instrs += o.thread_instrs;
        self.divergent_branches += o.divergent_branches;
        self.barriers += o.barriers;
        self.ctas_completed += o.ctas_completed;
        self.issue_cycles += o.issue_cycles;
        self.idle.merge(&o.idle);
        self.empty.merge(&o.empty);
        self.occupancy.merge(&o.occupancy);
        self.swaps.merge(&o.swaps);
        self.mem.merge(&o.mem);
        self.max_simt_depth = self.max_simt_depth.max(o.max_simt_depth);
        self.swap_duration.merge(&o.swap_duration);
        self.swap_gap.merge(&o.swap_gap);
        self.barrier_wait.merge(&o.barrier_wait);
        self.ldst_queue.merge(&o.ldst_queue);
        match (&mut self.hotspots, &o.hotspots) {
            (Some(a), Some(b)) => a.merge(b),
            (h @ None, Some(b)) => *h = Some(b.clone()),
            (_, None) => {}
        }
    }

    /// Warp instructions per cycle.
    pub fn warp_ipc(&self) -> f64 {
        ratio(self.warp_instrs, self.cycles)
    }

    /// Serializes the complete stats block for checkpointing.
    pub fn snapshot(&self) -> Json {
        Json::Object(vec![
            ("cycles".into(), Json::UInt(self.cycles)),
            ("warp_instrs".into(), Json::UInt(self.warp_instrs)),
            ("thread_instrs".into(), Json::UInt(self.thread_instrs)),
            (
                "divergent_branches".into(),
                Json::UInt(self.divergent_branches),
            ),
            ("barriers".into(), Json::UInt(self.barriers)),
            ("ctas_completed".into(), Json::UInt(self.ctas_completed)),
            ("issue_cycles".into(), Json::UInt(self.issue_cycles)),
            ("idle".into(), self.idle.snapshot()),
            ("empty".into(), self.empty.snapshot()),
            ("occupancy".into(), self.occupancy.snapshot()),
            ("swaps".into(), self.swaps.snapshot()),
            ("mem".into(), self.mem.snapshot()),
            (
                "max_simt_depth".into(),
                Json::UInt(self.max_simt_depth as u64),
            ),
            ("swap_duration".into(), self.swap_duration.snapshot()),
            ("swap_gap".into(), self.swap_gap.snapshot()),
            ("barrier_wait".into(), self.barrier_wait.snapshot()),
            ("ldst_queue".into(), self.ldst_queue.snapshot()),
            (
                "metrics".into(),
                match &self.series {
                    Some(m) => m.snapshot(),
                    None => Json::Null,
                },
            ),
            (
                "hotspots".into(),
                match &self.hotspots {
                    Some(h) => h.snapshot(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Rebuilds a stats block from [`RunStats::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn restore(v: &Json) -> Result<RunStats, String> {
        Ok(RunStats {
            cycles: req_u64(v, "cycles")?,
            warp_instrs: req_u64(v, "warp_instrs")?,
            thread_instrs: req_u64(v, "thread_instrs")?,
            divergent_branches: req_u64(v, "divergent_branches")?,
            barriers: req_u64(v, "barriers")?,
            ctas_completed: req_u64(v, "ctas_completed")?,
            issue_cycles: req_u64(v, "issue_cycles")?,
            idle: IdleBreakdown::restore(req(v, "idle")?)?,
            empty: EmptyBreakdown::restore(req(v, "empty")?)?,
            occupancy: OccupancyAccum::restore(req(v, "occupancy")?)?,
            swaps: SwapStats::restore(req(v, "swaps")?)?,
            mem: MemStats::restore(req(v, "mem")?)?,
            max_simt_depth: req_u64(v, "max_simt_depth")? as usize,
            swap_duration: Histogram::restore(req(v, "swap_duration")?)?,
            swap_gap: Histogram::restore(req(v, "swap_gap")?)?,
            barrier_wait: Histogram::restore(req(v, "barrier_wait")?)?,
            ldst_queue: Gauge::restore(req(v, "ldst_queue")?)?,
            series: match req(v, "metrics")? {
                Json::Null => None,
                m => Some(MetricsRegistry::restore(m)?),
            },
            hotspots: match req(v, "hotspots")? {
                Json::Null => None,
                h => Some(PcProfile::restore(h)?),
            },
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(RunStats::default().ipc(), 0.0);
    }

    #[test]
    fn occupancy_ratios() {
        let o = OccupancyAccum {
            resident_warp_cycles: 200,
            active_warp_cycles: 100,
            resident_cta_cycles: 40,
            active_cta_cycles: 20,
            reg_byte_cycles: 1000,
            smem_byte_cycles: 500,
            sm_cycles: 10,
        };
        assert_eq!(o.avg_resident_warps(), 20.0);
        assert_eq!(o.avg_active_warps(), 10.0);
        assert_eq!(o.avg_resident_ctas(), 4.0);
        assert_eq!(o.reg_utilization(100), 1.0);
        assert_eq!(o.smem_utilization(100), 0.5);
        assert!((o.thread_slot_utilization(48) - 10.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn metered_stats_roundtrip_through_snapshot() {
        let mut m = MetricsRegistry::new(64);
        let r = m.rate("warp_instrs", None);
        m.sample_total(r, 7);
        m.seal();
        let stats = RunStats {
            cycles: 64,
            warp_instrs: 7,
            series: Some(m),
            ..RunStats::default()
        };
        let text = stats.snapshot().compact();
        let back = RunStats::restore(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.metrics().unwrap().windows(), 1);
    }

    #[test]
    fn cpi_stack_mirrors_the_breakdowns() {
        let stats = RunStats {
            cycles: 100,
            issue_cycles: 60,
            idle: IdleBreakdown {
                no_warps: 10,
                memory: 20,
                pipeline: 4,
                barrier: 3,
                swapping: 2,
                other: 1,
            },
            empty: EmptyBreakdown {
                scheduling: 6,
                capacity: 0,
                drain: 4,
            },
            ..RunStats::default()
        };
        let cpi = stats.cpi_stack();
        assert_eq!(cpi.issued, 60);
        assert_eq!(cpi.stalled(), 30);
        assert_eq!(cpi.empty(), 10);
        assert_eq!(cpi.total(), stats.issue_cycles + stats.idle.total());
        assert_eq!(stats.empty.total(), stats.idle.no_warps);
        let j = cpi.to_json();
        assert_eq!(j.get("empty_scheduling").and_then(Json::as_u64), Some(6));
        assert_eq!(j.get("sm_cycles").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn merges_add_up() {
        let mut a = IdleBreakdown {
            memory: 5,
            ..Default::default()
        };
        a.merge(&IdleBreakdown {
            memory: 3,
            barrier: 1,
            ..Default::default()
        });
        assert_eq!(a.memory, 8);
        assert_eq!(a.total(), 9);

        let mut s = SwapStats {
            swaps_out: 1,
            ..Default::default()
        };
        s.merge(&SwapStats {
            swaps_out: 2,
            swaps_in: 2,
            ..Default::default()
        });
        assert_eq!(s.swaps_out, 3);
        assert_eq!(s.swaps_in, 2);
    }
}
