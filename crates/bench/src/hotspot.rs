//! Per-PC hotspot profile records and their renderings, shared by
//! `vtprof` (`--profile` / `--annotate` / `--flame`) and `vtdiff
//! --pc`.
//!
//! A [`ProfileRecord`] is the portable form of a run's
//! [`vt_core::PcProfile`]: the kernel/arch identity, the kernel-level
//! CPI stack it conserves against, and one [`PcEntry`] per program
//! instruction carrying issue counts, per-reason stall blame,
//! round-trip memory latency, observed coalescing width, bank-conflict
//! rounds and branch-divergence activity. Everything is integer-valued
//! so records diff and golden-compare exactly.
//!
//! Renderings:
//!
//! * [`annotate`] — a `perf annotate`-style listing: disassembly with a
//!   per-line CPI mini-stack, cross-referencing observed coalescing
//!   against the static estimates of `vt-analysis`.
//! * [`flame_collapsed`] / [`flame_perfetto`] — collapsed-stack
//!   flamegraph text (`kernel;block@N;pc op  cycles`) and Perfetto
//!   counter tracks with the program counter as the x-axis.
//! * [`rank_deltas`] — per-instruction SM-cycle deltas between two
//!   comparable records, ranked by magnitude (`vtdiff --pc`).

use crate::cpi::CpiRecord;
use crate::{bar, Table};
use vt_analysis::MemSite;
use vt_core::{PcProfile, RunStats, StallReason};
use vt_isa::{Instr, Program};
use vt_json::{req, req_array, req_str, req_u64, Json};
use vt_trace::Histogram;

/// Profile record format version.
pub const PROFILE_VERSION: u64 = 1;

/// Number of stall reasons (mirrors `vt_sim::STALL_REASONS`).
const REASONS: usize = 5;

/// Round-trip latency summary of the loads/atomics issued at one PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatency {
    /// Completed round trips.
    pub count: u64,
    /// Sum of all round-trip latencies, in cycles.
    pub sum: u64,
    /// Fastest round trip.
    pub min: u64,
    /// Median round trip.
    pub p50: u64,
    /// 99th-percentile round trip.
    pub p99: u64,
    /// Slowest round trip.
    pub max: u64,
}

impl MemLatency {
    fn from_hist(h: &Histogram) -> Option<MemLatency> {
        (h.count > 0).then(|| MemLatency {
            count: h.count,
            sum: h.sum,
            min: h.min,
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
            max: h.max,
        })
    }
}

/// One instruction's dynamic profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcEntry {
    /// Program counter.
    pub pc: usize,
    /// Disassembled instruction.
    pub op: String,
    /// SM-cycles charged to this PC as the cycle's first issue.
    pub issued: u64,
    /// Warp instructions issued from this PC.
    pub warp_issues: u64,
    /// Thread instructions executed from this PC.
    pub thread_instrs: u64,
    /// Stall SM-cycles blamed on this PC, in `CpiStack` reason order
    /// (memory, pipeline, barrier, swap, structural).
    pub stalls: [u64; REASONS],
    /// Load/atomic round-trip latency, when any completed here.
    pub mem: Option<MemLatency>,
    /// Observed coalescing: `(accesses, total transactions, worst)`.
    pub coalesce: Option<(u64, u64, u64)>,
    /// Shared-memory behaviour: `(accesses, total conflict rounds)`.
    pub smem: Option<(u64, u64)>,
    /// Conditional branches executed at this PC.
    pub branches: u64,
    /// How many of them diverged.
    pub divergent: u64,
}

impl PcEntry {
    /// Total SM-cycles attributed to this PC (issued + all stall blame).
    pub fn total(&self) -> u64 {
        self.issued + self.stalls.iter().sum::<u64>()
    }

    /// Observed average transactions per global access, if any.
    pub fn lines_per_access(&self) -> Option<f64> {
        self.coalesce
            .map(|(accesses, lines, _)| lines as f64 / accesses.max(1) as f64)
    }
}

/// A portable per-PC hotspot profile of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecord {
    /// Kernel name.
    pub kernel: String,
    /// Architecture label.
    pub arch: String,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Thread instructions of the run.
    pub thread_instrs: u64,
    /// The kernel-level CPI stack the per-PC buckets conserve against.
    pub cpi: CpiRecord,
    /// One entry per program instruction, indexed by PC.
    pub pcs: Vec<PcEntry>,
    /// Stall SM-cycles with no blamable instruction, in reason order.
    pub unattributed: [u64; REASONS],
}

impl ProfileRecord {
    /// Builds a record from a profiled run.
    ///
    /// # Errors
    ///
    /// Returns a message when the run was not profiled or the profile
    /// does not cover `program`.
    pub fn from_run(
        kernel: &str,
        arch: &str,
        program: &Program,
        stats: &RunStats,
    ) -> Result<ProfileRecord, String> {
        let profile: &PcProfile = stats
            .hotspots
            .as_ref()
            .ok_or("run was not profiled (enable cfg.core.profile)")?;
        if profile.len() != program.len() {
            return Err(format!(
                "profile covers {} PCs, program has {}",
                profile.len(),
                program.len()
            ));
        }
        let pcs = program
            .iter()
            .map(|(pc, instr)| {
                let c = &profile.counters()[pc];
                PcEntry {
                    pc,
                    op: instr.to_string(),
                    issued: c.issued,
                    warp_issues: c.warp_issues,
                    thread_instrs: c.thread_instrs,
                    stalls: c.stalls,
                    mem: MemLatency::from_hist(&c.mem_latency),
                    coalesce: (c.mem_accesses > 0).then_some((
                        c.mem_accesses,
                        c.mem_lines,
                        c.mem_lines_max,
                    )),
                    smem: (c.smem_accesses > 0).then_some((c.smem_accesses, c.smem_rounds)),
                    branches: c.branches,
                    divergent: c.divergent,
                }
            })
            .collect();
        Ok(ProfileRecord {
            kernel: kernel.to_string(),
            arch: arch.to_string(),
            cycles: stats.cycles,
            thread_instrs: stats.thread_instrs,
            cpi: CpiRecord::from_stack(&stats.cpi_stack()),
            pcs,
            unattributed: profile.unattributed,
        })
    }

    /// Verifies the per-PC conservation identity against the kernel
    /// stack: Σ issued over PCs equals `cpi.issued`, and for each stall
    /// reason Σ blame + unattributed equals the matching bucket.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated bucket.
    pub fn check_conservation(&self) -> Result<(), String> {
        let issued: u64 = self.pcs.iter().map(|p| p.issued).sum();
        if issued != self.cpi.buckets[0] {
            return Err(format!(
                "Σ pcs.issued = {issued} but cpi.issued = {}",
                self.cpi.buckets[0]
            ));
        }
        for (i, reason) in stall_names().iter().enumerate() {
            let blamed: u64 = self.pcs.iter().map(|p| p.stalls[i]).sum();
            let total = blamed + self.unattributed[i];
            // Stall buckets sit at CpiRecord indices 1..=5.
            let bucket = self.cpi.buckets[i + 1];
            if total != bucket {
                return Err(format!(
                    "Σ pcs.{reason} + unattributed = {total} but cpi.{reason} = {bucket}"
                ));
            }
        }
        Ok(())
    }

    /// The comparability fingerprint two records must share for a
    /// per-PC diff: same kernel, architecture and program text.
    pub fn fingerprint(&self) -> String {
        let ops: Vec<&str> = self.pcs.iter().map(|p| p.op.as_str()).collect();
        format!(
            "kernel={} arch={} pcs={} ops={}",
            self.kernel,
            self.arch,
            self.pcs.len(),
            ops.join(";")
        )
    }

    /// Serializes the record (stable, integer-valued JSON).
    pub fn to_json(&self) -> Json {
        let pcs: Vec<Json> = self.pcs.iter().map(pc_json).collect();
        Json::object(vec![
            ("version".into(), Json::UInt(PROFILE_VERSION)),
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("arch".into(), Json::Str(self.arch.clone())),
            ("cycles".into(), Json::UInt(self.cycles)),
            ("thread_instrs".into(), Json::UInt(self.thread_instrs)),
            ("cpi".into(), cpi_json(&self.cpi)),
            (
                "unattributed".into(),
                Json::object(
                    stall_names()
                        .iter()
                        .zip(self.unattributed)
                        .map(|(&n, v)| (n.to_string(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            ("pcs".into(), Json::Array(pcs)),
        ])
    }

    /// Parses a record produced by [`ProfileRecord::to_json`],
    /// re-verifying conservation.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input, a version mismatch or a
    /// conservation violation.
    pub fn from_json(j: &Json) -> Result<ProfileRecord, String> {
        let version = req_u64(j, "version")?;
        if version != PROFILE_VERSION {
            return Err(format!(
                "profile version {version}, this build understands {PROFILE_VERSION}"
            ));
        }
        let una = req(j, "unattributed")?;
        let mut unattributed = [0u64; REASONS];
        for (slot, name) in unattributed.iter_mut().zip(stall_names()) {
            *slot = req_u64(una, name)?;
        }
        let pcs = req_array(j, "pcs")?
            .iter()
            .map(pc_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let rec = ProfileRecord {
            kernel: req_str(j, "kernel")?.to_string(),
            arch: req_str(j, "arch")?.to_string(),
            cycles: req_u64(j, "cycles")?,
            thread_instrs: req_u64(j, "thread_instrs")?,
            cpi: CpiRecord::from_json(req(j, "cpi")?)?,
            pcs,
            unattributed,
        };
        rec.check_conservation()?;
        Ok(rec)
    }

    /// Loads and validates a record file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is unreadable or invalid.
    pub fn load(path: &str) -> Result<ProfileRecord, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        ProfileRecord::from_json(&json).map_err(|e| format!("{path}: {e}"))
    }
}

fn stall_names() -> [&'static str; REASONS] {
    let mut names = [""; REASONS];
    for (n, r) in names.iter_mut().zip(StallReason::ALL) {
        *n = r.name();
    }
    names
}

fn cpi_json(cpi: &CpiRecord) -> Json {
    let mut fields: Vec<(String, Json)> = cpi
        .named()
        .map(|(n, v)| (n.to_string(), Json::UInt(v)))
        .collect();
    fields.push(("sm_cycles".into(), Json::UInt(cpi.total())));
    Json::object(fields)
}

fn pc_json(p: &PcEntry) -> Json {
    let mut fields = vec![
        ("pc".into(), Json::UInt(p.pc as u64)),
        ("op".into(), Json::Str(p.op.clone())),
        ("issued".into(), Json::UInt(p.issued)),
        ("warp_issues".into(), Json::UInt(p.warp_issues)),
        ("thread_instrs".into(), Json::UInt(p.thread_instrs)),
    ];
    for (name, v) in stall_names().iter().zip(p.stalls) {
        fields.push((name.to_string(), Json::UInt(v)));
    }
    fields.push((
        "mem".into(),
        p.mem.map_or(Json::Null, |m| {
            Json::object(vec![
                ("count".into(), Json::UInt(m.count)),
                ("sum".into(), Json::UInt(m.sum)),
                ("min".into(), Json::UInt(m.min)),
                ("p50".into(), Json::UInt(m.p50)),
                ("p99".into(), Json::UInt(m.p99)),
                ("max".into(), Json::UInt(m.max)),
            ])
        }),
    ));
    fields.push((
        "coalesce".into(),
        p.coalesce.map_or(Json::Null, |(accesses, lines, max)| {
            Json::object(vec![
                ("accesses".into(), Json::UInt(accesses)),
                ("lines".into(), Json::UInt(lines)),
                ("max".into(), Json::UInt(max)),
            ])
        }),
    ));
    fields.push((
        "smem".into(),
        p.smem.map_or(Json::Null, |(accesses, rounds)| {
            Json::object(vec![
                ("accesses".into(), Json::UInt(accesses)),
                ("rounds".into(), Json::UInt(rounds)),
            ])
        }),
    ));
    fields.push(("branches".into(), Json::UInt(p.branches)));
    fields.push(("divergent".into(), Json::UInt(p.divergent)));
    Json::object(fields)
}

fn pc_from_json(j: &Json) -> Result<PcEntry, String> {
    let mut stalls = [0u64; REASONS];
    for (slot, name) in stalls.iter_mut().zip(stall_names()) {
        *slot = req_u64(j, name)?;
    }
    let mem = match req(j, "mem")? {
        Json::Null => None,
        m => Some(MemLatency {
            count: req_u64(m, "count")?,
            sum: req_u64(m, "sum")?,
            min: req_u64(m, "min")?,
            p50: req_u64(m, "p50")?,
            p99: req_u64(m, "p99")?,
            max: req_u64(m, "max")?,
        }),
    };
    let coalesce = match req(j, "coalesce")? {
        Json::Null => None,
        c => Some((
            req_u64(c, "accesses")?,
            req_u64(c, "lines")?,
            req_u64(c, "max")?,
        )),
    };
    let smem = match req(j, "smem")? {
        Json::Null => None,
        s => Some((req_u64(s, "accesses")?, req_u64(s, "rounds")?)),
    };
    Ok(PcEntry {
        pc: req_u64(j, "pc")? as usize,
        op: req_str(j, "op")?.to_string(),
        issued: req_u64(j, "issued")?,
        warp_issues: req_u64(j, "warp_issues")?,
        thread_instrs: req_u64(j, "thread_instrs")?,
        stalls,
        mem,
        coalesce,
        smem,
        branches: req_u64(j, "branches")?,
        divergent: req_u64(j, "divergent")?,
    })
}

/// Basic-block leader of every PC: leaders are PC 0, branch targets
/// (including reconvergence points) and the instruction after any
/// control transfer. Used as the middle flamegraph frame.
pub fn block_leaders(program: &Program) -> Vec<usize> {
    let n = program.len();
    let mut is_leader = vec![false; n];
    if n > 0 {
        is_leader[0] = true;
    }
    for (pc, instr) in program.iter() {
        match *instr {
            Instr::Bra { target } => {
                if target < n {
                    is_leader[target] = true;
                }
                if pc + 1 < n {
                    is_leader[pc + 1] = true;
                }
            }
            Instr::BraCond { target, reconv, .. } => {
                if target < n {
                    is_leader[target] = true;
                }
                if reconv < n {
                    is_leader[reconv] = true;
                }
                if pc + 1 < n {
                    is_leader[pc + 1] = true;
                }
            }
            Instr::Exit if pc + 1 < n => is_leader[pc + 1] = true,
            _ => {}
        }
    }
    let mut leaders = vec![0usize; n];
    let mut current = 0;
    for (pc, leader) in leaders.iter_mut().enumerate() {
        if is_leader[pc] {
            current = pc;
        }
        *leader = current;
    }
    leaders
}

/// Renders the record as collapsed-stack flamegraph text: one line per
/// PC, `kernel;block@LEADER;pcN MNEMONIC  CYCLES`, where the count is
/// the PC's total attributed SM-cycles. Unattributed stall cycles get
/// `kernel;unattributed;REASON` frames so the flamegraph total equals
/// the attributable part of the CPI stack. Feed to
/// `flamegraph.pl` / `inferno-flamegraph` as-is.
pub fn flame_collapsed(rec: &ProfileRecord, leaders: &[usize]) -> String {
    let mut out = String::new();
    for p in &rec.pcs {
        let total = p.total();
        if total == 0 {
            continue;
        }
        let mnemonic = p.op.split_whitespace().next().unwrap_or("?");
        let leader = leaders.get(p.pc).copied().unwrap_or(0);
        out.push_str(&format!(
            "{};block@{};pc{} {} {}\n",
            rec.kernel, leader, p.pc, mnemonic, total
        ));
    }
    for (name, v) in stall_names().iter().zip(rec.unattributed) {
        if v > 0 {
            out.push_str(&format!("{};unattributed;{} {}\n", rec.kernel, name, v));
        }
    }
    out
}

/// Renders the record as Perfetto counter tracks with the program
/// counter as the x-axis: one track per attribution class (`issued`,
/// each stall reason) plus observed coalescing width ×100.
pub fn flame_perfetto(rec: &ProfileRecord) -> Json {
    let mut tracks: Vec<(String, Vec<(u64, u64)>)> = Vec::new();
    let series = |f: &dyn Fn(&PcEntry) -> u64| -> Vec<(u64, u64)> {
        rec.pcs.iter().map(|p| (p.pc as u64, f(p))).collect()
    };
    tracks.push(("issued".to_string(), series(&|p| p.issued)));
    for (i, name) in stall_names().iter().enumerate() {
        tracks.push((name.to_string(), series(&|p| p.stalls[i])));
    }
    tracks.push((
        "coalesce_lines_x100".to_string(),
        series(&|p| {
            p.lines_per_access()
                .map_or(0, |l| (l * 100.0).round() as u64)
        }),
    ));
    let process = format!("{} [{}] pc-profile", rec.kernel, rec.arch);
    vt_trace::counters_to_chrome_json(&process, &tracks)
}

/// A static coalescing/bank-conflict expectation for one PC, distilled
/// from `vt-analysis` [`MemSite`]s for the annotate cross-reference.
fn static_note(site: &MemSite, entry: &PcEntry) -> Option<String> {
    if let (Some(expect), Some(observed)) = (site.segments_per_warp, entry.lines_per_access()) {
        let verdict = if (observed - f64::from(expect)).abs() < 0.5 {
            "matches static"
        } else {
            "static disagrees"
        };
        let warn = if observed >= f64::from(vt_analysis::memaccess::UNCOALESCED_SEGMENTS) {
            "  UNCOALESCED"
        } else {
            ""
        };
        return Some(format!(
            "coalesce: {observed:.1} lines/access observed vs {expect} static ({verdict}){warn}"
        ));
    }
    if let (Some(ways), Some((accesses, rounds))) = (site.bank_conflict_ways, entry.smem) {
        let observed = rounds as f64 / accesses.max(1) as f64;
        return Some(format!(
            "smem: {observed:.1} conflict rounds/access observed vs {ways}-way static"
        ));
    }
    if entry.coalesce.is_some() {
        return Some("coalesce: data-dependent address (no static estimate)".to_string());
    }
    None
}

/// Renders a `perf annotate`-style listing: per instruction the share
/// of issued SM-cycles, the share and reason of blamed stall cycles,
/// the disassembly, and memory/branch annotations cross-referenced
/// against the static `vt-analysis` estimates in `sites`.
pub fn annotate(rec: &ProfileRecord, sites: &[MemSite], width: usize) -> String {
    let total = rec.cpi.total().max(1);
    let mut out = format!(
        "{} [{}] — {} cycles, {} thread instrs; per-PC share of {} SM-cycles\n",
        rec.kernel,
        rec.arch,
        rec.cycles,
        rec.thread_instrs,
        rec.cpi.total()
    );
    let mut t = Table::new(vec!["issued", "stalled", "top stall", "pc", "asm", ""]);
    for p in &rec.pcs {
        let stalled: u64 = p.stalls.iter().sum();
        let top = p
            .stalls
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| StallReason::ALL[i].name().trim_start_matches("stall_"));
        t.row(vec![
            format!("{:5.1}%", pct(p.issued, total)),
            format!("{:5.1}%", pct(stalled, total)),
            top.unwrap_or("-").to_string(),
            format!("@{}", p.pc),
            p.op.clone(),
            bar((p.issued + stalled) as f64, total as f64, width),
        ]);
    }
    out.push_str(&t.render());
    let mut notes = Vec::new();
    for p in &rec.pcs {
        let mut line_notes = Vec::new();
        if let Some(site) = sites.iter().find(|s| s.pc == p.pc) {
            if let Some(n) = static_note(site, p) {
                line_notes.push(n);
            }
        } else if p.coalesce.is_some() {
            line_notes.push("coalesce: data-dependent address (no static estimate)".to_string());
        }
        if let Some(m) = p.mem {
            line_notes.push(format!(
                "latency: n={} p50={} p99={} max={}",
                m.count, m.p50, m.p99, m.max
            ));
        }
        if p.branches > 0 {
            line_notes.push(format!(
                "divergence: {}/{} branches diverged",
                p.divergent, p.branches
            ));
        }
        if !line_notes.is_empty() {
            notes.push(format!("@{} {}: {}", p.pc, p.op, line_notes.join("; ")));
        }
    }
    if !notes.is_empty() {
        out.push_str("memory/divergence annotations:\n");
        for n in notes {
            out.push_str("  ");
            out.push_str(&n);
            out.push('\n');
        }
    }
    let unattributed: u64 = rec.unattributed.iter().sum();
    if unattributed > 0 {
        let parts: Vec<String> = stall_names()
            .iter()
            .zip(rec.unattributed)
            .filter(|&(_, v)| v > 0)
            .map(|(n, v)| format!("{n} {v}"))
            .collect();
        out.push_str(&format!(
            "unattributed stall SM-cycles (no blamable instruction): {}\n",
            parts.join(", ")
        ));
    }
    out
}

/// One PC's delta between two comparable records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcDelta {
    /// Program counter.
    pub pc: usize,
    /// Disassembled instruction.
    pub op: String,
    /// Total attributed SM-cycle delta (new − old).
    pub delta: i64,
    /// Per-class deltas: `("issued", d)` and each stall reason.
    pub classes: Vec<(&'static str, i64)>,
}

/// Ranks per-instruction SM-cycle deltas between two records, largest
/// magnitude first; PC order breaks ties. Only changed PCs appear.
///
/// # Errors
///
/// Returns a message when the records are not comparable (different
/// kernel, architecture or program).
pub fn rank_deltas(old: &ProfileRecord, new: &ProfileRecord) -> Result<Vec<PcDelta>, String> {
    if old.fingerprint() != new.fingerprint() {
        return Err(format!(
            "profiles are not comparable:\n  old: {} [{}], {} PCs\n  new: {} [{}], {} PCs",
            old.kernel,
            old.arch,
            old.pcs.len(),
            new.kernel,
            new.arch,
            new.pcs.len()
        ));
    }
    let mut deltas: Vec<PcDelta> = old
        .pcs
        .iter()
        .zip(&new.pcs)
        .filter_map(|(o, n)| {
            let mut classes = vec![("issued", n.issued as i64 - o.issued as i64)];
            for (i, name) in stall_names().iter().enumerate() {
                classes.push((*name, n.stalls[i] as i64 - o.stalls[i] as i64));
            }
            classes.retain(|&(_, d)| d != 0);
            if classes.is_empty() {
                return None;
            }
            Some(PcDelta {
                pc: o.pc,
                op: o.op.clone(),
                delta: n.total() as i64 - o.total() as i64,
                classes,
            })
        })
        .collect();
    deltas.sort_by_key(|d| (std::cmp::Reverse(d.delta.unsigned_abs()), d.pc));
    Ok(deltas)
}

fn pct(part: u64, whole: u64) -> f64 {
    part as f64 / whole as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::asm::assemble_program;

    fn sample_program() -> Program {
        assemble_program(
            "ld.g r1, [r0+0]\n\
             add r2, r1, 1\n\
             st.g [r0+0], r2\n\
             exit\n",
        )
        .expect("assembles")
    }

    fn sample_record() -> ProfileRecord {
        let mk = |pc: usize, op: &str, issued: u64, mem_stall: u64| PcEntry {
            pc,
            op: op.to_string(),
            issued,
            warp_issues: issued * 2,
            thread_instrs: issued * 64,
            stalls: [mem_stall, 0, 0, 0, 0],
            mem: None,
            coalesce: None,
            smem: None,
            branches: 0,
            divergent: 0,
        };
        let mut pcs = vec![
            mk(0, "ld.g r1, [r0+0]", 10, 0),
            mk(1, "add r2, r1, 1", 5, 37),
            mk(2, "st.g [r0+0], r2", 5, 0),
            mk(3, "exit", 2, 0),
        ];
        pcs[0].coalesce = Some((10, 80, 8));
        pcs[0].mem = Some(MemLatency {
            count: 10,
            sum: 4000,
            min: 300,
            p50: 400,
            p99: 500,
            max: 510,
        });
        ProfileRecord {
            kernel: "toy".into(),
            arch: "vt".into(),
            cycles: 100,
            thread_instrs: 1408,
            // issued 22, stall_memory 37 + 3 unattributed, drain 10.
            cpi: CpiRecord {
                buckets: [22, 40, 0, 0, 0, 0, 0, 0, 10],
            },
            pcs,
            unattributed: [3, 0, 0, 0, 0],
        }
    }

    #[test]
    fn record_json_round_trips_and_conserves() {
        let rec = sample_record();
        rec.check_conservation().expect("sample conserves");
        let j = rec.to_json();
        let back = ProfileRecord::from_json(&Json::parse(&j.pretty()).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn from_json_rejects_broken_conservation() {
        let mut rec = sample_record();
        rec.pcs[1].stalls[0] += 1;
        let err = ProfileRecord::from_json(&rec.to_json()).unwrap_err();
        assert!(err.contains("stall_memory"), "{err}");
    }

    #[test]
    fn block_leaders_split_at_branches() {
        let program = assemble_program(
            "add r1, r0, 1\n\
             brc.nz r1, @3, @4\n\
             add r2, r0, 2\n\
             add r3, r0, 3\n\
             exit\n",
        )
        .expect("assembles");
        let leaders = block_leaders(&program);
        // PC 2 starts the fallthrough block, 3 the taken target, 4 the
        // reconvergence block.
        assert_eq!(leaders, vec![0, 0, 2, 3, 4]);
    }

    #[test]
    fn flame_lines_carry_totals_and_unattributed() {
        let rec = sample_record();
        let leaders = block_leaders(&sample_program());
        let text = flame_collapsed(&rec, &leaders);
        assert!(text.contains("toy;block@0;pc0 ld.g 10\n"), "{text}");
        assert!(text.contains("toy;block@0;pc1 add 42\n"), "{text}");
        assert!(text.contains("toy;unattributed;stall_memory 3\n"));
        // The flamegraph total covers every attributable SM-cycle.
        let sum: u64 = text
            .lines()
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum();
        assert_eq!(sum, 22 + 40);
    }

    #[test]
    fn perfetto_export_tracks_every_class() {
        let j = flame_perfetto(&sample_record()).compact();
        assert!(j.contains(r#""issued""#));
        assert!(j.contains(r#""stall_memory""#));
        assert!(j.contains(r#""coalesce_lines_x100""#));
        // PC 0 coalesces 8.0 lines/access on average.
        assert!(j.contains(r#""value":800"#), "{j}");
    }

    #[test]
    fn annotate_cross_references_static_sites() {
        let rec = sample_record();
        let kernel = vt_isa::asm::assemble(
            ".kernel toy\n\
             .grid 1 32\n\
             .globalmem 64\n\
             ld.g r1, [r0+0]\n\
             add r2, r1, 1\n\
             st.g [r0+0], r2\n\
             exit\n",
        )
        .expect("kernel assembles");
        let model = vt_analysis::model(&kernel, &vt_analysis::ModelConfig::default());
        let text = annotate(&rec, &model.mem_sites, 12);
        assert!(text.contains("ld.g r1"), "{text}");
        assert!(
            text.contains("UNCOALESCED") || text.contains("lines/access"),
            "{text}"
        );
        assert!(text.contains("unattributed"), "{text}");
        assert!(text.contains("p99=500"), "{text}");
    }

    #[test]
    fn deltas_rank_by_magnitude() {
        let old = sample_record();
        let mut new = sample_record();
        new.pcs[1].stalls[0] += 50;
        new.cpi.buckets[1] += 50;
        new.pcs[2].issued += 5;
        new.cpi.buckets[0] += 5;
        let ranked = rank_deltas(&old, &new).unwrap();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].pc, 1);
        assert_eq!(ranked[0].delta, 50);
        assert_eq!(ranked[0].classes, vec![("stall_memory", 50)]);
        assert_eq!(ranked[1].pc, 2);
        assert_eq!(ranked[1].classes, vec![("issued", 5)]);
    }

    #[test]
    fn deltas_reject_different_programs() {
        let old = sample_record();
        let mut new = sample_record();
        new.pcs[0].op = "ld.s r1, [r0+0]".into();
        assert!(rank_deltas(&old, &new).unwrap_err().contains("comparable"));
    }
}
