//! Loading and comparing `vtbench` performance records
//! (`BENCH_<n>.json`), shared by the `vtbench` gate and the `vtdiff`
//! differential explainer.

use crate::cpi::CpiRecord;
use vt_json::{req_array, req_f64, req_str, req_u64, Json};

/// Record format version understood by this build. v2 added the
/// per-kernel `cpi` cycle-accounting stack (nine named buckets plus
/// `sm_cycles`).
pub const RECORD_VERSION: u64 = 2;

/// One kernel's entry in a record, with the fields diffing needs.
#[derive(Debug, Clone)]
pub struct KernelEntry {
    /// Suite kernel name.
    pub name: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Executed thread instructions.
    pub thread_instrs: u64,
    /// Thread instructions per cycle.
    pub ipc: f64,
    /// The nine-bucket cycle-accounting stack.
    pub cpi: CpiRecord,
}

/// Parses and version-checks a record file.
///
/// # Errors
///
/// Returns a message when the file is unreadable, not JSON, or from a
/// different record version.
pub fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let version = req_u64(&json, "version").map_err(|e| format!("{path}: {e}"))?;
    if version != RECORD_VERSION {
        return Err(format!(
            "{path}: record version {version}, this build understands {RECORD_VERSION}"
        ));
    }
    Ok(json)
}

/// The configuration fields two records must share to be comparable.
///
/// # Errors
///
/// Returns a message on missing fields.
pub fn fingerprint(j: &Json) -> Result<String, String> {
    let suite = j
        .get("suite")
        .ok_or_else(|| "missing key `suite`".to_string())?;
    Ok(format!(
        "arch={} sms={} window={} ctas={} iters={}",
        req_str(j, "arch")?,
        req_u64(j, "sms")?,
        req_u64(j, "metrics_window")?,
        req_u64(suite, "ctas")?,
        req_u64(suite, "iters")?,
    ))
}

/// The per-kernel entries of a record, in record order.
///
/// # Errors
///
/// Returns a message on missing fields or a CPI stack whose buckets do
/// not sum to its `sm_cycles`.
pub fn kernels(j: &Json) -> Result<Vec<KernelEntry>, String> {
    req_array(j, "kernels")?
        .iter()
        .map(|k| {
            let name = req_str(k, "kernel")?.to_string();
            let cpi = k
                .get("cpi")
                .ok_or_else(|| format!("{name}: missing key `cpi`"))
                .and_then(|c| CpiRecord::from_json(c).map_err(|e| format!("{name}: {e}")))?;
            Ok(KernelEntry {
                cycles: req_u64(k, "cycles").map_err(|e| format!("{name}: {e}"))?,
                thread_instrs: req_u64(k, "thread_instrs").map_err(|e| format!("{name}: {e}"))?,
                ipc: req_f64(k, "ipc").map_err(|e| format!("{name}: {e}"))?,
                cpi,
                name,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_json(name: &str) -> Json {
        let cpi = Json::object(vec![
            ("issued".into(), Json::UInt(10)),
            ("stall_memory".into(), Json::UInt(5)),
            ("stall_pipeline".into(), Json::UInt(0)),
            ("stall_barrier".into(), Json::UInt(0)),
            ("stall_swap".into(), Json::UInt(0)),
            ("stall_structural".into(), Json::UInt(0)),
            ("empty_scheduling".into(), Json::UInt(0)),
            ("empty_capacity".into(), Json::UInt(0)),
            ("empty_drain".into(), Json::UInt(1)),
            ("sm_cycles".into(), Json::UInt(16)),
        ]);
        Json::object(vec![
            ("kernel".into(), Json::Str(name.to_string())),
            ("cycles".into(), Json::UInt(8)),
            ("thread_instrs".into(), Json::UInt(100)),
            ("ipc".into(), Json::Float(12.5)),
            ("cpi".into(), cpi),
        ])
    }

    #[test]
    fn kernels_parse_and_check_conservation() {
        let j = Json::object(vec![(
            "kernels".into(),
            Json::Array(vec![kernel_json("bfs"), kernel_json("spmv")]),
        )]);
        let ks = kernels(&j).unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].name, "bfs");
        assert_eq!(ks[0].cpi.total(), 16);
        assert_eq!(ks[1].ipc, 12.5);
    }

    #[test]
    fn fingerprint_requires_the_comparability_fields() {
        let j = Json::object(vec![
            ("arch".into(), Json::Str("vt".into())),
            ("sms".into(), Json::UInt(4)),
            ("metrics_window".into(), Json::UInt(512)),
            (
                "suite".into(),
                Json::object(vec![
                    ("ctas".into(), Json::UInt(64)),
                    ("iters".into(), Json::UInt(2)),
                ]),
            ),
        ]);
        assert_eq!(
            fingerprint(&j).unwrap(),
            "arch=vt sms=4 window=512 ctas=64 iters=2"
        );
        assert!(fingerprint(&Json::object(vec![])).is_err());
    }
}
