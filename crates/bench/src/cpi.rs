//! CPI-stack helpers shared by the bench binaries: parsing the
//! nine-bucket cycle-accounting stack out of `BENCH_<n>.json` records,
//! rendering fig08-style stacked reports (`vtprof --cpi`) and ranking
//! bucket deltas for the differential explainer (`vtdiff`,
//! `vtbench --diff --explain`).
//!
//! The buckets partition SM-cycles exactly (see `DESIGN.md §15`), so a
//! cycle delta between two comparable runs decomposes into bucket
//! deltas with nothing left over — attribution is 100% by construction,
//! and [`Attribution::coverage`] reports exactly that.

use crate::{bar, Table};
use vt_core::CpiStack;
use vt_json::{req_u64, Json};

/// The nine leaf buckets in canonical (report) order. Matches
/// `CpiStack::buckets`.
pub const BUCKET_NAMES: [&str; 9] = [
    "issued",
    "stall_memory",
    "stall_pipeline",
    "stall_barrier",
    "stall_swap",
    "stall_structural",
    "empty_scheduling",
    "empty_capacity",
    "empty_drain",
];

/// One run's CPI stack as a plain bucket vector, decoupled from the
/// simulator type so records parsed from JSON and stacks taken from a
/// live `RunStats` render identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiRecord {
    /// Bucket values in [`BUCKET_NAMES`] order.
    pub buckets: [u64; 9],
}

impl CpiRecord {
    /// Converts a simulator stack.
    pub fn from_stack(s: &CpiStack) -> CpiRecord {
        let mut buckets = [0u64; 9];
        for (i, (_, v)) in s.buckets().iter().enumerate() {
            buckets[i] = *v;
        }
        CpiRecord { buckets }
    }

    /// Parses the `cpi` object of a record kernel entry (named buckets
    /// plus `sm_cycles`), verifying the conservation total.
    ///
    /// # Errors
    ///
    /// Returns a message on a missing bucket or when the recorded
    /// `sm_cycles` disagrees with the bucket sum.
    pub fn from_json(j: &Json) -> Result<CpiRecord, String> {
        let mut buckets = [0u64; 9];
        for (i, name) in BUCKET_NAMES.iter().enumerate() {
            buckets[i] = req_u64(j, name)?;
        }
        let rec = CpiRecord { buckets };
        let sm_cycles = req_u64(j, "sm_cycles")?;
        if rec.total() != sm_cycles {
            return Err(format!(
                "cpi buckets sum to {} but sm_cycles says {sm_cycles}",
                rec.total()
            ));
        }
        Ok(rec)
    }

    /// Total attributed SM-cycles (`num_sms × cycles`).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Named buckets in canonical order.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        BUCKET_NAMES.iter().zip(self.buckets).map(|(&n, v)| (n, v))
    }
}

/// Renders a fig08-style stacked CPI report for one kernel: per bucket
/// the CPI contribution (SM-cycles per executed thread instruction), the
/// share of all SM-cycles and a proportional bar. Zero buckets are
/// omitted; the `total` row ties the stack back to `num_sms / IPC`.
pub fn stack_report(cpi: &CpiRecord, thread_instrs: u64, width: usize) -> String {
    let total = cpi.total();
    let instrs = thread_instrs.max(1) as f64;
    let mut t = Table::new(vec!["bucket", "cpi", "share", ""]);
    for (name, v) in cpi.named() {
        if v == 0 {
            continue;
        }
        t.row(vec![
            name.to_string(),
            format!("{:.4}", v as f64 / instrs),
            format!("{:5.1}%", pct(v, total)),
            bar(v as f64, total as f64, width),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        format!("{:.4}", total as f64 / instrs),
        "100.0%".to_string(),
        String::new(),
    ]);
    t.render()
}

/// One kernel's cycle-delta attribution between two comparable runs.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Per-bucket signed SM-cycle deltas (new − old), ranked by
    /// magnitude descending; canonical order breaks ties.
    pub ranked: Vec<(&'static str, i64)>,
    /// Total SM-cycle delta (new − old).
    pub delta: i64,
}

impl Attribution {
    /// Decomposes `new − old` into ranked bucket deltas.
    pub fn between(old: &CpiRecord, new: &CpiRecord) -> Attribution {
        let mut ranked: Vec<(&'static str, i64)> = BUCKET_NAMES
            .iter()
            .zip(old.buckets.iter().zip(new.buckets.iter()))
            .map(|(&name, (&o, &n))| (name, n as i64 - o as i64))
            .collect();
        ranked.sort_by_key(|&(_, d)| std::cmp::Reverse(d.unsigned_abs()));
        Attribution {
            ranked,
            delta: new.total() as i64 - old.total() as i64,
        }
    }

    /// The fraction (in percent) of the total cycle delta the bucket
    /// deltas explain. The buckets partition SM-cycles exactly, so this
    /// is 100 whenever anything moved at all.
    pub fn coverage(&self) -> f64 {
        let explained: i64 = self.ranked.iter().map(|&(_, d)| d).sum();
        if self.delta == 0 {
            return 100.0;
        }
        explained as f64 / self.delta as f64 * 100.0
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CpiRecord {
        CpiRecord {
            buckets: [40, 30, 0, 5, 0, 5, 0, 12, 8],
        }
    }

    #[test]
    fn json_round_trip_checks_conservation() {
        let rec = sample();
        let mut fields: Vec<(String, Json)> = rec
            .named()
            .map(|(n, v)| (n.to_string(), Json::UInt(v)))
            .collect();
        fields.push(("sm_cycles".into(), Json::UInt(rec.total())));
        let j = Json::object(fields.clone());
        assert_eq!(CpiRecord::from_json(&j).unwrap(), rec);

        fields.last_mut().unwrap().1 = Json::UInt(rec.total() + 1);
        let bad = Json::object(fields);
        assert!(CpiRecord::from_json(&bad)
            .unwrap_err()
            .contains("sm_cycles"));
    }

    #[test]
    fn attribution_is_exhaustive_and_ranked() {
        let old = sample();
        let mut new = sample();
        new.buckets[1] += 100; // stall_memory grows
        new.buckets[0] -= 10; // issued shrinks
        let a = Attribution::between(&old, &new);
        assert_eq!(a.delta, 90);
        assert_eq!(a.ranked[0], ("stall_memory", 100));
        assert_eq!(a.ranked[1], ("issued", -10));
        assert!((a.coverage() - 100.0).abs() < 1e-12);
        assert_eq!(a.ranked.iter().map(|&(_, d)| d).sum::<i64>(), a.delta);
    }

    #[test]
    fn zero_delta_attribution_covers_fully() {
        let a = Attribution::between(&sample(), &sample());
        assert_eq!(a.delta, 0);
        assert!(a.ranked.iter().all(|&(_, d)| d == 0));
        assert_eq!(a.coverage(), 100.0);
    }

    #[test]
    fn stack_report_omits_zero_buckets_and_totals() {
        let s = stack_report(&sample(), 1000, 20);
        assert!(s.contains("issued"));
        assert!(s.contains("stall_memory"));
        assert!(!s.contains("stall_pipeline"), "zero bucket omitted");
        assert!(s.contains("total"));
        assert!(s.contains("100.0%"));
    }
}
