//! **Table 2** — benchmark characteristics: CTA shape, resource
//! footprint, instruction mix, limiter class, and resident CTAs per SM
//! under the baseline vs. Virtual Thread.

use serde::Serialize;
use vt_bench::{Harness, Table};
use vt_core::occupancy;

#[derive(Serialize)]
struct Row {
    name: String,
    mirrors: String,
    threads_per_cta: u32,
    warps_per_cta: u32,
    regs_per_thread: u16,
    smem_bytes: u32,
    global_mem_instrs: usize,
    barriers: usize,
    limiter: String,
    baseline_ctas: u32,
    vt_ctas: u32,
}

fn main() {
    let h = Harness::from_env();
    let mut t = Table::new(vec![
        "benchmark",
        "mirrors",
        "cta",
        "warps",
        "regs",
        "smem",
        "limiter",
        "ctas/SM base",
        "ctas/SM vt",
    ]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let occ = occupancy::analyze(&h.core, &w.kernel);
        let mix = w.kernel.program().mix();
        t.row(vec![
            w.name.to_string(),
            w.mirrors.split(" (").next().unwrap_or(w.mirrors).to_string(),
            w.kernel.threads_per_cta().to_string(),
            w.kernel.warps_per_cta().to_string(),
            w.kernel.regs_per_thread().to_string(),
            w.kernel.smem_bytes_per_cta().to_string(),
            occ.limiter.to_string(),
            occ.baseline_ctas.to_string(),
            occ.capacity_ctas.to_string(),
        ]);
        rows.push(Row {
            name: w.name.to_string(),
            mirrors: w.mirrors.to_string(),
            threads_per_cta: w.kernel.threads_per_cta(),
            warps_per_cta: w.kernel.warps_per_cta(),
            regs_per_thread: w.kernel.regs_per_thread(),
            smem_bytes: w.kernel.smem_bytes_per_cta(),
            global_mem_instrs: mix.global_mem,
            barriers: mix.barrier,
            limiter: occ.limiter.to_string(),
            baseline_ctas: occ.baseline_ctas,
            vt_ctas: occ.capacity_ctas,
        });
    }
    let human = format!("Table 2 — benchmark characteristics\n\n{}", t.render());
    h.emit("tab02_benchmarks", &human, &rows);
    assert_eq!(rows.len(), 14);
}
