//! **Table 2** — benchmark characteristics: CTA shape, resource
//! footprint, instruction mix, limiter class, resident CTAs per SM
//! under the baseline vs. Virtual Thread, and the static analyzer's
//! view of each kernel (register pressure vs. declaration, barrier
//! intervals).

use vt_bench::{Harness, Table};
use vt_core::occupancy;

struct Row {
    name: String,
    mirrors: String,
    threads_per_cta: u32,
    warps_per_cta: u32,
    regs_per_thread: u16,
    used_regs: u16,
    register_pressure: u16,
    smem_bytes: u32,
    global_mem_instrs: usize,
    barriers: usize,
    barrier_intervals: usize,
    analysis_warnings: usize,
    limiter: String,
    baseline_ctas: u32,
    vt_ctas: u32,
}

vt_json::impl_to_json!(Row {
    name,
    mirrors,
    threads_per_cta,
    warps_per_cta,
    regs_per_thread,
    used_regs,
    register_pressure,
    smem_bytes,
    global_mem_instrs,
    barriers,
    barrier_intervals,
    analysis_warnings,
    limiter,
    baseline_ctas,
    vt_ctas
});

fn main() {
    let h = Harness::from_env();
    let mut t = Table::new(vec![
        "benchmark",
        "mirrors",
        "cta",
        "warps",
        "regs",
        "pressure",
        "smem",
        "bar ivals",
        "limiter",
        "ctas/SM base",
        "ctas/SM vt",
    ]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let occ = occupancy::analyze(&h.core, &w.kernel);
        let mix = w.kernel.program().mix();
        let report = vt_analysis::analyze(&w.kernel);
        assert!(!report.has_errors(), "{}: {:?}", w.name, report.diagnostics);
        t.row(vec![
            w.name.to_string(),
            w.mirrors
                .split(" (")
                .next()
                .unwrap_or(w.mirrors)
                .to_string(),
            w.kernel.threads_per_cta().to_string(),
            w.kernel.warps_per_cta().to_string(),
            w.kernel.regs_per_thread().to_string(),
            format!("{}/{}", report.register_pressure, report.used_regs),
            w.kernel.smem_bytes_per_cta().to_string(),
            report.barrier_intervals.to_string(),
            occ.limiter.to_string(),
            occ.baseline_ctas.to_string(),
            occ.capacity_ctas.to_string(),
        ]);
        rows.push(Row {
            name: w.name.to_string(),
            mirrors: w.mirrors.to_string(),
            threads_per_cta: w.kernel.threads_per_cta(),
            warps_per_cta: w.kernel.warps_per_cta(),
            regs_per_thread: w.kernel.regs_per_thread(),
            used_regs: report.used_regs,
            register_pressure: report.register_pressure,
            smem_bytes: w.kernel.smem_bytes_per_cta(),
            global_mem_instrs: mix.global_mem,
            barriers: mix.barrier,
            barrier_intervals: report.barrier_intervals,
            analysis_warnings: report.warning_count(),
            limiter: occ.limiter.to_string(),
            baseline_ctas: occ.baseline_ctas,
            vt_ctas: occ.capacity_ctas,
        });
    }
    let human = format!("Table 2 — benchmark characteristics\n\n{}", t.render());
    h.emit("tab02_benchmarks", &human, &rows);
    assert_eq!(rows.len(), 14);
}
