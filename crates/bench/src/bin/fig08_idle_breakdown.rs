//! **Figure 8 (analysis)** — why VT works: the breakdown of SM-cycles by
//! issue activity, baseline vs. VT. The memory-idle fraction (cycles with
//! every schedulable warp stuck on a long-latency access) shrinks under
//! VT because swapped-in CTAs supply issuable work.

use vt_bench::{Harness, Table};
use vt_core::{Architecture, Report};

struct Share {
    issue: f64,
    memory: f64,
    pipeline: f64,
    barrier: f64,
    swapping: f64,
    no_warps: f64,
    other: f64,
}

vt_json::impl_to_json!(Share {
    issue,
    memory,
    pipeline,
    barrier,
    swapping,
    no_warps,
    other
});

struct Row {
    name: String,
    baseline: Share,
    vt: Share,
}

vt_json::impl_to_json!(Row { name, baseline, vt });

fn share(r: &Report, sms: u32) -> Share {
    let total = (r.stats.cycles * u64::from(sms)) as f64;
    let idle = &r.stats.idle;
    Share {
        issue: (total - idle.total() as f64) / total,
        memory: idle.memory as f64 / total,
        pipeline: idle.pipeline as f64 / total,
        barrier: idle.barrier as f64 / total,
        swapping: idle.swapping as f64 / total,
        no_warps: idle.no_warps as f64 / total,
        other: idle.other as f64 / total,
    }
}

fn main() {
    let h = Harness::from_env();
    let mut t = Table::new(vec![
        "benchmark",
        "arch",
        "issue",
        "mem-idle",
        "pipe",
        "barrier",
        "swap",
        "drain",
        "other",
    ]);
    let mut rows = Vec::new();
    let mut mem_idle = (0.0f64, 0.0f64);
    for w in h.suite() {
        let base = h.run(Architecture::Baseline, &w.kernel);
        let vt = h.run(Architecture::virtual_thread(), &w.kernel);
        let (sb, sv) = (share(&base, h.core.num_sms), share(&vt, h.core.num_sms));
        for (label, s) in [("base", &sb), ("vt", &sv)] {
            t.row(vec![
                w.name.to_string(),
                label.to_string(),
                format!("{:5.1}%", 100.0 * s.issue),
                format!("{:5.1}%", 100.0 * s.memory),
                format!("{:5.1}%", 100.0 * s.pipeline),
                format!("{:5.1}%", 100.0 * s.barrier),
                format!("{:5.1}%", 100.0 * s.swapping),
                format!("{:5.1}%", 100.0 * s.no_warps),
                format!("{:5.1}%", 100.0 * s.other),
            ]);
        }
        mem_idle.0 += sb.memory;
        mem_idle.1 += sv.memory;
        rows.push(Row {
            name: w.name.to_string(),
            baseline: sb,
            vt: sv,
        });
    }
    let n = rows.len() as f64;
    let human = format!(
        "Fig. 8 — SM-cycle breakdown, baseline vs. VT\n\n{}\naverage memory-idle fraction: \
         baseline {:.1}%, VT {:.1}%",
        t.render(),
        100.0 * mem_idle.0 / n,
        100.0 * mem_idle.1 / n
    );
    h.emit("fig08_idle_breakdown", &human, &rows);

    assert!(
        mem_idle.1 < mem_idle.0,
        "VT must reduce the average memory-idle fraction ({:.3} vs {:.3})",
        mem_idle.1 / n,
        mem_idle.0 / n
    );
}
