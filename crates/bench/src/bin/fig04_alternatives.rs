//! **Figure 4** — Virtual Thread against its design alternatives:
//! `Ideal` (scheduling structures scaled with capacity for free) and
//! `MemSwap` (CTA context switching through the memory hierarchy). VT is
//! expected to track Ideal closely while MemSwap forfeits much of the
//! benefit — the paper's core architectural argument for keeping
//! registers and shared memory resident during a swap.

use vt_bench::{geomean, Harness, Table};
use vt_core::{Architecture, MemSwapParams};

struct Row {
    name: String,
    vt: f64,
    ideal: f64,
    memswap: f64,
    vt_swaps: u64,
    memswap_swaps: u64,
}

vt_json::impl_to_json!(Row {
    name,
    vt,
    ideal,
    memswap,
    vt_swaps,
    memswap_swaps
});

fn main() {
    let h = Harness::from_env();
    let mut t = Table::new(vec!["benchmark", "vt", "ideal", "memswap"]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let base = h.run(Architecture::Baseline, &w.kernel);
        let vt = h.run(Architecture::virtual_thread(), &w.kernel);
        let ideal = h.run(Architecture::Ideal, &w.kernel);
        let memswap = h.run(Architecture::MemSwap(MemSwapParams::default()), &w.kernel);
        for r in [&vt, &ideal, &memswap] {
            assert_eq!(
                r.mem_image, base.mem_image,
                "{}: functional mismatch",
                w.name
            );
        }
        let row = Row {
            name: w.name.to_string(),
            vt: vt.speedup_over(&base),
            ideal: ideal.speedup_over(&base),
            memswap: memswap.speedup_over(&base),
            vt_swaps: vt.stats.swaps.swaps_out,
            memswap_swaps: memswap.stats.swaps.swaps_out,
        };
        t.row(vec![
            row.name.clone(),
            format!("{:.3}", row.vt),
            format!("{:.3}", row.ideal),
            format!("{:.3}", row.memswap),
        ]);
        rows.push(row);
    }
    let gm = |f: fn(&Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    let (g_vt, g_ideal, g_memswap) = (gm(|r| r.vt), gm(|r| r.ideal), gm(|r| r.memswap));
    let human = format!(
        "Fig. 4 — speedup over baseline: VT vs. Ideal vs. MemSwap\n\n{}\ngeomean: vt {:.3}, \
         ideal {:.3}, memswap {:.3}",
        t.render(),
        g_vt,
        g_ideal,
        g_memswap
    );
    h.emit("fig04_alternatives", &human, &rows);

    assert!(
        g_ideal >= g_vt * 0.98,
        "ideal ({g_ideal:.3}) is VT's upper bound ({g_vt:.3})"
    );
    assert!(
        g_memswap < g_vt,
        "memory-hierarchy swapping ({g_memswap:.3}) must forfeit VT's benefit ({g_vt:.3})"
    );
    assert!(
        rows.iter().any(|r| r.memswap < 1.0),
        "full-state swapping should regress at least one kernel"
    );
}
