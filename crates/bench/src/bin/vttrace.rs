//! `vttrace` — validate and replay accel-sim-style kernel traces.
//!
//! Frontend over the `vt-traces` crate. Two modes:
//!
//! * `vttrace --check FILE...` parses and lowers every file, printing a
//!   one-line verdict per file. Exit 0 when every file is a valid,
//!   lowerable trace; exit 1 when any file is rejected. Malformed input
//!   — truncated files, garbage bytes, out-of-range masks, duplicate
//!   records — produces a diagnostic, never a panic.
//! * `vttrace --run FILE` replays the trace through the simulator with
//!   the recorded launch geometry and prints a deterministic stats
//!   fingerprint (cycles, instruction counts, barriers, and an FNV-1a
//!   digest of the final memory image). The fingerprint is identical
//!   for any `--threads` value, so recorded replays can gate CI.
//!
//! ```text
//! cargo run --release -p vt-bench --bin vttrace -- --check traces/*.trace
//! cargo run --release -p vt-bench --bin vttrace -- --run traces/vecadd.trace --json
//! ```
//!
//! Exit codes: 0 success, 1 a `--check` file was rejected, 2 usage or
//! replay error.

use std::process::ExitCode;
use vt_bench::cli;
use vt_core::{Architecture, GpuConfig, MemSwapParams, Pool, Report, RunRequest, Session};
use vt_traces::parse_file;

const USAGE: &str = "\
usage: vttrace --check FILE...
       vttrace --run FILE [options]

--check parses and lowers each trace, reporting per-file verdicts; it
exits 0 only when every file is valid. --run replays one trace through
the simulator and prints a deterministic stats fingerprint.

options (--run):
  --arch baseline|vt|ideal|memswap   architecture (default vt)
  --sms N               number of SMs (default 4)
  --threads N           worker threads (default sequential; the
                        fingerprint is identical for any value)
  --json                print the fingerprint as JSON
  -h, --help            this help";

enum Mode {
    Check(Vec<String>),
    Run(String),
}

struct Opts {
    mode: Mode,
    arch: Architecture,
    sms: u32,
    threads: Option<usize>,
    json: bool,
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut mode: Option<Mode> = None;
    let mut arch = Architecture::virtual_thread();
    let mut sms = 4u32;
    let mut threads = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--json" => json = true,
            "--check" => {
                let mut files = vec![value("--check")?];
                files.extend(args.by_ref());
                mode = Some(Mode::Check(files));
            }
            "--run" => mode = Some(Mode::Run(value("--run")?)),
            "--arch" => {
                arch = match value("--arch")?.as_str() {
                    "baseline" => Architecture::Baseline,
                    "vt" => Architecture::virtual_thread(),
                    "ideal" => Architecture::Ideal,
                    "memswap" => Architecture::MemSwap(MemSwapParams::default()),
                    other => return Err(format!("unknown architecture `{other}`")),
                };
            }
            "--sms" => sms = value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?,
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let mode = mode.ok_or("one of --check or --run is required")?;
    Ok(Some(Opts {
        mode,
        arch,
        sms,
        threads,
        json,
    }))
}

/// FNV-1a over the final memory image, a cheap functional digest.
fn mem_digest(report: &Report) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in report.mem_image.as_words() {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Validates every file; true when all are accepted.
fn check(files: &[String]) -> bool {
    let mut ok = true;
    for f in files {
        match parse_file(f).and_then(|t| t.lower().map(|k| (t, k))) {
            Ok((t, k)) => println!(
                "{f}: ok: kernel `{}`, {} CTAs x {} threads, {} records -> {} replay instrs",
                t.name,
                t.grid,
                t.block,
                t.total_records(),
                k.program().len()
            ),
            Err(e) => {
                ok = false;
                println!("{f}: REJECTED: {e}");
            }
        }
    }
    ok
}

fn run(file: &str, o: &Opts) -> Result<(), String> {
    let trace = parse_file(file).map_err(|e| format!("{file}: {e}"))?;
    let kernel = trace.lower().map_err(|e| format!("{file}: {e}"))?;
    let mut cfg = GpuConfig::with_arch(o.arch);
    cfg.core.num_sms = o.sms.max(1);
    let mut session = Session::new(cfg);
    if let Some(n) = o.threads {
        session = session.with_pool(Pool::new(n));
    }
    let report = session
        .run(RunRequest::kernel(&kernel))
        .and_then(|out| out.completed())
        .map_err(|e| format!("{file}: replay failed: {e}"))?
        .remove(0);
    let s = &report.stats;
    let digest = mem_digest(&report);
    if o.json {
        println!(
            "{{\"kernel\": \"{}\", \"arch\": \"{}\", \"sms\": {}, \"cycles\": {}, \
             \"warp_instrs\": {}, \"thread_instrs\": {}, \"barriers\": {}, \
             \"mem_fnv\": \"{digest:016x}\"}}",
            trace.name,
            o.arch.label(),
            o.sms,
            s.cycles,
            s.warp_instrs,
            s.thread_instrs,
            s.barriers
        );
    } else {
        println!(
            "kernel={} arch={} sms={} cycles={} warp_instrs={} thread_instrs={} \
             barriers={} mem_fnv={digest:016x}",
            trace.name, // lowering preserves the recorded kernel name
            o.arch.label(),
            o.sms,
            s.cycles,
            s.warp_instrs,
            s.thread_instrs,
            s.barriers
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match cli::parsed("vttrace", USAGE, parse_args()) {
        Ok(o) => o,
        Err(code) => return cli::code(code),
    };
    let result = match &opts.mode {
        Mode::Check(files) => Ok(check(files)),
        Mode::Run(file) => run(file, &opts).map(|()| true),
    };
    cli::code(cli::finish("vttrace", result))
}
