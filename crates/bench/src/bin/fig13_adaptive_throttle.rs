//! **Figure 13 (extension, negative result)** — adaptive thrash
//! throttling: plain VT vs. VT with an issue-rate hill climber that
//! alternates between rotation ("normal VT") and a held active set,
//! keeping the mode that issues faster (a CCWS-flavoured controller).
//!
//! The experiment documents why this *does not* rescue the
//! cache-sensitive kernel (`spmv`): under rotation the SM's *local*
//! issue rate is higher — more warps have work — while the damage
//! (evicted reuse, extra DRAM refetches) is paid in the shared L2/DRAM
//! and in later windows. A greedy local controller therefore always
//! prefers rotation, and fixing cache-sensitivity needs a global or
//! locality-aware signal (as CCWS's lost-locality detectors provide).
//! The controller must at least be *safe*: settling into rotation
//! everywhere, it should cost only probing noise.

use vt_bench::{geomean, Harness, Table};
use vt_core::{Architecture, VtParams};
use vt_sim::config::ThrottleConfig;

const KERNELS: &[&str] = &["spmv", "kmeans", "streamcluster", "stencil", "bfs"];

struct Row {
    name: String,
    vt: f64,
    vt_throttled: f64,
    swaps_plain: u64,
    swaps_throttled: u64,
}

vt_json::impl_to_json!(Row {
    name,
    vt,
    vt_throttled,
    swaps_plain,
    swaps_throttled
});

fn main() {
    let h = Harness::from_env();
    let suite = h.suite();
    let workloads: Vec<_> = suite.iter().filter(|w| KERNELS.contains(&w.name)).collect();
    let throttled = Architecture::VirtualThread(VtParams {
        adaptive_throttle: Some(ThrottleConfig::default()),
        ..VtParams::default()
    });
    let mut t = Table::new(vec![
        "benchmark",
        "vt",
        "vt+throttle",
        "swaps",
        "swaps+throttle",
    ]);
    let mut rows = Vec::new();
    for w in &workloads {
        let base = h.run(Architecture::Baseline, &w.kernel);
        let vt = h.run(Architecture::virtual_thread(), &w.kernel);
        let th = h.run(throttled, &w.kernel);
        assert_eq!(
            th.mem_image, base.mem_image,
            "{}: functional mismatch",
            w.name
        );
        let row = Row {
            name: w.name.to_string(),
            vt: vt.speedup_over(&base),
            vt_throttled: th.speedup_over(&base),
            swaps_plain: vt.stats.swaps.swaps_out,
            swaps_throttled: th.stats.swaps.swaps_out,
        };
        t.row(vec![
            row.name.clone(),
            format!("{:.3}", row.vt),
            format!("{:.3}", row.vt_throttled),
            row.swaps_plain.to_string(),
            row.swaps_throttled.to_string(),
        ]);
        rows.push(row);
    }
    let g_vt = geomean(&rows.iter().map(|r| r.vt).collect::<Vec<_>>());
    let g_th = geomean(&rows.iter().map(|r| r.vt_throttled).collect::<Vec<_>>());
    let human = format!(
        "Fig. 13 — VT vs. VT + issue-rate throttle (speedup over baseline)\n\n{}\ngeomean: vt \
         {:.3}, vt+throttle {:.3}\n\nNegative result: the greedy controller cannot rescue the \
         cache-sensitive kernel\n(rotation always looks locally faster; the thrash cost lands in \
         the shared L2),\nso its value is bounded at 'do no harm'.",
        t.render(),
        g_vt,
        g_th
    );
    h.emit("fig13_adaptive_throttle", &human, &rows);

    // Safety: the controller settles into rotation and costs only probe
    // noise overall.
    assert!(
        g_th >= g_vt * 0.85,
        "the throttle must be near-harmless overall ({g_th:.3} vs {g_vt:.3})"
    );
    // The documented negative result: spmv is NOT rescued (a local
    // issue-rate signal cannot see the shared-cache damage).
    let spmv = rows
        .iter()
        .find(|r| r.name == "spmv")
        .expect("spmv measured");
    assert!(
        spmv.vt_throttled < 1.1 * spmv.vt.max(1.0),
        "if this starts passing, the controller learned something new — update the docs!"
    );
}
