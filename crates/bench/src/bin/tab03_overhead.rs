//! **Table 3** — hardware overhead of the Virtual Thread context buffer:
//! the per-SM storage added to hold the scheduling state (PCs, SIMT
//! stacks, scoreboards) of virtualised CTAs, for several design points.
//! Substantiates the paper's low-complexity claim: a few KiB against a
//! 128 KiB register file.

use vt_bench::{Harness, Table};
use vt_core::{context_buffer, OverheadBreakdown, VtParams};

struct Row {
    virtual_ctas: u32,
    warps_per_cta: u32,
    breakdown: OverheadBreakdown,
    total_bytes: u32,
    fraction_of_regfile: f64,
}

impl vt_json::ToJson for Row {
    fn to_json(&self) -> vt_json::Json {
        use vt_json::Json;
        let b = &self.breakdown;
        Json::Object(vec![
            ("virtual_ctas".into(), self.virtual_ctas.to_json()),
            ("warps_per_cta".into(), self.warps_per_cta.to_json()),
            (
                "breakdown".into(),
                Json::Object(vec![
                    (
                        "buffered_warp_contexts".into(),
                        b.buffered_warp_contexts.to_json(),
                    ),
                    ("pc_bytes".into(), b.pc_bytes.to_json()),
                    ("simt_stack_bytes".into(), b.simt_stack_bytes.to_json()),
                    ("scoreboard_bytes".into(), b.scoreboard_bytes.to_json()),
                    ("cta_metadata_bytes".into(), b.cta_metadata_bytes.to_json()),
                ]),
            ),
            ("total_bytes".into(), self.total_bytes.to_json()),
            (
                "fraction_of_regfile".into(),
                self.fraction_of_regfile.to_json(),
            ),
        ])
    }
}

fn main() {
    let h = Harness::from_env();
    let params = VtParams::default();
    let mut t = Table::new(vec![
        "virtual CTAs",
        "warps/CTA",
        "buffered warps",
        "PCs",
        "SIMT stacks",
        "scoreboards",
        "CTA meta",
        "total",
        "% of regfile",
    ]);
    let mut rows = Vec::new();
    for (virtual_ctas, wpc) in [(16u32, 2u32), (24, 2), (32, 2), (48, 1), (16, 4), (12, 8)] {
        let b = context_buffer(&h.core, &params, virtual_ctas, wpc);
        t.row(vec![
            virtual_ctas.to_string(),
            wpc.to_string(),
            b.buffered_warp_contexts.to_string(),
            format!("{} B", b.pc_bytes),
            format!("{} B", b.simt_stack_bytes),
            format!("{} B", b.scoreboard_bytes),
            format!("{} B", b.cta_metadata_bytes),
            format!("{:.1} KiB", b.total_bytes() as f64 / 1024.0),
            format!("{:.2}%", 100.0 * b.fraction_of_regfile(&h.core)),
        ]);
        rows.push(Row {
            virtual_ctas,
            warps_per_cta: wpc,
            total_bytes: b.total_bytes(),
            fraction_of_regfile: b.fraction_of_regfile(&h.core),
            breakdown: b,
        });
    }
    let human = format!(
        "Table 3 — context-buffer storage per SM (stack budget {} entries/warp)\n\n{}",
        params.stack_entries_per_warp,
        t.render()
    );
    h.emit("tab03_overhead", &human, &rows);

    assert!(
        rows.iter().all(|r| r.fraction_of_regfile < 0.10),
        "context buffer must stay small relative to the register file"
    );
}
