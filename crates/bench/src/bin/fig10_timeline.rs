//! **Figure 10 (extension)** — occupancy over time: resident and active
//! warps per SM sampled across the run, baseline vs. VT, on one
//! latency-bound workload. Makes the mechanism visible: VT's resident
//! population rides at the capacity limit while its active set stays
//! within the scheduling limit.
//!
//! Built on the windowed metric series (`CoreConfig::metrics_window`):
//! each point is the aggregate level series sampled at a window boundary,
//! scaled to a per-SM mean (warps) or a fraction of total capacity
//! (register file, shared memory).

use vt_bench::{bar, Harness};
use vt_core::{Architecture, CoreConfig, Gpu, GpuConfig, MetricsRegistry};

const WINDOW: u64 = 64;

struct Record {
    workload: String,
    window: u64,
    baseline: SeriesRecord,
    vt: SeriesRecord,
}

vt_json::impl_to_json!(Record {
    workload,
    window,
    baseline,
    vt
});

/// Per-SM means and capacity fractions extracted from the aggregate
/// level series of one run's [`MetricsRegistry`].
struct SeriesRecord {
    window: u64,
    resident_warps: Vec<f32>,
    active_warps: Vec<f32>,
    reg_util: Vec<f32>,
    smem_util: Vec<f32>,
}

vt_json::impl_to_json!(SeriesRecord {
    window,
    resident_warps,
    active_warps,
    reg_util,
    smem_util
});

impl SeriesRecord {
    fn from_registry(m: &MetricsRegistry, core: &CoreConfig) -> SeriesRecord {
        let sms = core.num_sms as f32;
        let per_sm = |name: &str, denom: f32| -> Vec<f32> {
            m.get(name, None)
                .expect("aggregate level series present")
                .values()
                .iter()
                .map(|&v| v as f32 / denom)
                .collect()
        };
        SeriesRecord {
            window: m.window(),
            resident_warps: per_sm("resident_warps", sms),
            active_warps: per_sm("active_warps", sms),
            reg_util: per_sm("reg_bytes", sms * core.regfile_bytes as f32),
            smem_util: per_sm("smem_bytes", sms * core.smem_bytes as f32),
        }
    }
}

const BUCKETS: usize = 24;

/// Averages a series into a fixed number of buckets for display.
fn resample(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return vec![0.0; BUCKETS];
    }
    (0..BUCKETS)
        .map(|b| {
            let lo = b * xs.len() / BUCKETS;
            let hi = (((b + 1) * xs.len()) / BUCKETS).max(lo + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f32>() / (hi - lo) as f32
        })
        .collect()
}

fn main() {
    let h = Harness::from_env();
    let w = h
        .suite()
        .into_iter()
        .find(|w| w.name == "streamcluster")
        .expect("suite contains streamcluster");

    let run = |arch: Architecture| {
        let mut cfg = GpuConfig {
            core: h.core.clone(),
            mem: h.mem.clone(),
            arch,
        };
        cfg.core.metrics_window = Some(WINDOW);
        Gpu::new(cfg).run(&w.kernel).expect("run succeeds")
    };
    let base = run(Architecture::Baseline);
    let vt = run(Architecture::virtual_thread());
    let tl_base =
        SeriesRecord::from_registry(base.stats.metrics().expect("sampling enabled"), &h.core);
    let tl_vt = SeriesRecord::from_registry(vt.stats.metrics().expect("sampling enabled"), &h.core);

    let max_warps = h.core.max_warps_per_sm as f64;
    let mut human = format!(
        "Fig. 10 — warps per SM over time ({}, {} warp slots marked |)\n\n",
        w.name, h.core.max_warps_per_sm
    );
    human.push_str("time→   baseline resident | vt resident | vt active\n");
    let rb = resample(&tl_base.resident_warps);
    let rv = resample(&tl_vt.resident_warps);
    let av = resample(&tl_vt.active_warps);
    let scale = rv.iter().cloned().fold(max_warps as f32, f32::max) as f64;
    for i in 0..BUCKETS {
        human.push_str(&format!(
            "{:3}%  {} {:5.1}   {} {:5.1}   {} {:5.1}\n",
            i * 100 / BUCKETS,
            bar(f64::from(rb[i]), scale, 16),
            rb[i],
            bar(f64::from(rv[i]), scale, 16),
            rv[i],
            bar(f64::from(av[i]), scale, 16),
            av[i],
        ));
    }
    human.push_str(&format!(
        "\nmean resident warps: baseline {:.1}, vt {:.1} (of {} slots); vt mean active {:.1}",
        base.stats.occupancy.avg_resident_warps(),
        vt.stats.occupancy.avg_resident_warps(),
        h.core.max_warps_per_sm,
        vt.stats.occupancy.avg_active_warps(),
    ));
    let mean = |xs: &[f32]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f32>() / xs.len() as f32
        }
    };
    human.push_str(&format!(
        "\nmean regfile util: baseline {:.0}%, vt {:.0}%; mean smem util: baseline {:.0}%, vt {:.0}%",
        mean(&tl_base.reg_util) * 100.0,
        mean(&tl_vt.reg_util) * 100.0,
        mean(&tl_base.smem_util) * 100.0,
        mean(&tl_vt.smem_util) * 100.0,
    ));
    let record = Record {
        workload: w.name.to_string(),
        window: WINDOW,
        baseline: tl_base,
        vt: tl_vt,
    };
    h.emit("fig10_timeline", &human, &record);
    let (tl_base, tl_vt) = (&record.baseline, &record.vt);

    // Mid-run, VT must hold more residents than the baseline ever can,
    // while its active set respects the scheduling limit.
    let mid = tl_vt.resident_warps.len() / 2;
    assert!(
        tl_vt.resident_warps[mid] > tl_base.resident_warps[tl_base.resident_warps.len() / 2] * 1.3,
        "VT residency should visibly exceed the baseline mid-run"
    );
    assert!(
        tl_vt
            .active_warps
            .iter()
            .all(|&a| a <= h.core.max_warps_per_sm as f32 + 1e-3),
        "active warps never exceed the scheduling limit"
    );
    for tl in [tl_base, tl_vt] {
        assert!(
            tl.reg_util
                .iter()
                .chain(&tl.smem_util)
                .all(|&u| (0.0..=1.0).contains(&u)),
            "resource utilisation samples are fractions of capacity"
        );
    }
    assert!(
        mean(&tl_vt.reg_util) >= mean(&tl_base.reg_util),
        "VT keeps the register file at least as full as the baseline"
    );
}
