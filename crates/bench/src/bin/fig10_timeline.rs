//! **Figure 10 (extension)** — occupancy over time: resident and active
//! warps per SM sampled across the run, baseline vs. VT, on one
//! latency-bound workload. Makes the mechanism visible: VT's resident
//! population rides at the capacity limit while its active set stays
//! within the scheduling limit.

use vt_bench::{bar, Harness};
use vt_core::{Architecture, Gpu, GpuConfig};
use vt_sim::stats::Timeline;

struct Record {
    workload: String,
    interval: u64,
    baseline: TimelineRecord,
    vt: TimelineRecord,
}

vt_json::impl_to_json!(Record {
    workload,
    interval,
    baseline,
    vt
});

/// Local mirror of [`Timeline`] so the record serializes without a
/// vt-sim → vt-json coupling.
struct TimelineRecord {
    interval: u64,
    resident_warps: Vec<f32>,
    active_warps: Vec<f32>,
    reg_util: Vec<f32>,
    smem_util: Vec<f32>,
}

vt_json::impl_to_json!(TimelineRecord {
    interval,
    resident_warps,
    active_warps,
    reg_util,
    smem_util
});

impl From<&Timeline> for TimelineRecord {
    fn from(t: &Timeline) -> Self {
        TimelineRecord {
            interval: t.interval,
            resident_warps: t.resident_warps.clone(),
            active_warps: t.active_warps.clone(),
            reg_util: t.reg_util.clone(),
            smem_util: t.smem_util.clone(),
        }
    }
}

const BUCKETS: usize = 24;

/// Averages a timeline into a fixed number of buckets for display.
fn resample(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return vec![0.0; BUCKETS];
    }
    (0..BUCKETS)
        .map(|b| {
            let lo = b * xs.len() / BUCKETS;
            let hi = (((b + 1) * xs.len()) / BUCKETS).max(lo + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f32>() / (hi - lo) as f32
        })
        .collect()
}

fn main() {
    let h = Harness::from_env();
    let w = h
        .suite()
        .into_iter()
        .find(|w| w.name == "streamcluster")
        .expect("suite contains streamcluster");

    let run = |arch: Architecture| {
        let mut cfg = GpuConfig {
            core: h.core.clone(),
            mem: h.mem.clone(),
            arch,
        };
        cfg.core.timeline_interval = Some(64);
        Gpu::new(cfg).run(&w.kernel).expect("run succeeds")
    };
    let base = run(Architecture::Baseline);
    let vt = run(Architecture::virtual_thread());
    let tl_base = base.stats.timeline.clone().expect("sampling enabled");
    let tl_vt = vt.stats.timeline.clone().expect("sampling enabled");

    let max_warps = h.core.max_warps_per_sm as f64;
    let mut human = format!(
        "Fig. 10 — warps per SM over time ({}, {} warp slots marked |)\n\n",
        w.name, h.core.max_warps_per_sm
    );
    human.push_str("time→   baseline resident | vt resident | vt active\n");
    let rb = resample(&tl_base.resident_warps);
    let rv = resample(&tl_vt.resident_warps);
    let av = resample(&tl_vt.active_warps);
    let scale = rv.iter().cloned().fold(max_warps as f32, f32::max) as f64;
    for i in 0..BUCKETS {
        human.push_str(&format!(
            "{:3}%  {} {:5.1}   {} {:5.1}   {} {:5.1}\n",
            i * 100 / BUCKETS,
            bar(f64::from(rb[i]), scale, 16),
            rb[i],
            bar(f64::from(rv[i]), scale, 16),
            rv[i],
            bar(f64::from(av[i]), scale, 16),
            av[i],
        ));
    }
    human.push_str(&format!(
        "\nmean resident warps: baseline {:.1}, vt {:.1} (of {} slots); vt mean active {:.1}",
        base.stats.occupancy.avg_resident_warps(),
        vt.stats.occupancy.avg_resident_warps(),
        h.core.max_warps_per_sm,
        vt.stats.occupancy.avg_active_warps(),
    ));
    let mean = |xs: &[f32]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f32>() / xs.len() as f32
        }
    };
    human.push_str(&format!(
        "\nmean regfile util: baseline {:.0}%, vt {:.0}%; mean smem util: baseline {:.0}%, vt {:.0}%",
        mean(&tl_base.reg_util) * 100.0,
        mean(&tl_vt.reg_util) * 100.0,
        mean(&tl_base.smem_util) * 100.0,
        mean(&tl_vt.smem_util) * 100.0,
    ));
    h.emit(
        "fig10_timeline",
        &human,
        &Record {
            workload: w.name.to_string(),
            interval: 64,
            baseline: TimelineRecord::from(&tl_base),
            vt: TimelineRecord::from(&tl_vt),
        },
    );

    // Mid-run, VT must hold more residents than the baseline ever can,
    // while its active set respects the scheduling limit.
    let mid = tl_vt.resident_warps.len() / 2;
    assert!(
        tl_vt.resident_warps[mid] > tl_base.resident_warps[tl_base.len() / 2] * 1.3,
        "VT residency should visibly exceed the baseline mid-run"
    );
    assert!(
        tl_vt
            .active_warps
            .iter()
            .all(|&a| a <= h.core.max_warps_per_sm as f32 + 1e-3),
        "active warps never exceed the scheduling limit"
    );
    for tl in [&tl_base, &tl_vt] {
        assert!(
            tl.reg_util
                .iter()
                .chain(&tl.smem_util)
                .all(|&u| (0.0..=1.0).contains(&u)),
            "resource utilisation samples are fractions of capacity"
        );
    }
    assert!(
        mean(&tl_vt.reg_util) >= mean(&tl_base.reg_util),
        "VT keeps the register file at least as full as the baseline"
    );
}
