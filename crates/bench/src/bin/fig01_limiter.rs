//! **Figure 1 (motivation)** — occupancy-limiter classification.
//!
//! For every benchmark: how many CTAs each resource class would allow per
//! SM, and which one actually binds. Reproduces the paper's observation
//! that the *scheduling limit* (CTA/warp slots) curtails concurrency for
//! most general-purpose workloads while on-chip memory sits idle.

use vt_bench::{Harness, Table};
use vt_core::occupancy;

struct Row {
    name: String,
    by_cta_slots: u32,
    by_warp_slots: u32,
    by_registers: u32,
    by_shared_memory: Option<u32>,
    baseline_ctas: u32,
    capacity_ctas: u32,
    limiter: String,
    scheduling_limited: bool,
    headroom: f64,
}

vt_json::impl_to_json!(Row {
    name,
    by_cta_slots,
    by_warp_slots,
    by_registers,
    by_shared_memory,
    baseline_ctas,
    capacity_ctas,
    limiter,
    scheduling_limited,
    headroom
});

fn main() {
    let h = Harness::from_env();
    let mut table = Table::new(vec![
        "benchmark",
        "cta-slots",
        "warp-slots",
        "registers",
        "shared-mem",
        "baseline",
        "capacity",
        "limiter",
        "headroom",
    ]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let occ = occupancy::analyze(&h.core, &w.kernel);
        let smem = (occ.by_shared_memory != u32::MAX).then_some(occ.by_shared_memory);
        table.row(vec![
            w.name.to_string(),
            occ.by_cta_slots.to_string(),
            occ.by_warp_slots.to_string(),
            occ.by_registers.to_string(),
            smem.map_or_else(|| "-".to_string(), |v| v.to_string()),
            occ.baseline_ctas.to_string(),
            occ.capacity_ctas.to_string(),
            occ.limiter.to_string(),
            format!("{:.1}x", occ.virtualization_headroom()),
        ]);
        rows.push(Row {
            name: w.name.to_string(),
            by_cta_slots: occ.by_cta_slots,
            by_warp_slots: occ.by_warp_slots,
            by_registers: occ.by_registers,
            by_shared_memory: smem,
            baseline_ctas: occ.baseline_ctas,
            capacity_ctas: occ.capacity_ctas,
            limiter: occ.limiter.to_string(),
            scheduling_limited: occ.limiter.is_scheduling(),
            headroom: occ.virtualization_headroom(),
        });
    }
    let sched = rows.iter().filter(|r| r.scheduling_limited).count();
    let human = format!(
        "Fig. 1 — CTAs/SM allowed by each resource and the binding limiter\n\n{}\n{} of {} \
         benchmarks are scheduling-limited.",
        table.render(),
        sched,
        rows.len()
    );
    h.emit("fig01_limiter", &human, &rows);
    assert!(
        sched * 2 > rows.len(),
        "motivation requires a scheduling-limited majority ({sched}/{})",
        rows.len()
    );
}
