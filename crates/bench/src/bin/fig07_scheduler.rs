//! **Figure 7 (sensitivity)** — interaction with the warp scheduler: the
//! VT benefit under loose round-robin vs. greedy-then-oldest. VT's gain
//! is largely orthogonal to the issue policy because it attacks a
//! different bottleneck (too few warps, not warp selection).

use vt_bench::{geomean, Harness, Table};
use vt_core::{Architecture, SchedPolicy};

struct Row {
    name: String,
    lrr_base_cycles: u64,
    lrr_vt_speedup: f64,
    gto_base_cycles: u64,
    gto_vt_speedup: f64,
}

vt_json::impl_to_json!(Row {
    name,
    lrr_base_cycles,
    lrr_vt_speedup,
    gto_base_cycles,
    gto_vt_speedup
});

fn main() {
    let mut h = Harness::from_env();
    let mut t = Table::new(vec![
        "benchmark",
        "LRR base",
        "LRR vt-speedup",
        "GTO base",
        "GTO vt-speedup",
    ]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let mut cells = Vec::new();
        let mut speedups = Vec::new();
        let mut bases = Vec::new();
        for policy in [SchedPolicy::Lrr, SchedPolicy::Gto] {
            h.core.scheduler = policy;
            let base = h.run(Architecture::Baseline, &w.kernel);
            let vt = h.run(Architecture::virtual_thread(), &w.kernel);
            speedups.push(vt.speedup_over(&base));
            bases.push(base.stats.cycles);
        }
        cells.push(w.name.to_string());
        cells.push(bases[0].to_string());
        cells.push(format!("{:.3}", speedups[0]));
        cells.push(bases[1].to_string());
        cells.push(format!("{:.3}", speedups[1]));
        t.row(cells);
        rows.push(Row {
            name: w.name.to_string(),
            lrr_base_cycles: bases[0],
            lrr_vt_speedup: speedups[0],
            gto_base_cycles: bases[1],
            gto_vt_speedup: speedups[1],
        });
    }
    let g_lrr = geomean(&rows.iter().map(|r| r.lrr_vt_speedup).collect::<Vec<_>>());
    let g_gto = geomean(&rows.iter().map(|r| r.gto_vt_speedup).collect::<Vec<_>>());
    let human = format!(
        "Fig. 7 — VT speedup under LRR vs. GTO warp scheduling\n\n{}\ngeomean VT gain: LRR \
         {:.3}, GTO {:.3}",
        t.render(),
        g_lrr,
        g_gto
    );
    h.emit("fig07_scheduler", &human, &rows);

    assert!(
        g_lrr > 1.02 && g_gto > 1.02,
        "VT must help under both schedulers"
    );
}
