//! **Figure 3 (main result)** — IPC of Virtual Thread normalised to the
//! baseline, per benchmark plus the geometric mean. The paper reports
//! +23.9% on average, concentrated in scheduling-limited benchmarks with
//! capacity-limited ones unchanged.

use vt_bench::{bar, geomean, Harness, Table};
use vt_core::Architecture;
use vt_workloads::LimiterClass;

struct Row {
    name: String,
    class: String,
    baseline_cycles: u64,
    vt_cycles: u64,
    speedup: f64,
    swaps: u64,
    baseline_resident_warps: f64,
    vt_resident_warps: f64,
}

vt_json::impl_to_json!(Row {
    name,
    class,
    baseline_cycles,
    vt_cycles,
    speedup,
    swaps,
    baseline_resident_warps,
    vt_resident_warps
});

fn main() {
    let h = Harness::from_env();
    let mut t = Table::new(vec![
        "benchmark",
        "class",
        "speedup",
        "",
        "swaps",
        "warps base→vt",
    ]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let base = h.run(Architecture::Baseline, &w.kernel);
        let vt = h.run(Architecture::virtual_thread(), &w.kernel);
        assert_eq!(
            vt.mem_image, base.mem_image,
            "{}: functional mismatch",
            w.name
        );
        let row = Row {
            name: w.name.to_string(),
            class: format!("{:?}", w.class),
            baseline_cycles: base.stats.cycles,
            vt_cycles: vt.stats.cycles,
            speedup: vt.speedup_over(&base),
            swaps: vt.stats.swaps.swaps_out,
            baseline_resident_warps: base.stats.occupancy.avg_resident_warps(),
            vt_resident_warps: vt.stats.occupancy.avg_resident_warps(),
        };
        t.row(vec![
            row.name.clone(),
            row.class.clone(),
            format!("{:.3}", row.speedup),
            bar(row.speedup, 2.5, 25),
            row.swaps.to_string(),
            format!(
                "{:4.1} → {:4.1}",
                row.baseline_resident_warps, row.vt_resident_warps
            ),
        ]);
        rows.push(row);
    }
    let all = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    let sched = geomean(
        &rows
            .iter()
            .filter(|r| r.class == format!("{:?}", LimiterClass::Scheduling))
            .map(|r| r.speedup)
            .collect::<Vec<_>>(),
    );
    let cap = geomean(
        &rows
            .iter()
            .filter(|r| r.class == format!("{:?}", LimiterClass::Capacity))
            .map(|r| r.speedup)
            .collect::<Vec<_>>(),
    );
    let human = format!(
        "Fig. 3 — VT speedup over baseline (IPC normalised; paper: +23.9% avg)\n\n{}\ngeomean: \
         all {:.3}  |  scheduling-limited {:.3}  |  capacity-limited {:.3}",
        t.render(),
        all,
        sched,
        cap
    );
    h.emit("fig03_speedup", &human, &rows);

    // Acceptance criteria (DESIGN.md §5).
    assert!(
        (1.05..=1.40).contains(&all),
        "average VT speedup {all:.3} outside the paper's band"
    );
    assert!(
        sched > cap,
        "gains must concentrate in scheduling-limited kernels"
    );
    assert!(
        (0.99..=1.01).contains(&cap),
        "capacity-limited kernels must be unchanged, got {cap:.3}"
    );
}
