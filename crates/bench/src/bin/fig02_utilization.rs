//! **Figure 2 (motivation)** — on-chip resource utilisation under the
//! baseline, measured over the actual simulated run (time-integrated):
//! registers, shared memory and thread slots. Shows the stranded capacity
//! Virtual Thread later exploits.

use vt_bench::{bar, Harness, Table};
use vt_core::Architecture;

struct Row {
    name: String,
    reg_utilization: f64,
    smem_utilization: f64,
    thread_slot_utilization: f64,
}

vt_json::impl_to_json!(Row {
    name,
    reg_utilization,
    smem_utilization,
    thread_slot_utilization
});

fn main() {
    let h = Harness::from_env();
    let mut table = Table::new(vec!["benchmark", "registers", "shared-mem", "thread-slots"]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let r = h.run(Architecture::Baseline, &w.kernel);
        let occ = &r.stats.occupancy;
        let row = Row {
            name: w.name.to_string(),
            reg_utilization: occ.reg_utilization(h.core.regfile_bytes),
            smem_utilization: occ.smem_utilization(h.core.smem_bytes),
            thread_slot_utilization: occ.thread_slot_utilization(h.core.max_warps_per_sm),
        };
        table.row(vec![
            row.name.clone(),
            format!(
                "{} {:5.1}%",
                bar(row.reg_utilization, 1.0, 20),
                100.0 * row.reg_utilization
            ),
            format!(
                "{} {:5.1}%",
                bar(row.smem_utilization, 1.0, 20),
                100.0 * row.smem_utilization
            ),
            format!(
                "{} {:5.1}%",
                bar(row.thread_slot_utilization, 1.0, 20),
                100.0 * row.thread_slot_utilization
            ),
        ]);
        rows.push(row);
    }
    let avg_reg = rows.iter().map(|r| r.reg_utilization).sum::<f64>() / rows.len() as f64;
    let avg_smem = rows.iter().map(|r| r.smem_utilization).sum::<f64>() / rows.len() as f64;
    let human = format!(
        "Fig. 2 — time-integrated on-chip resource utilisation (baseline)\n\n{}\naverage: \
         registers {:.1}%, shared memory {:.1}%",
        table.render(),
        100.0 * avg_reg,
        100.0 * avg_smem
    );
    h.emit("fig02_utilization", &human, &rows);
    assert!(
        avg_reg < 0.55,
        "motivation requires mostly-idle register files, got {avg_reg:.2}"
    );
}
