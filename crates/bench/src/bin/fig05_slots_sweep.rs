//! **Figure 5 (sensitivity)** — speedup as a function of the virtual CTA
//! budget per SM (the context-buffer size). The curve should rise from
//! the baseline at the scheduling limit and saturate once capacity or
//! memory-system limits take over — with a cache-sensitivity downturn on
//! the gather-heavy kernel.

use vt_bench::{geomean, Harness, Table};
use vt_core::{Architecture, VtParams};

const KERNELS: &[&str] = &["streamcluster", "bfs", "nw", "kmeans", "spmv"];

struct Point {
    max_virtual_ctas: Option<u32>,
    speedups: Vec<(String, f64)>,
    geomean: f64,
}

vt_json::impl_to_json!(Point {
    max_virtual_ctas,
    speedups,
    geomean
});

fn main() {
    let h = Harness::from_env();
    // The sweep needs enough CTAs per SM to reach the capacity limit
    // (up to ~50 for the leanest kernels), so it runs a 3x-deeper grid
    // than the other figures.
    let mut scale = h.scale();
    scale.ctas *= 3;
    let suite = vt_workloads::suite(&scale);
    let workloads: Vec<_> = suite.iter().filter(|w| KERNELS.contains(&w.name)).collect();
    let baselines: Vec<_> = workloads
        .iter()
        .map(|w| h.run(Architecture::Baseline, &w.kernel))
        .collect();

    let caps: &[Option<u32>] = if h.quick {
        &[Some(8), Some(16), None]
    } else {
        &[Some(8), Some(12), Some(16), Some(24), Some(32), None]
    };
    let mut t = Table::new(
        std::iter::once("virtual CTAs".to_string())
            .chain(workloads.iter().map(|w| w.name.to_string()))
            .chain(std::iter::once("geomean".to_string()))
            .collect::<Vec<_>>(),
    );
    let mut points = Vec::new();
    for &cap in caps {
        let mut speedups = Vec::new();
        for (w, base) in workloads.iter().zip(&baselines) {
            let arch = Architecture::VirtualThread(VtParams {
                max_virtual_ctas: cap,
                ..VtParams::default()
            });
            let r = h.run(arch, &w.kernel);
            speedups.push((w.name.to_string(), r.speedup_over(base)));
        }
        let gm = geomean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        t.row(
            std::iter::once(cap.map_or("capacity".to_string(), |c| c.to_string()))
                .chain(speedups.iter().map(|(_, s)| format!("{s:.3}")))
                .chain(std::iter::once(format!("{gm:.3}")))
                .collect::<Vec<_>>(),
        );
        points.push(Point {
            max_virtual_ctas: cap,
            speedups,
            geomean: gm,
        });
    }
    let human = format!(
        "Fig. 5 — VT speedup vs. virtual CTA budget per SM (8 = scheduling limit)\n\n{}",
        t.render()
    );
    h.emit("fig05_slots_sweep", &human, &points);

    // At the scheduling limit VT degenerates to (roughly) the baseline;
    // more virtual CTAs must help on the latency-bound kernels.
    let first = &points[0];
    assert!(
        (0.9..1.1).contains(&first.geomean),
        "8 virtual CTAs should be near-baseline, got {:.3}",
        first.geomean
    );
    let last = points.last().expect("non-empty sweep");
    assert!(
        last.geomean > first.geomean,
        "speedup should grow with the virtual CTA budget"
    );
}
