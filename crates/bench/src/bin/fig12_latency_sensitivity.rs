//! **Figure 12 (extension)** — VT's gain as a function of memory round-
//! trip latency (interconnect + DRAM scaled together). The longer the
//! stalls, the more TLP it takes to hide them and the more the paper's
//! mechanism is worth — the trend that makes VT *more* relevant on
//! later, higher-latency parts.

use vt_bench::{geomean, Harness, Table};
use vt_core::Architecture;

const KERNELS: &[&str] = &["streamcluster", "bfs", "nw", "hotspot"];

struct Point {
    latency_scale: f64,
    uncontended_round_trip: u32,
    geomean: f64,
}

vt_json::impl_to_json!(Point {
    latency_scale,
    uncontended_round_trip,
    geomean
});

fn main() {
    let mut h = Harness::from_env();
    let suite = h.suite();
    let workloads: Vec<_> = suite.iter().filter(|w| KERNELS.contains(&w.name)).collect();
    let base_mem = h.mem.clone();
    let scales: &[f64] = if h.quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0]
    };
    let mut t = Table::new(vec!["latency scale", "round trip", "geomean VT speedup"]);
    let mut points = Vec::new();
    for &scale in scales {
        let s = |v: u32| ((f64::from(v) * scale).round() as u32).max(1);
        h.mem.icnt_latency = s(base_mem.icnt_latency);
        h.mem.l2_hit_latency = s(base_mem.l2_hit_latency);
        h.mem.dram_row_hit_latency = s(base_mem.dram_row_hit_latency);
        h.mem.dram_row_miss_latency = s(base_mem.dram_row_miss_latency);
        let mut speedups = Vec::new();
        for w in &workloads {
            let base = h.run(Architecture::Baseline, &w.kernel);
            let vt = h.run(Architecture::virtual_thread(), &w.kernel);
            speedups.push(vt.speedup_over(&base));
        }
        let gm = geomean(&speedups);
        t.row(vec![
            format!("{scale}x"),
            format!("{} cycles", h.mem.uncontended_miss_latency()),
            format!("{gm:.3}"),
        ]);
        points.push(Point {
            latency_scale: scale,
            uncontended_round_trip: h.mem.uncontended_miss_latency(),
            geomean: gm,
        });
    }
    let human = format!(
        "Fig. 12 — VT speedup vs. memory latency (latency-bound kernels)\n\n{}",
        t.render()
    );
    h.emit("fig12_latency_sensitivity", &human, &points);

    let first = points.first().expect("non-empty");
    let last = points.last().expect("non-empty");
    assert!(
        last.geomean > first.geomean,
        "VT's benefit must grow with memory latency ({:.3} at {}x vs {:.3} at {}x)",
        first.geomean,
        first.latency_scale,
        last.geomean,
        last.latency_scale
    );
}
