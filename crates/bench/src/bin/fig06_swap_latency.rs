//! **Figure 6 (sensitivity)** — speedup as a function of the context-
//! switch cost, from a free swap down to memory-hierarchy cost. Shows the
//! window in which CTA virtualisation pays: cheap on-chip swaps keep
//! nearly all of the benefit; at DRAM-like costs the benefit is gone —
//! the quantitative version of the paper's "registers never move" claim.

use vt_bench::{geomean, Harness, Table};
use vt_core::{Architecture, VtParams};

const KERNELS: &[&str] = &["streamcluster", "bfs", "nw", "hotspot"];

struct Point {
    buffer_words_per_cycle: u32,
    approx_swap_cycles: u32,
    geomean: f64,
}

vt_json::impl_to_json!(Point {
    buffer_words_per_cycle,
    approx_swap_cycles,
    geomean
});

fn main() {
    let h = Harness::from_env();
    let suite = h.suite();
    let workloads: Vec<_> = suite.iter().filter(|w| KERNELS.contains(&w.name)).collect();
    let baselines: Vec<_> = workloads
        .iter()
        .map(|w| h.run(Architecture::Baseline, &w.kernel))
        .collect();

    // Halving the context-buffer port width doubles the swap cost; width 0
    // is sentinel-mapped to 1 word/cycle below.
    let widths: &[u32] = if h.quick {
        &[64, 8, 1]
    } else {
        &[64, 32, 16, 8, 4, 2, 1]
    };
    let mut t = Table::new(vec![
        "buffer words/cycle",
        "≈swap cycles",
        "geomean speedup",
    ]);
    let mut points = Vec::new();
    for &width in widths {
        let params = VtParams {
            buffer_words_per_cycle: width,
            ..VtParams::default()
        };
        let mut speedups = Vec::new();
        let mut cost = 0;
        for (w, base) in workloads.iter().zip(&baselines) {
            cost = cost.max(params.swap_cycles(&w.kernel));
            let r = h.run(Architecture::VirtualThread(params), &w.kernel);
            speedups.push(r.speedup_over(base));
        }
        let gm = geomean(&speedups);
        t.row(vec![
            width.to_string(),
            cost.to_string(),
            format!("{gm:.3}"),
        ]);
        points.push(Point {
            buffer_words_per_cycle: width,
            approx_swap_cycles: cost,
            geomean: gm,
        });
    }
    let human = format!(
        "Fig. 6 — VT speedup vs. context-switch cost (latency-bound kernels)\n\n{}",
        t.render()
    );
    h.emit("fig06_swap_latency", &human, &points);

    let fast = points.first().expect("non-empty");
    let slow = points.last().expect("non-empty");
    assert!(
        fast.geomean > 1.1,
        "cheap swaps must show the VT benefit, got {:.3}",
        fast.geomean
    );
    assert!(
        slow.geomean < fast.geomean,
        "expensive swaps ({:.3}) must erode the benefit ({:.3})",
        slow.geomean,
        fast.geomean
    );
}
