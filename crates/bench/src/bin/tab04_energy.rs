//! **Table 4 (extension)** — first-order dynamic energy: Virtual
//! Thread's context-switch energy against memory-hierarchy swapping, and
//! the energy-delay product of each architecture relative to the
//! baseline. Quantifies the paper's "only scheduling state moves" energy
//! argument.

use vt_bench::{geomean, Harness, Table};
use vt_core::{estimate_energy, Architecture, EnergyParams, MemSwapParams};

struct Row {
    name: String,
    baseline_uj: f64,
    vt_uj: f64,
    vt_swap_fraction: f64,
    memswap_uj: f64,
    memswap_swap_fraction: f64,
    vt_edp_rel: f64,
    memswap_edp_rel: f64,
}

vt_json::impl_to_json!(Row {
    name,
    baseline_uj,
    vt_uj,
    vt_swap_fraction,
    memswap_uj,
    memswap_swap_fraction,
    vt_edp_rel,
    memswap_edp_rel
});

fn main() {
    let h = Harness::from_env();
    let p = EnergyParams::default();
    let mut t = Table::new(vec![
        "benchmark",
        "base µJ",
        "vt µJ",
        "vt swap%",
        "memswap µJ",
        "ms swap%",
        "vt EDP",
        "ms EDP",
    ]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let base = h.run(Architecture::Baseline, &w.kernel);
        let vt = h.run(Architecture::virtual_thread(), &w.kernel);
        let ms = h.run(Architecture::MemSwap(MemSwapParams::default()), &w.kernel);
        let e_base = estimate_energy(&base, &w.kernel, &p);
        let e_vt = estimate_energy(&vt, &w.kernel, &p);
        let e_ms = estimate_energy(&ms, &w.kernel, &p);
        let base_edp = e_base.edp(base.stats.cycles);
        let row = Row {
            name: w.name.to_string(),
            baseline_uj: e_base.total_uj(),
            vt_uj: e_vt.total_uj(),
            vt_swap_fraction: e_vt.swap_fraction(),
            memswap_uj: e_ms.total_uj(),
            memswap_swap_fraction: e_ms.swap_fraction(),
            vt_edp_rel: e_vt.edp(vt.stats.cycles) / base_edp,
            memswap_edp_rel: e_ms.edp(ms.stats.cycles) / base_edp,
        };
        t.row(vec![
            row.name.clone(),
            format!("{:.0}", row.baseline_uj),
            format!("{:.0}", row.vt_uj),
            format!("{:.2}%", 100.0 * row.vt_swap_fraction),
            format!("{:.0}", row.memswap_uj),
            format!("{:.2}%", 100.0 * row.memswap_swap_fraction),
            format!("{:.3}", row.vt_edp_rel),
            format!("{:.3}", row.memswap_edp_rel),
        ]);
        rows.push(row);
    }
    let g_vt_edp = geomean(&rows.iter().map(|r| r.vt_edp_rel).collect::<Vec<_>>());
    let g_ms_edp = geomean(&rows.iter().map(|r| r.memswap_edp_rel).collect::<Vec<_>>());
    let max_vt_swap = rows
        .iter()
        .map(|r| r.vt_swap_fraction)
        .fold(0.0f64, f64::max);
    let human = format!(
        "Table 4 — dynamic energy and energy-delay product (EDP relative to baseline)\n\n{}\n\
         geomean EDP: vt {:.3}, memswap {:.3}; worst-case VT swap energy share {:.2}%",
        t.render(),
        g_vt_edp,
        g_ms_edp,
        100.0 * max_vt_swap
    );
    h.emit("tab04_energy", &human, &rows);

    assert!(
        max_vt_swap < 0.05,
        "VT swap energy must stay negligible ({max_vt_swap:.4})"
    );
    assert!(g_vt_edp < 1.0, "VT must improve EDP ({g_vt_edp:.3})");
    assert!(g_ms_edp > g_vt_edp, "memswap EDP must be worse than VT's");
}
