//! `vtprof` — trace-driven profiler for the simulator.
//!
//! Runs suite kernels under a named architecture with event tracing
//! enabled, exports a Chrome-trace-event JSON per run (loadable in
//! Perfetto / `chrome://tracing`) and prints a latency/occupancy metrics
//! summary.
//!
//! ```text
//! cargo run --release -p vt-bench --bin vtprof                 # all kernels
//! cargo run --release -p vt-bench --bin vtprof -- bfs spmv --arch vt
//! cargo run --release -p vt-bench --bin vtprof -- bfs --check  # validate
//! ```
//!
//! Exit codes: 0 success, 1 a `--check` validation failed, 2 usage or
//! simulation error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use vt_bench::cli;
use vt_bench::cpi::{stack_report, CpiRecord};
use vt_bench::hotspot::{self, ProfileRecord};
use vt_core::{Architecture, GpuConfig, MemSwapParams, RunRequest, Session};
use vt_json::Json;
use vt_trace::{
    to_chrome_json_with, validate, validate_metrics, Gauge, Histogram, RingSink, TimedEvent,
};
use vt_workloads::{suite, Scale, Workload};

const USAGE: &str = "\
usage: vtprof [KERNEL...] [options]

Runs suite kernels with cycle-accurate event tracing, writes one
Chrome-trace JSON per run and prints a metrics summary.

options:
  --arch baseline|vt|ideal|memswap   architecture to run (default vt)
  --scale test|small|paper           problem scale (default test)
  --sms N                            number of SMs (default config's 15)
  --out DIR                          trace output directory (default traces/)
  --ring N                           ring-buffer capacity in events (default 1048576)
  --metrics PATH                     enable windowed metric series and write a
                                     Prometheus text exposition to PATH (the
                                     kernel/arch is inserted before the
                                     extension when profiling several kernels);
                                     series also appear as Perfetto counter
                                     tracks in the Chrome trace
  --window N                         metric window in cycles (default 512)
  --check                            fail (exit 1) on validation errors or
                                     dropped events; with --metrics, also
                                     cross-checks the series against the
                                     event stream
  --cpi                              print each run's cycle-accounting CPI
                                     stack (fig08-style): per bucket the
                                     CPI contribution, share of SM-cycles
                                     and a proportional bar
  --profile                          per-PC hotspot profiling: write a
                                     <kernel>.<arch>.hotspots.json record
                                     (instruction-level CPI attribution,
                                     memory latency, coalescing width,
                                     divergence) next to the trace
  --annotate                         print a perf-annotate-style listing
                                     (disassembly + per-line CPI mini-stack
                                     + observed-vs-static coalescing);
                                     implies --profile
  --flame                            write collapsed-stack flamegraph text
                                     (<kernel>.<arch>.collapsed.txt) and a
                                     per-PC Perfetto counter-track trace
                                     (<kernel>.<arch>.pcs.trace.json);
                                     implies --profile
  --json                             machine-readable metrics on stdout
  --list                             list suite kernel names and exit
  -h, --help                         this help

exit codes: 0 success, 1 a --check validation failed, 2 usage or
simulation error";

struct Opts {
    kernels: Vec<String>,
    arch: Architecture,
    scale: Scale,
    sms: Option<u32>,
    out: PathBuf,
    ring: usize,
    metrics: Option<PathBuf>,
    window: u64,
    check: bool,
    cpi: bool,
    profile: bool,
    annotate: bool,
    flame: bool,
    json: bool,
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut o = Opts {
        kernels: Vec::new(),
        arch: Architecture::virtual_thread(),
        scale: Scale::test(),
        sms: None,
        out: PathBuf::from("traces"),
        ring: 1 << 20,
        metrics: None,
        window: 512,
        check: false,
        cpi: false,
        profile: false,
        annotate: false,
        flame: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    let mut list = false;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => list = true,
            "--check" => o.check = true,
            "--cpi" => o.cpi = true,
            "--profile" => o.profile = true,
            "--annotate" => {
                o.profile = true;
                o.annotate = true;
            }
            "--flame" => {
                o.profile = true;
                o.flame = true;
            }
            "--json" => o.json = true,
            "--arch" => {
                o.arch = match value("--arch")?.as_str() {
                    "baseline" => Architecture::Baseline,
                    "vt" => Architecture::virtual_thread(),
                    "ideal" => Architecture::Ideal,
                    "memswap" => Architecture::MemSwap(MemSwapParams::default()),
                    other => return Err(format!("unknown architecture `{other}`")),
                };
            }
            "--scale" => {
                o.scale = match value("--scale")?.as_str() {
                    "test" => Scale::test(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--sms" => {
                o.sms = Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?);
            }
            "--out" => o.out = PathBuf::from(value("--out")?),
            "--metrics" => o.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--window" => {
                o.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--ring" => {
                o.ring = value("--ring")?
                    .parse()
                    .map_err(|e| format!("--ring: {e}"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            name => o.kernels.push(name.to_string()),
        }
    }
    if list {
        for w in suite(&Scale::test()) {
            println!("{}", w.name);
        }
        return Ok(None);
    }
    Ok(Some(o))
}

fn select<'a>(all: &'a [Workload], names: &[String]) -> Result<Vec<&'a Workload>, String> {
    if names.is_empty() {
        return Ok(all.iter().collect());
    }
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|w| w.name == n)
                .ok_or(format!("unknown kernel `{n}` (try --list)"))
        })
        .collect()
}

fn hist_json(h: &Histogram) -> Json {
    Json::object(vec![
        ("count".into(), Json::UInt(h.count)),
        ("mean".into(), Json::Float(h.mean())),
        (
            "min".into(),
            Json::UInt(if h.is_empty() { 0 } else { h.min }),
        ),
        ("p50".into(), Json::UInt(h.percentile(50.0))),
        ("p99".into(), Json::UInt(h.percentile(99.0))),
        ("max".into(), Json::UInt(h.max)),
    ])
}

fn gauge_json(g: &Gauge) -> Json {
    Json::object(vec![
        ("samples".into(), Json::UInt(g.samples)),
        ("mean".into(), Json::Float(g.mean())),
        ("max".into(), Json::UInt(g.max)),
    ])
}

fn hist_line(name: &str, h: &Histogram) -> String {
    if h.is_empty() {
        return format!("  {name:<18} (no samples)");
    }
    format!(
        "  {name:<18} n={:<8} mean={:<9.1} p50={:<7} p99={:<8} max={}",
        h.count,
        h.mean(),
        h.percentile(50.0),
        h.percentile(99.0),
        h.max
    )
}

struct RunOutcome {
    metrics: Json,
    check_failed: bool,
}

/// Where one kernel's Prometheus exposition goes: the `--metrics` path
/// itself for a single kernel, the path with `kernel.arch` inserted
/// before the extension when profiling several.
fn metrics_path(base: &std::path::Path, w: &Workload, arch: Architecture, multi: bool) -> PathBuf {
    if !multi {
        return base.to_path_buf();
    }
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "metrics".to_string());
    let ext = base
        .extension()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "prom".to_string());
    base.with_file_name(format!("{stem}.{}.{}.{ext}", w.name, arch.label()))
}

fn profile_one(
    w: &Workload,
    opts: &Opts,
    cfg: &GpuConfig,
    multi: bool,
) -> Result<RunOutcome, String> {
    let mut cfg = cfg.clone();
    if opts.metrics.is_some() {
        cfg.core.metrics_window = Some(opts.window);
    }
    if opts.profile {
        cfg.core.profile = true;
    }
    let mut session = Session::new(cfg).with_sink(RingSink::new(opts.ring));
    let report = session
        .run(RunRequest::kernel(&w.kernel))
        .and_then(|o| o.completed())
        .map_err(|e| format!("{}: {e}", w.name))?
        .remove(0);
    let sink = session.into_sink();
    let dropped = sink.dropped();
    let events: Vec<TimedEvent> = sink.into_events();
    let registry = report.stats.metrics();

    // A full ring cannot validate (span begins fell off the front), so
    // only check structure for complete traces; a lossy trace is itself a
    // `--check` failure.
    let complete = dropped == 0;
    let mut issues: Vec<String> = if complete {
        match validate(&events) {
            Ok(_) => Vec::new(),
            Err(errors) => errors,
        }
    } else {
        Vec::new()
    };
    if complete {
        if let Some(m) = registry {
            if let Err(errors) = validate_metrics(&events, m) {
                issues.extend(errors);
            }
        }
    }
    let check_failed = opts.check && !(complete && issues.is_empty());

    fs::create_dir_all(&opts.out).map_err(|e| format!("cannot create {:?}: {e}", opts.out))?;
    let path = opts
        .out
        .join(format!("{}.{}.trace.json", w.name, report.arch.label()));
    fs::write(&path, to_chrome_json_with(&events, registry).compact())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let prom_path = match (&opts.metrics, registry) {
        (Some(base), Some(m)) => {
            let p = metrics_path(base, w, report.arch, multi);
            if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
                fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            }
            fs::write(&p, m.to_prometheus())
                .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
            Some(p)
        }
        _ => None,
    };

    // Per-PC hotspot profile: the record itself, plus its annotate /
    // flamegraph renderings when asked for.
    let hotspot_rec = if opts.profile {
        let rec = ProfileRecord::from_run(
            w.name,
            report.arch.label(),
            w.kernel.program(),
            &report.stats,
        )
        .map_err(|e| format!("{}: {e}", w.name))?;
        rec.check_conservation()
            .map_err(|e| format!("{}: per-PC conservation violated: {e}", w.name))?;
        let path = opts
            .out
            .join(format!("{}.{}.hotspots.json", w.name, report.arch.label()));
        fs::write(&path, rec.to_json().pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Some((rec, path))
    } else {
        None
    };
    let flame_paths = match (&hotspot_rec, opts.flame) {
        (Some((rec, _)), true) => {
            let leaders = hotspot::block_leaders(w.kernel.program());
            let collapsed =
                opts.out
                    .join(format!("{}.{}.collapsed.txt", w.name, report.arch.label()));
            fs::write(&collapsed, hotspot::flame_collapsed(rec, &leaders))
                .map_err(|e| format!("cannot write {}: {e}", collapsed.display()))?;
            let perfetto =
                opts.out
                    .join(format!("{}.{}.pcs.trace.json", w.name, report.arch.label()));
            fs::write(&perfetto, hotspot::flame_perfetto(rec).compact())
                .map_err(|e| format!("cannot write {}: {e}", perfetto.display()))?;
            Some((collapsed, perfetto))
        }
        _ => None,
    };

    let s = &report.stats;
    let metrics = Json::object(vec![
        ("kernel".into(), Json::Str(w.name.to_string())),
        ("arch".into(), Json::Str(report.arch.label().to_string())),
        ("cycles".into(), Json::UInt(s.cycles)),
        ("ipc".into(), Json::Float(s.ipc())),
        ("warp_instrs".into(), Json::UInt(s.warp_instrs)),
        ("ctas_completed".into(), Json::UInt(s.ctas_completed)),
        ("issue_cycles".into(), Json::UInt(s.issue_cycles)),
        ("idle_cycles".into(), Json::UInt(s.idle.total())),
        ("cpi".into(), s.cpi_stack().to_json()),
        ("swaps_out".into(), Json::UInt(s.swaps.swaps_out)),
        ("swaps_in".into(), Json::UInt(s.swaps.swaps_in)),
        ("load_latency".into(), hist_json(&s.mem.load_latency)),
        ("swap_duration".into(), hist_json(&s.swap_duration)),
        ("swap_gap".into(), hist_json(&s.swap_gap)),
        ("barrier_wait".into(), hist_json(&s.barrier_wait)),
        ("mshr_occupancy".into(), gauge_json(&s.mem.mshr_occupancy)),
        ("ldst_queue".into(), gauge_json(&s.ldst_queue)),
        ("events".into(), Json::UInt(events.len() as u64)),
        ("events_dropped".into(), Json::UInt(dropped)),
        (
            "metrics_windows".into(),
            Json::UInt(registry.map_or(0, |m| m.windows())),
        ),
        (
            "metrics".into(),
            prom_path
                .as_ref()
                .map_or(Json::Null, |p| Json::Str(p.display().to_string())),
        ),
        (
            "validation_errors".into(),
            Json::Array(issues.iter().cloned().map(Json::Str).collect()),
        ),
        ("trace".into(), Json::Str(path.display().to_string())),
        (
            "hotspots".into(),
            hotspot_rec
                .as_ref()
                .map_or(Json::Null, |(_, p)| Json::Str(p.display().to_string())),
        ),
    ]);

    if !opts.json {
        println!(
            "{} [{}]: {} cycles, ipc {:.2}, {} events -> {}",
            w.name,
            report.arch.label(),
            s.cycles,
            s.ipc(),
            events.len(),
            path.display()
        );
        println!("{}", hist_line("load_latency", &s.mem.load_latency));
        println!("{}", hist_line("swap_duration", &s.swap_duration));
        println!("{}", hist_line("swap_gap", &s.swap_gap));
        println!("{}", hist_line("barrier_wait", &s.barrier_wait));
        println!(
            "  {:<18} mean={:<9.1} max={}",
            "mshr_occupancy",
            s.mem.mshr_occupancy.mean(),
            s.mem.mshr_occupancy.max
        );
        println!(
            "  {:<18} mean={:<9.1} max={}",
            "ldst_queue",
            s.ldst_queue.mean(),
            s.ldst_queue.max
        );
        if opts.cpi {
            let rec = CpiRecord::from_stack(&s.cpi_stack());
            println!("  cpi stack ({} SM-cycles):", rec.total());
            for line in stack_report(&rec, s.thread_instrs, 24).lines() {
                println!("    {line}");
            }
        }
        if let (Some(p), Some(m)) = (&prom_path, registry) {
            println!(
                "  {:<18} {} windows of {} cycles -> {}",
                "metrics",
                m.windows(),
                m.window(),
                p.display()
            );
        }
        if let Some((rec, p)) = &hotspot_rec {
            println!(
                "  {:<18} {} PCs -> {}",
                "hotspots",
                rec.pcs.len(),
                p.display()
            );
            if opts.annotate {
                let model = vt_analysis::model(&w.kernel, &vt_analysis::ModelConfig::default());
                for line in hotspot::annotate(rec, &model.mem_sites, 24).lines() {
                    println!("  {line}");
                }
            }
        }
        if let Some((collapsed, perfetto)) = &flame_paths {
            println!(
                "  {:<18} {} + {}",
                "flame",
                collapsed.display(),
                perfetto.display()
            );
        }
        if dropped > 0 {
            println!("  WARNING: ring overflow, {dropped} events dropped (raise --ring)");
        }
        for issue in &issues {
            println!("  INVALID: {issue}");
        }
        if opts.check && issues.is_empty() && dropped == 0 {
            println!("  check: ok ({} events)", events.len());
        }
    }
    Ok(RunOutcome {
        metrics,
        check_failed,
    })
}

fn main() -> ExitCode {
    let opts = match cli::parsed("vtprof", USAGE, parse_args()) {
        Ok(o) => o,
        Err(code) => return cli::code(code),
    };
    let all = suite(&opts.scale);
    let picked = match select(&all, &opts.kernels) {
        Ok(p) => p,
        Err(e) => return cli::code(cli::fail("vtprof", &e)),
    };
    let mut cfg = GpuConfig::with_arch(opts.arch);
    if let Some(sms) = opts.sms {
        cfg.core.num_sms = sms.max(1);
    }
    let mut records = Vec::new();
    let mut failed = false;
    let multi = picked.len() > 1;
    for w in picked {
        match profile_one(w, &opts, &cfg, multi) {
            Ok(out) => {
                failed |= out.check_failed;
                records.push(out.metrics);
            }
            Err(e) => return cli::code(cli::fail("vtprof", &e)),
        }
    }
    if opts.json {
        println!("{}", Json::Array(records).pretty());
    }
    if failed {
        eprintln!("vtprof: --check failed");
    }
    cli::code(cli::finish("vtprof", Ok(!failed)))
}
