//! **Figure 9 (ablation)** — the swap-trigger design choice: the paper's
//! all-warps-stalled policy against an eager any-warp-stalled variant and
//! a no-swap variant (inactive CTAs activate only when an active CTA
//! finishes). Eager swapping evicts CTAs that still have issuable warps;
//! never swapping strands the virtualised CTAs.

use vt_bench::{geomean, Harness, Table};
use vt_core::{Architecture, SwapTrigger, VtParams};

struct Row {
    name: String,
    all_stalled: f64,
    any_stalled: f64,
    never: f64,
}

vt_json::impl_to_json!(Row {
    name,
    all_stalled,
    any_stalled,
    never
});

fn main() {
    let h = Harness::from_env();
    let triggers = [
        ("all-stalled", SwapTrigger::AllWarpsStalled),
        ("any-stalled", SwapTrigger::AnyWarpStalled),
        ("never", SwapTrigger::Never),
    ];
    let mut t = Table::new(vec!["benchmark", "all-stalled", "any-stalled", "never"]);
    let mut rows = Vec::new();
    for w in h.suite() {
        let base = h.run(Architecture::Baseline, &w.kernel);
        let mut s = Vec::new();
        for (_, trigger) in triggers {
            let arch = Architecture::VirtualThread(VtParams {
                trigger,
                ..VtParams::default()
            });
            let r = h.run(arch, &w.kernel);
            s.push(r.speedup_over(&base));
        }
        t.row(vec![
            w.name.to_string(),
            format!("{:.3}", s[0]),
            format!("{:.3}", s[1]),
            format!("{:.3}", s[2]),
        ]);
        rows.push(Row {
            name: w.name.to_string(),
            all_stalled: s[0],
            any_stalled: s[1],
            never: s[2],
        });
    }
    let g_all = geomean(&rows.iter().map(|r| r.all_stalled).collect::<Vec<_>>());
    let g_any = geomean(&rows.iter().map(|r| r.any_stalled).collect::<Vec<_>>());
    let g_never = geomean(&rows.iter().map(|r| r.never).collect::<Vec<_>>());
    let human = format!(
        "Fig. 9 — swap-trigger ablation (VT speedup over baseline)\n\n{}\ngeomean: all-stalled \
         {:.3}, any-stalled {:.3}, never {:.3}",
        t.render(),
        g_all,
        g_any,
        g_never
    );
    h.emit("fig09_trigger_ablation", &human, &rows);

    assert!(
        g_all >= g_never,
        "the paper's trigger ({g_all:.3}) must beat never swapping ({g_never:.3})"
    );
    assert!(
        g_all >= g_any * 0.97,
        "the paper's trigger ({g_all:.3}) should not lose clearly to eager swapping ({g_any:.3})"
    );
}
