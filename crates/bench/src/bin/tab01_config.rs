//! **Table 1** — the simulated machine configuration (Fermi/GTX 480
//! class, mirroring the paper's GPGPU-Sim setup).

use serde::Serialize;
use vt_bench::{Harness, Table};
use vt_core::{CoreConfig, MemConfig};

#[derive(Serialize)]
struct Record {
    core: CoreConfig,
    mem: MemConfig,
}

fn main() {
    let h = Harness::from_env();
    let c = &h.core;
    let m = &h.mem;
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["SMs", &c.num_sms.to_string()]);
    t.row(vec!["warp size", "32"]);
    t.row(vec!["warp slots / SM (scheduling limit)", &c.max_warps_per_sm.to_string()]);
    t.row(vec!["CTA slots / SM (scheduling limit)", &c.max_ctas_per_sm.to_string()]);
    t.row(vec![
        "register file / SM (capacity limit)",
        &format!("{} KiB", c.regfile_bytes / 1024),
    ]);
    t.row(vec!["shared memory / SM (capacity limit)", &format!("{} KiB", c.smem_bytes / 1024)]);
    t.row(vec!["warp schedulers / SM", &c.schedulers_per_sm.to_string()]);
    t.row(vec!["scheduler policy", &format!("{:?}", c.scheduler)]);
    t.row(vec!["ALU / SFU latency", &format!("{} / {} cycles", c.alu_latency, c.sfu_latency)]);
    t.row(vec![
        "shared memory",
        &format!("{} banks, {}-cycle latency", c.smem_banks, c.smem_latency),
    ]);
    t.row(vec![
        "L1D / SM",
        &format!(
            "{} KiB, {}-way, {} B lines, {} MSHRs, {}-cycle hit",
            m.l1_bytes / 1024,
            m.l1_ways,
            m.line_bytes,
            m.l1_mshr_entries,
            m.l1_hit_latency
        ),
    ]);
    t.row(vec![
        "L2 (total)",
        &format!(
            "{} KiB in {} partitions, {}-way, {}-cycle hit",
            m.l2_slice_bytes * m.partitions / 1024,
            m.partitions,
            m.l2_ways,
            m.l2_hit_latency
        ),
    ]);
    t.row(vec![
        "interconnect",
        &format!("{}-cycle latency, {} B/cycle/direction", m.icnt_latency, m.icnt_flits_per_cycle * 32),
    ]);
    t.row(vec![
        "DRAM",
        &format!(
            "{} channels x {} banks, row hit/miss {}/{} cycles, {} B rows",
            m.partitions, m.dram_banks, m.dram_row_hit_latency, m.dram_row_miss_latency, m.dram_row_bytes
        ),
    ]);
    let human = format!("Table 1 — simulated GPU configuration\n\n{}", t.render());
    h.emit("tab01_config", &human, &Record { core: c.clone(), mem: m.clone() });
}
