//! **Table 1** — the simulated machine configuration (Fermi/GTX 480
//! class, mirroring the paper's GPGPU-Sim setup).

use vt_bench::{Harness, Table};
use vt_core::{CoreConfig, MemConfig};

struct Record {
    core: CoreConfig,
    mem: MemConfig,
}

impl vt_json::ToJson for Record {
    fn to_json(&self) -> vt_json::Json {
        use vt_json::Json;
        let c = &self.core;
        let m = &self.mem;
        let core = Json::Object(vec![
            ("num_sms".into(), c.num_sms.to_json()),
            ("max_warps_per_sm".into(), c.max_warps_per_sm.to_json()),
            ("max_ctas_per_sm".into(), c.max_ctas_per_sm.to_json()),
            ("regfile_bytes".into(), c.regfile_bytes.to_json()),
            ("smem_bytes".into(), c.smem_bytes.to_json()),
            ("schedulers_per_sm".into(), c.schedulers_per_sm.to_json()),
            ("scheduler".into(), format!("{:?}", c.scheduler).to_json()),
            ("alu_latency".into(), c.alu_latency.to_json()),
            ("sfu_latency".into(), c.sfu_latency.to_json()),
            ("sfu_init_interval".into(), c.sfu_init_interval.to_json()),
            ("smem_latency".into(), c.smem_latency.to_json()),
            ("smem_banks".into(), c.smem_banks.to_json()),
            ("ldst_queue_depth".into(), c.ldst_queue_depth.to_json()),
            ("max_cycles".into(), c.max_cycles.to_json()),
        ]);
        let mem = Json::Object(vec![
            ("line_bytes".into(), m.line_bytes.to_json()),
            ("l1_bytes".into(), m.l1_bytes.to_json()),
            ("l1_ways".into(), m.l1_ways.to_json()),
            ("l1_hit_latency".into(), m.l1_hit_latency.to_json()),
            ("l1_mshr_entries".into(), m.l1_mshr_entries.to_json()),
            ("l1_mshr_merges".into(), m.l1_mshr_merges.to_json()),
            ("l1_ports".into(), m.l1_ports.to_json()),
            ("partitions".into(), m.partitions.to_json()),
            ("l2_slice_bytes".into(), m.l2_slice_bytes.to_json()),
            ("l2_ways".into(), m.l2_ways.to_json()),
            ("l2_hit_latency".into(), m.l2_hit_latency.to_json()),
            ("l2_mshr_entries".into(), m.l2_mshr_entries.to_json()),
            ("l2_mshr_merges".into(), m.l2_mshr_merges.to_json()),
            ("l2_ports".into(), m.l2_ports.to_json()),
            ("icnt_latency".into(), m.icnt_latency.to_json()),
            (
                "icnt_flits_per_cycle".into(),
                m.icnt_flits_per_cycle.to_json(),
            ),
            (
                "dram_row_hit_latency".into(),
                m.dram_row_hit_latency.to_json(),
            ),
            (
                "dram_row_miss_latency".into(),
                m.dram_row_miss_latency.to_json(),
            ),
            ("dram_burst_cycles".into(), m.dram_burst_cycles.to_json()),
            ("dram_banks".into(), m.dram_banks.to_json()),
            ("dram_row_bytes".into(), m.dram_row_bytes.to_json()),
            ("dram_queue_depth".into(), m.dram_queue_depth.to_json()),
        ]);
        Json::Object(vec![("core".into(), core), ("mem".into(), mem)])
    }
}

fn main() {
    let h = Harness::from_env();
    let c = &h.core;
    let m = &h.mem;
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["SMs", &c.num_sms.to_string()]);
    t.row(vec!["warp size", "32"]);
    t.row(vec![
        "warp slots / SM (scheduling limit)",
        &c.max_warps_per_sm.to_string(),
    ]);
    t.row(vec![
        "CTA slots / SM (scheduling limit)",
        &c.max_ctas_per_sm.to_string(),
    ]);
    t.row(vec![
        "register file / SM (capacity limit)",
        &format!("{} KiB", c.regfile_bytes / 1024),
    ]);
    t.row(vec![
        "shared memory / SM (capacity limit)",
        &format!("{} KiB", c.smem_bytes / 1024),
    ]);
    t.row(vec![
        "warp schedulers / SM",
        &c.schedulers_per_sm.to_string(),
    ]);
    t.row(vec!["scheduler policy", &format!("{:?}", c.scheduler)]);
    t.row(vec![
        "ALU / SFU latency",
        &format!("{} / {} cycles", c.alu_latency, c.sfu_latency),
    ]);
    t.row(vec![
        "shared memory",
        &format!("{} banks, {}-cycle latency", c.smem_banks, c.smem_latency),
    ]);
    t.row(vec![
        "L1D / SM",
        &format!(
            "{} KiB, {}-way, {} B lines, {} MSHRs, {}-cycle hit",
            m.l1_bytes / 1024,
            m.l1_ways,
            m.line_bytes,
            m.l1_mshr_entries,
            m.l1_hit_latency
        ),
    ]);
    t.row(vec![
        "L2 (total)",
        &format!(
            "{} KiB in {} partitions, {}-way, {}-cycle hit",
            m.l2_slice_bytes * m.partitions / 1024,
            m.partitions,
            m.l2_ways,
            m.l2_hit_latency
        ),
    ]);
    t.row(vec![
        "interconnect",
        &format!(
            "{}-cycle latency, {} B/cycle/direction",
            m.icnt_latency,
            m.icnt_flits_per_cycle * 32
        ),
    ]);
    t.row(vec![
        "DRAM",
        &format!(
            "{} channels x {} banks, row hit/miss {}/{} cycles, {} B rows",
            m.partitions,
            m.dram_banks,
            m.dram_row_hit_latency,
            m.dram_row_miss_latency,
            m.dram_row_bytes
        ),
    ]);
    let human = format!("Table 1 — simulated GPU configuration\n\n{}", t.render());
    h.emit(
        "tab01_config",
        &human,
        &Record {
            core: c.clone(),
            mem: m.clone(),
        },
    );
}
