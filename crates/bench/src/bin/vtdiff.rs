//! `vtdiff` — the differential performance explainer.
//!
//! Compares two `vtbench` records and attributes every kernel's cycle
//! and IPC delta to CPI-stack buckets. The nine buckets partition
//! SM-cycles exactly (`DESIGN.md §15`), so the decomposition is
//! exhaustive: the bucket deltas sum to the total SM-cycle delta with
//! nothing left over, and the report says which bottleneck — memory
//! stalls, the scheduling limit, end-of-kernel drain, … — the time went
//! to or came from.
//!
//! ```text
//! cargo run --release -p vt-bench --bin vtbench -- --out OLD.json
//! # ...change something...
//! cargo run --release -p vt-bench --bin vtbench -- --out NEW.json
//! cargo run --release -p vt-bench --bin vtdiff -- OLD.json NEW.json
//! ```
//!
//! Exit codes: 0 success, 1 `--assert-zero` found a difference, 2 usage
//! error or incomparable records.

use std::process::ExitCode;
use vt_bench::cli;
use vt_bench::cpi::Attribution;
use vt_bench::hotspot::{self, ProfileRecord};
use vt_bench::record::{self, KernelEntry};
use vt_bench::Table;
use vt_json::Json;

const USAGE: &str = "\
usage: vtdiff OLD.json NEW.json [options]
       vtdiff --pc OLD.hotspots.json NEW.hotspots.json [options]

Compares two vtbench records and attributes each kernel's cycle delta
to CPI-stack buckets (issued / stall_* / empty_*). The buckets
partition SM-cycles, so attribution is exhaustive by construction.

With --pc the inputs are per-PC hotspot records (written by
`vtprof --profile`) and the report ranks per-instruction SM-cycle
deltas instead: which instructions gained or lost issue and stall-blame
cycles between the two runs.

options:
  --pc             diff per-PC hotspot records instead of vtbench records
  --top N          show at most N moved buckets per kernel, or N changed
                   instructions with --pc (default 3, --pc default 10)
  --json           machine-readable report on stdout
  --assert-zero    exit 1 unless every kernel's CPI stack (or with --pc,
                   every instruction's profile) is identical
                   (determinism smoke: two runs of the same build must
                   produce bit-identical stacks)
  -h, --help       this help

exit codes: 0 success, 1 --assert-zero found a difference, 2 usage
error or incomparable records";

struct Opts {
    old: String,
    new: String,
    pc: bool,
    top: Option<usize>,
    json: bool,
    assert_zero: bool,
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut paths = Vec::new();
    let mut pc = false;
    let mut top = None;
    let mut json = false;
    let mut assert_zero = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--pc" => pc = true,
            "--json" => json = true,
            "--assert-zero" => assert_zero = true,
            "--top" => {
                top = Some(
                    args.next()
                        .ok_or("--top needs a value")?
                        .parse()
                        .map_err(|e| format!("--top: {e}"))?,
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            path => paths.push(path.to_string()),
        }
    }
    let [old, new] = <[String; 2]>::try_from(paths)
        .map_err(|p| format!("expected OLD.json NEW.json, got {} paths", p.len()))?;
    Ok(Some(Opts {
        old,
        new,
        pc,
        top,
        json,
        assert_zero,
    }))
}

/// One kernel's diff: the matched old/new entries and the attribution.
struct KernelDiff<'a> {
    old: &'a KernelEntry,
    new: &'a KernelEntry,
    attr: Attribution,
}

impl KernelDiff<'_> {
    fn changed(&self) -> bool {
        self.attr.ranked.iter().any(|&(_, d)| d != 0)
    }
}

fn match_kernels<'a>(
    old: &'a [KernelEntry],
    new: &'a [KernelEntry],
) -> Result<Vec<KernelDiff<'a>>, String> {
    let diffs: Vec<KernelDiff> = old
        .iter()
        .filter_map(|o| {
            new.iter().find(|n| n.name == o.name).map(|n| KernelDiff {
                old: o,
                new: n,
                attr: Attribution::between(&o.cpi, &n.cpi),
            })
        })
        .collect();
    if diffs.is_empty() {
        return Err("no kernel appears in both records".to_string());
    }
    Ok(diffs)
}

/// The ranked per-kernel table: cycles, IPC, and the top moved buckets
/// with their share of the kernel's total SM-cycle movement.
fn render_table(diffs: &[KernelDiff], top: usize) -> String {
    let mut t = Table::new(vec![
        "kernel",
        "old cyc",
        "new cyc",
        "delta",
        "ipc",
        "attributed to",
    ]);
    for d in diffs {
        let moved: Vec<String> = d
            .attr
            .ranked
            .iter()
            .filter(|&&(_, v)| v != 0)
            .take(top)
            .map(|&(b, v)| format!("{b} {v:+}"))
            .collect();
        t.row(vec![
            d.old.name.clone(),
            format!("{}", d.old.cycles),
            format!("{}", d.new.cycles),
            format!("{:+}", d.new.cycles as i64 - d.old.cycles as i64),
            format!("{:.3} -> {:.3}", d.old.ipc, d.new.ipc),
            if moved.is_empty() {
                "unchanged".to_string()
            } else {
                moved.join(", ")
            },
        ]);
    }
    t.render()
}

/// The aggregate attribution across all matched kernels.
fn aggregate(diffs: &[KernelDiff]) -> Vec<(&'static str, i64)> {
    let mut sums: Vec<(&'static str, i64)> = diffs[0]
        .attr
        .ranked
        .iter()
        .map(|&(b, _)| (b, 0i64))
        .collect();
    sums.sort_by_key(|&(b, _)| {
        vt_bench::cpi::BUCKET_NAMES
            .iter()
            .position(|&n| n == b)
            .unwrap_or(usize::MAX)
    });
    for d in diffs {
        for &(b, v) in &d.attr.ranked {
            if let Some(s) = sums.iter_mut().find(|(n, _)| *n == b) {
                s.1 += v;
            }
        }
    }
    sums.sort_by_key(|&(_, v)| std::cmp::Reverse(v.unsigned_abs()));
    sums
}

fn diff_json(diffs: &[KernelDiff]) -> Json {
    let kernels: Vec<Json> = diffs
        .iter()
        .map(|d| {
            Json::object(vec![
                ("kernel".into(), Json::Str(d.old.name.clone())),
                ("old_cycles".into(), Json::UInt(d.old.cycles)),
                ("new_cycles".into(), Json::UInt(d.new.cycles)),
                ("old_ipc".into(), Json::Float(d.old.ipc)),
                ("new_ipc".into(), Json::Float(d.new.ipc)),
                ("sm_cycle_delta".into(), Json::Int(d.attr.delta)),
                ("coverage_pct".into(), Json::Float(d.attr.coverage())),
                (
                    "buckets".into(),
                    Json::object(
                        d.attr
                            .ranked
                            .iter()
                            .map(|&(b, v)| (b.to_string(), Json::Int(v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let agg = aggregate(diffs);
    Json::object(vec![
        ("kernels".into(), Json::Array(kernels)),
        (
            "aggregate".into(),
            Json::object(
                agg.iter()
                    .map(|&(b, v)| (b.to_string(), Json::Int(v)))
                    .collect(),
            ),
        ),
        (
            "changed".into(),
            Json::Bool(diffs.iter().any(KernelDiff::changed)),
        ),
    ])
}

/// The `--pc` report: per-instruction SM-cycle deltas between two
/// hotspot records, ranked by magnitude.
fn run_pc(o: &Opts) -> Result<bool, String> {
    let top = o.top.unwrap_or(10);
    let old = ProfileRecord::load(&o.old)?;
    let new = ProfileRecord::load(&o.new)?;
    let ranked = hotspot::rank_deltas(&old, &new)?;
    let total: i64 = ranked.iter().map(|d| d.delta).sum();

    if o.json {
        let pcs: Vec<Json> = ranked
            .iter()
            .map(|d| {
                Json::object(vec![
                    ("pc".into(), Json::UInt(d.pc as u64)),
                    ("op".into(), Json::Str(d.op.clone())),
                    ("delta".into(), Json::Int(d.delta)),
                    (
                        "classes".into(),
                        Json::object(
                            d.classes
                                .iter()
                                .map(|&(n, v)| (n.to_string(), Json::Int(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        println!(
            "{}",
            Json::object(vec![
                ("kernel".into(), Json::Str(old.kernel.clone())),
                ("arch".into(), Json::Str(old.arch.clone())),
                ("old_cycles".into(), Json::UInt(old.cycles)),
                ("new_cycles".into(), Json::UInt(new.cycles)),
                ("sm_cycle_delta".into(), Json::Int(total)),
                ("changed_pcs".into(), Json::UInt(ranked.len() as u64)),
                ("pcs".into(), Json::Array(pcs)),
            ])
            .pretty()
        );
    } else if ranked.is_empty() {
        println!(
            "{} [{}]: no per-PC difference: the profiles are identical",
            old.kernel, old.arch
        );
    } else {
        let mut t = Table::new(vec!["pc", "op", "delta", "attributed to"]);
        for d in ranked.iter().take(top) {
            let moved: Vec<String> = d
                .classes
                .iter()
                .map(|&(n, v)| format!("{n} {v:+}"))
                .collect();
            t.row(vec![
                format!("@{}", d.pc),
                d.op.clone(),
                format!("{:+}", d.delta),
                moved.join(", "),
            ]);
        }
        println!("{}", t.render());
        println!(
            "{} [{}]: {} cycles -> {}, {:+} attributed SM-cycles across {} changed \
             instruction(s){}",
            old.kernel,
            old.arch,
            old.cycles,
            new.cycles,
            total,
            ranked.len(),
            if ranked.len() > top {
                format!(" (top {top} shown)")
            } else {
                String::new()
            }
        );
    }
    if o.assert_zero && !ranked.is_empty() {
        eprintln!("vtdiff: --assert-zero: the profiles differ");
        return Ok(false);
    }
    Ok(true)
}

fn run(o: &Opts) -> Result<bool, String> {
    if o.pc {
        return run_pc(o);
    }
    let top = o.top.unwrap_or(3);
    let old = record::load(&o.old)?;
    let new = record::load(&o.new)?;
    let (fp_old, fp_new) = (record::fingerprint(&old)?, record::fingerprint(&new)?);
    if fp_old != fp_new {
        return Err(format!(
            "records are not comparable:\n  {}: {fp_old}\n  {}: {fp_new}",
            o.old, o.new
        ));
    }
    let old_kernels = record::kernels(&old)?;
    let new_kernels = record::kernels(&new)?;
    let diffs = match_kernels(&old_kernels, &new_kernels)?;

    if o.json {
        println!("{}", diff_json(&diffs).pretty());
    } else {
        println!("{}", render_table(&diffs, top));
        let changed: Vec<&KernelDiff> = diffs.iter().filter(|d| d.changed()).collect();
        if changed.is_empty() {
            println!("no CPI-stack difference: the runs are cycle-identical");
        } else {
            let total: i64 = changed.iter().map(|d| d.attr.delta).sum();
            let agg = aggregate(&diffs);
            let moved: Vec<String> = agg
                .iter()
                .filter(|&&(_, v)| v != 0)
                .take(top)
                .map(|&(b, v)| format!("{b} {v:+}"))
                .collect();
            println!(
                "aggregate: {total:+} SM-cycles across {} changed kernel(s), \
                 100% attributed: {}",
                changed.len(),
                moved.join(", ")
            );
        }
    }
    if o.assert_zero && diffs.iter().any(|d| d.changed()) {
        eprintln!("vtdiff: --assert-zero: the records differ");
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let opts = match cli::parsed("vtdiff", USAGE, parse_args()) {
        Ok(o) => o,
        Err(code) => return cli::code(code),
    };
    cli::code(cli::finish("vtdiff", run(&opts)))
}
