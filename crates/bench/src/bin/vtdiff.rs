//! `vtdiff` — the differential performance explainer.
//!
//! Compares two `vtbench` records and attributes every kernel's cycle
//! and IPC delta to CPI-stack buckets. The nine buckets partition
//! SM-cycles exactly (`DESIGN.md §15`), so the decomposition is
//! exhaustive: the bucket deltas sum to the total SM-cycle delta with
//! nothing left over, and the report says which bottleneck — memory
//! stalls, the scheduling limit, end-of-kernel drain, … — the time went
//! to or came from.
//!
//! ```text
//! cargo run --release -p vt-bench --bin vtbench -- --out OLD.json
//! # ...change something...
//! cargo run --release -p vt-bench --bin vtbench -- --out NEW.json
//! cargo run --release -p vt-bench --bin vtdiff -- OLD.json NEW.json
//! ```
//!
//! Exit codes: 0 success, 1 `--assert-zero` found a difference, 2 usage
//! error or incomparable records.

use std::process::ExitCode;
use vt_bench::cpi::Attribution;
use vt_bench::record::{self, KernelEntry};
use vt_bench::Table;
use vt_json::Json;

const USAGE: &str = "\
usage: vtdiff OLD.json NEW.json [options]

Compares two vtbench records and attributes each kernel's cycle delta
to CPI-stack buckets (issued / stall_* / empty_*). The buckets
partition SM-cycles, so attribution is exhaustive by construction.

options:
  --top N          show at most N moved buckets per kernel (default 3)
  --json           machine-readable report on stdout
  --assert-zero    exit 1 unless every kernel's CPI stack is identical
                   (determinism smoke: two runs of the same build must
                   produce bit-identical stacks)
  -h, --help       this help

exit codes: 0 success, 1 --assert-zero found a difference, 2 usage
error or incomparable records";

struct Opts {
    old: String,
    new: String,
    top: usize,
    json: bool,
    assert_zero: bool,
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut paths = Vec::new();
    let mut top = 3usize;
    let mut json = false;
    let mut assert_zero = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--json" => json = true,
            "--assert-zero" => assert_zero = true,
            "--top" => {
                top = args
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            path => paths.push(path.to_string()),
        }
    }
    let [old, new] = <[String; 2]>::try_from(paths)
        .map_err(|p| format!("expected OLD.json NEW.json, got {} paths", p.len()))?;
    Ok(Some(Opts {
        old,
        new,
        top,
        json,
        assert_zero,
    }))
}

/// One kernel's diff: the matched old/new entries and the attribution.
struct KernelDiff<'a> {
    old: &'a KernelEntry,
    new: &'a KernelEntry,
    attr: Attribution,
}

impl KernelDiff<'_> {
    fn changed(&self) -> bool {
        self.attr.ranked.iter().any(|&(_, d)| d != 0)
    }
}

fn match_kernels<'a>(
    old: &'a [KernelEntry],
    new: &'a [KernelEntry],
) -> Result<Vec<KernelDiff<'a>>, String> {
    let diffs: Vec<KernelDiff> = old
        .iter()
        .filter_map(|o| {
            new.iter().find(|n| n.name == o.name).map(|n| KernelDiff {
                old: o,
                new: n,
                attr: Attribution::between(&o.cpi, &n.cpi),
            })
        })
        .collect();
    if diffs.is_empty() {
        return Err("no kernel appears in both records".to_string());
    }
    Ok(diffs)
}

/// The ranked per-kernel table: cycles, IPC, and the top moved buckets
/// with their share of the kernel's total SM-cycle movement.
fn render_table(diffs: &[KernelDiff], top: usize) -> String {
    let mut t = Table::new(vec![
        "kernel",
        "old cyc",
        "new cyc",
        "delta",
        "ipc",
        "attributed to",
    ]);
    for d in diffs {
        let moved: Vec<String> = d
            .attr
            .ranked
            .iter()
            .filter(|&&(_, v)| v != 0)
            .take(top)
            .map(|&(b, v)| format!("{b} {v:+}"))
            .collect();
        t.row(vec![
            d.old.name.clone(),
            format!("{}", d.old.cycles),
            format!("{}", d.new.cycles),
            format!("{:+}", d.new.cycles as i64 - d.old.cycles as i64),
            format!("{:.3} -> {:.3}", d.old.ipc, d.new.ipc),
            if moved.is_empty() {
                "unchanged".to_string()
            } else {
                moved.join(", ")
            },
        ]);
    }
    t.render()
}

/// The aggregate attribution across all matched kernels.
fn aggregate(diffs: &[KernelDiff]) -> Vec<(&'static str, i64)> {
    let mut sums: Vec<(&'static str, i64)> = diffs[0]
        .attr
        .ranked
        .iter()
        .map(|&(b, _)| (b, 0i64))
        .collect();
    sums.sort_by_key(|&(b, _)| {
        vt_bench::cpi::BUCKET_NAMES
            .iter()
            .position(|&n| n == b)
            .unwrap_or(usize::MAX)
    });
    for d in diffs {
        for &(b, v) in &d.attr.ranked {
            if let Some(s) = sums.iter_mut().find(|(n, _)| *n == b) {
                s.1 += v;
            }
        }
    }
    sums.sort_by_key(|&(_, v)| std::cmp::Reverse(v.unsigned_abs()));
    sums
}

fn diff_json(diffs: &[KernelDiff]) -> Json {
    let kernels: Vec<Json> = diffs
        .iter()
        .map(|d| {
            Json::object(vec![
                ("kernel".into(), Json::Str(d.old.name.clone())),
                ("old_cycles".into(), Json::UInt(d.old.cycles)),
                ("new_cycles".into(), Json::UInt(d.new.cycles)),
                ("old_ipc".into(), Json::Float(d.old.ipc)),
                ("new_ipc".into(), Json::Float(d.new.ipc)),
                ("sm_cycle_delta".into(), Json::Int(d.attr.delta)),
                ("coverage_pct".into(), Json::Float(d.attr.coverage())),
                (
                    "buckets".into(),
                    Json::object(
                        d.attr
                            .ranked
                            .iter()
                            .map(|&(b, v)| (b.to_string(), Json::Int(v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let agg = aggregate(diffs);
    Json::object(vec![
        ("kernels".into(), Json::Array(kernels)),
        (
            "aggregate".into(),
            Json::object(
                agg.iter()
                    .map(|&(b, v)| (b.to_string(), Json::Int(v)))
                    .collect(),
            ),
        ),
        (
            "changed".into(),
            Json::Bool(diffs.iter().any(KernelDiff::changed)),
        ),
    ])
}

fn run(o: &Opts) -> Result<bool, String> {
    let old = record::load(&o.old)?;
    let new = record::load(&o.new)?;
    let (fp_old, fp_new) = (record::fingerprint(&old)?, record::fingerprint(&new)?);
    if fp_old != fp_new {
        return Err(format!(
            "records are not comparable:\n  {}: {fp_old}\n  {}: {fp_new}",
            o.old, o.new
        ));
    }
    let old_kernels = record::kernels(&old)?;
    let new_kernels = record::kernels(&new)?;
    let diffs = match_kernels(&old_kernels, &new_kernels)?;

    if o.json {
        println!("{}", diff_json(&diffs).pretty());
    } else {
        println!("{}", render_table(&diffs, o.top));
        let changed: Vec<&KernelDiff> = diffs.iter().filter(|d| d.changed()).collect();
        if changed.is_empty() {
            println!("no CPI-stack difference: the runs are cycle-identical");
        } else {
            let total: i64 = changed.iter().map(|d| d.attr.delta).sum();
            let agg = aggregate(&diffs);
            let moved: Vec<String> = agg
                .iter()
                .filter(|&&(_, v)| v != 0)
                .take(o.top)
                .map(|&(b, v)| format!("{b} {v:+}"))
                .collect();
            println!(
                "aggregate: {total:+} SM-cycles across {} changed kernel(s), \
                 100% attributed: {}",
                changed.len(),
                moved.join(", ")
            );
        }
    }
    if o.assert_zero && diffs.iter().any(|d| d.changed()) {
        eprintln!("vtdiff: --assert-zero: the records differ");
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vtdiff: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("vtdiff: {e}");
            ExitCode::from(2)
        }
    }
}
