//! `vtsweep` — parallel sweep runner for the experiment grid.
//!
//! Runs the suite-kernels × architectures grid on the deterministic
//! worker pool, either fanning whole grid cells across threads
//! (`--engine grid`, the default) or sharding the SMs of each run
//! (`--engine sm`). Results are bit-identical to a sequential run at any
//! thread count; `--check` verifies exactly that.
//!
//! Long runs can be bounded and sliced: `--budget` / `--deadline` stop
//! each cell after a cycle or wall-clock allowance, `--checkpoint FILE`
//! saves the truncated simulator state, and `--resume FILE` continues it
//! bit-identically. Budgeted runs also install a Ctrl-C handler that
//! cancels the active simulation at the next cycle boundary instead of
//! killing the process.
//!
//! ```text
//! cargo run --release -p vt-bench --bin vtsweep                  # full grid
//! cargo run --release -p vt-bench --bin vtsweep -- bfs spmv --threads 4
//! cargo run --release -p vt-bench --bin vtsweep -- --threads 2 --check
//! cargo run --release -p vt-bench --bin vtsweep -- bfs --arch vt \
//!     --budget 5000 --checkpoint bfs.ckpt                        # slice 1
//! cargo run --release -p vt-bench --bin vtsweep -- bfs --arch vt \
//!     --resume bfs.ckpt                                          # finish
//! ```
//!
//! Exit codes: 0 success, 1 a `--check` mismatch, 2 usage or simulation
//! error, 130 cancelled by Ctrl-C.

use std::cell::RefCell;
use std::io::IsTerminal;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use vt_bench::cli;
use vt_core::{
    default_threads, Architecture, CancelToken, Checkpoint, GpuConfig, MemSwapParams, Pool,
    Progress, Report, RunBudget, RunRequest, RunStats, Session, SessionOutcome, SimError,
    StopReason, Truncation,
};
use vt_json::Json;
use vt_workloads::{suite, Scale, Workload};

const USAGE: &str = "\
usage: vtsweep [KERNEL...] [options]

Runs the kernels x architectures grid on a deterministic worker pool and
prints one stats line (or JSON record) per cell. Any thread count gives
bit-identical statistics; threading only changes wall-clock time.

options:
  --arch LIST                        comma-separated subset of
                                     baseline,vt,ideal,memswap or `all`
                                     (default all)
  --scale test|small|paper           problem scale (default test)
  --sms N                            number of SMs (default config's 15)
  --threads N                        worker threads (default $VT_THREADS,
                                     else the machine's parallelism;
                                     1 = fully sequential)
  --engine grid|sm                   what to parallelise: independent grid
                                     cells (default) or the SMs inside
                                     each simulation
  --budget CYCLES                    stop each cell after CYCLES simulated
                                     cycles, reporting partial stats
                                     (implies the sm engine)
  --deadline SECS                    stop each cell after SECS wall-clock
                                     seconds (implies the sm engine;
                                     partial stats are not deterministic)
  --checkpoint FILE                  write the truncated cell's state to
                                     FILE (requires one kernel, one arch)
  --resume FILE                      continue a checkpointed run from FILE
                                     (requires one kernel, one arch)
  --progress                         live stderr ticker (cycle/budget,
                                     windowed IPC, resident CTAs) for each
                                     cell (implies the sm engine; automatic
                                     when stderr is a terminal and the sm
                                     engine is active)
  --check                            re-run the grid single-threaded and
                                     fail (exit 1) unless every cell is
                                     bit-identical
  --json                             machine-readable results on stdout
  --list                             list suite kernel names and exit
  -h, --help                         this help";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    Grid,
    Sm,
}

struct Opts {
    kernels: Vec<String>,
    archs: Vec<Architecture>,
    scale: Scale,
    sms: Option<u32>,
    threads: usize,
    engine: Engine,
    budget: Option<u64>,
    deadline: Option<Duration>,
    checkpoint: Option<String>,
    resume: Option<String>,
    progress: bool,
    check: bool,
    json: bool,
}

impl Opts {
    /// Whether this invocation runs cells through a budgeted/cancellable
    /// [`Session`] (as opposed to fanning completed cells across the
    /// pool).
    fn uses_sessions(&self) -> bool {
        self.engine == Engine::Sm
            || self.budget.is_some()
            || self.deadline.is_some()
            || self.resume.is_some()
            || self.progress
    }

    /// Whether cells show a live stderr ticker: `--progress` forces it,
    /// and a session run on an interactive stderr gets it automatically.
    fn wants_ticker(&self) -> bool {
        self.progress || (self.uses_sessions() && std::io::stderr().is_terminal())
    }

    fn run_budget(&self) -> RunBudget {
        let mut b = RunBudget::unlimited();
        if let Some(cycles) = self.budget {
            b = b.with_max_cycles(cycles);
        }
        if let Some(deadline) = self.deadline {
            b = b.with_deadline(deadline);
        }
        b
    }
}

fn parse_archs(list: &str) -> Result<Vec<Architecture>, String> {
    if list == "all" {
        return Ok(all_archs());
    }
    list.split(',')
        .map(|a| match a.trim() {
            "baseline" => Ok(Architecture::Baseline),
            "vt" => Ok(Architecture::virtual_thread()),
            "ideal" => Ok(Architecture::Ideal),
            "memswap" => Ok(Architecture::MemSwap(MemSwapParams::default())),
            other => Err(format!("unknown architecture `{other}`")),
        })
        .collect()
}

fn all_archs() -> Vec<Architecture> {
    vec![
        Architecture::Baseline,
        Architecture::virtual_thread(),
        Architecture::Ideal,
        Architecture::MemSwap(MemSwapParams::default()),
    ]
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut o = Opts {
        kernels: Vec::new(),
        archs: all_archs(),
        scale: Scale::test(),
        sms: None,
        threads: default_threads(),
        engine: Engine::Grid,
        budget: None,
        deadline: None,
        checkpoint: None,
        resume: None,
        progress: false,
        check: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    let mut list = false;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => list = true,
            "--check" => o.check = true,
            "--json" => o.json = true,
            "--arch" => o.archs = parse_archs(&value("--arch")?)?,
            "--scale" => {
                o.scale = match value("--scale")?.as_str() {
                    "test" => Scale::test(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--sms" => {
                o.sms = Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?);
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                o.threads = if n == 0 { default_threads() } else { n };
            }
            "--engine" => {
                o.engine = match value("--engine")?.as_str() {
                    "grid" => Engine::Grid,
                    "sm" => Engine::Sm,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--budget" => {
                let n: u64 = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                if n == 0 {
                    return Err("--budget must be at least 1 cycle".to_string());
                }
                o.budget = Some(n);
            }
            "--deadline" => {
                let s: f64 = value("--deadline")?
                    .parse()
                    .map_err(|e| format!("--deadline: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--deadline must be positive seconds".to_string());
                }
                o.deadline = Some(Duration::from_secs_f64(s));
            }
            "--checkpoint" => o.checkpoint = Some(value("--checkpoint")?),
            "--resume" => o.resume = Some(value("--resume")?),
            "--progress" => o.progress = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            name => o.kernels.push(name.to_string()),
        }
    }
    if list {
        for w in suite(&Scale::test()) {
            println!("{}", w.name);
        }
        return Ok(None);
    }
    Ok(Some(o))
}

fn select<'a>(all: &'a [Workload], names: &[String]) -> Result<Vec<&'a Workload>, String> {
    if names.is_empty() {
        return Ok(all.iter().collect());
    }
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|w| w.name == n)
                .ok_or(format!("unknown kernel `{n}` (try --list)"))
        })
        .collect()
}

// ---------------------------------------------------------------- Ctrl-C

/// The token the SIGINT handler flips; installed once per process.
static CANCEL: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    // Only an atomic store — the engine notices at the next cycle.
    if let Some(token) = CANCEL.get() {
        token.cancel();
    }
}

/// Routes SIGINT to `token` so Ctrl-C truncates the active simulation
/// (with a checkpoint) instead of killing the process.
fn install_ctrl_c(token: CancelToken) {
    if CANCEL.set(token).is_err() {
        return; // already installed
    }
    vt_par::install_sigint(on_sigint);
}

// ------------------------------------------------------------------ grid

/// One grid cell's outcome: completed, or truncated by the budget /
/// Ctrl-C with partial stats and a resumable checkpoint.
enum Cell {
    Done(Box<Report>),
    Cut {
        kernel: String,
        arch: Architecture,
        truncation: Box<Truncation>,
    },
}

impl Cell {
    fn stats(&self) -> &RunStats {
        match self {
            Cell::Done(r) => &r.stats,
            Cell::Cut { truncation, .. } => &truncation.stats,
        }
    }
}

fn reason_label(reason: StopReason) -> &'static str {
    match reason {
        StopReason::CycleBudget => "cycle budget",
        StopReason::Deadline => "deadline",
        StopReason::Cancelled => "cancelled",
    }
}

fn base_config(opts: &Opts) -> GpuConfig {
    let mut cfg = GpuConfig::default();
    if let Some(sms) = opts.sms {
        cfg.core.num_sms = sms.max(1);
    }
    cfg
}

/// Cycles between ticker updates; coarse enough that the stderr writes
/// are invisible in the wall-clock profile.
const TICK_EVERY: u64 = 4096;

/// Runs the full grid, returning cells in kernel-major order.
fn run_grid(
    opts: &Opts,
    picked: &[&Workload],
    threads: usize,
    resume: Option<&Checkpoint>,
    cancel: Option<&CancelToken>,
    ticker: bool,
) -> Vec<Result<Cell, SimError>> {
    let cfg = base_config(opts);
    if !opts.uses_sessions() {
        let kernels: Vec<_> = picked.iter().map(|w| w.kernel.clone()).collect();
        let session = Session::new(cfg).with_pool(Pool::new(threads));
        return session
            .sweep(&opts.archs, &kernels)
            .into_iter()
            .map(|r| r.map(|r| Cell::Done(Box::new(r))))
            .collect();
    }

    // Budgeted / cancellable / SM-parallel path: one session per
    // architecture, each cell run to its budget. The ticker label is
    // shared with every session's callback and rewritten per cell.
    let label: Rc<RefCell<String>> = Rc::default();
    let mut sessions: Vec<Session> = opts
        .archs
        .iter()
        .map(|&arch| {
            let mut s = Session::new(GpuConfig {
                arch,
                ..cfg.clone()
            })
            .with_budget(opts.run_budget());
            if threads > 1 {
                s = s.with_pool(Pool::new(threads));
            }
            if let Some(token) = cancel {
                s = s.with_cancel(token.clone());
            }
            if ticker {
                let label = Rc::clone(&label);
                s = s.with_progress(TICK_EVERY, move |p: &Progress| {
                    let budget = p.budget_cycles.map_or(String::new(), |b| format!("/{b}"));
                    eprint!(
                        "\r\x1b[K  {} cycle {}{}  ipc {:.2} (window {:.2})  resident CTAs {}",
                        label.borrow(),
                        p.cycle,
                        budget,
                        p.ipc,
                        p.window_ipc,
                        p.resident_ctas
                    );
                });
            }
            s
        })
        .collect();
    let mut out = Vec::new();
    for w in picked {
        for (ai, &arch) in opts.archs.iter().enumerate() {
            if ticker {
                *label.borrow_mut() = format!("{} [{}]", w.name, arch.label());
            }
            // After a Ctrl-C every remaining cell truncates after one
            // cycle, so the grid still finishes promptly with one
            // (cheap) truncated record per cell.
            let mut req = RunRequest::kernel(&w.kernel);
            if let Some(ckpt) = resume {
                req = req.resume_from(ckpt);
            }
            let cell = sessions[ai].run(req).map(|outcome| match outcome {
                SessionOutcome::Completed(mut reports) => Cell::Done(Box::new(reports.remove(0))),
                SessionOutcome::Truncated { truncation, .. } => Cell::Cut {
                    kernel: w.name.to_string(),
                    arch,
                    truncation,
                },
            });
            if ticker {
                eprint!("\r\x1b[K"); // clear the cell's last ticker line
            }
            out.push(cell);
        }
    }
    out
}

// ----------------------------------------------------------------- check

/// Names the `RunStats` fields that differ, for a readable `--check`
/// report.
fn diff_stats(got: &RunStats, want: &RunStats) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = |name: &str, a: String, b: String| {
        if a != b {
            out.push(format!("{name}: {a} != {b}"));
        }
    };
    field(
        "cycles",
        format!("{}", got.cycles),
        format!("{}", want.cycles),
    );
    field(
        "warp_instrs",
        format!("{}", got.warp_instrs),
        format!("{}", want.warp_instrs),
    );
    field(
        "thread_instrs",
        format!("{}", got.thread_instrs),
        format!("{}", want.thread_instrs),
    );
    field(
        "issue_cycles",
        format!("{}", got.issue_cycles),
        format!("{}", want.issue_cycles),
    );
    field(
        "idle",
        format!("{:?}", got.idle),
        format!("{:?}", want.idle),
    );
    field(
        "occupancy",
        format!("{:?}", got.occupancy),
        format!("{:?}", want.occupancy),
    );
    field(
        "swaps",
        format!("{:?}", got.swaps),
        format!("{:?}", want.swaps),
    );
    field("mem", format!("{:?}", got.mem), format!("{:?}", want.mem));
    if out.is_empty() && got != want {
        out.push("other fields differ (histograms/gauges/metric series)".to_string());
    }
    out
}

fn cell_json(cell: &Cell) -> Json {
    let (kernel, arch, truncated) = match cell {
        Cell::Done(r) => (r.kernel.as_str(), r.arch, None),
        Cell::Cut {
            kernel,
            arch,
            truncation,
        } => (kernel.as_str(), *arch, Some(truncation.reason)),
    };
    let s = cell.stats();
    let mut fields = vec![
        ("kernel".into(), Json::Str(kernel.to_string())),
        ("arch".into(), Json::Str(arch.label().to_string())),
        ("truncated".into(), Json::Bool(truncated.is_some())),
        ("cycles".into(), Json::UInt(s.cycles)),
        ("ipc".into(), Json::Float(s.ipc())),
        ("warp_instrs".into(), Json::UInt(s.warp_instrs)),
        ("ctas_completed".into(), Json::UInt(s.ctas_completed)),
        ("issue_cycles".into(), Json::UInt(s.issue_cycles)),
        ("idle_cycles".into(), Json::UInt(s.idle.total())),
        ("swaps_out".into(), Json::UInt(s.swaps.swaps_out)),
        ("swaps_in".into(), Json::UInt(s.swaps.swaps_in)),
        ("l1_accesses".into(), Json::UInt(s.mem.l1_accesses)),
        ("l2_accesses".into(), Json::UInt(s.mem.l2_accesses)),
        ("dram_reads".into(), Json::UInt(s.mem.dram_reads)),
    ];
    if let Some(reason) = truncated {
        fields.push((
            "stop_reason".into(),
            Json::Str(reason_label(reason).to_string()),
        ));
    }
    Json::object(fields)
}

fn main() -> ExitCode {
    let opts = match cli::parsed("vtsweep", USAGE, parse_args()) {
        Ok(o) => o,
        Err(code) => return cli::code(code),
    };
    let all = suite(&opts.scale);
    let picked = match select(&all, &opts.kernels) {
        Ok(p) => p,
        Err(e) => return cli::code(cli::fail("vtsweep", &e)),
    };
    if (opts.checkpoint.is_some() || opts.resume.is_some())
        && (picked.len() != 1 || opts.archs.len() != 1)
    {
        return cli::code(cli::fail(
            "vtsweep",
            &format!(
                "--checkpoint/--resume need exactly one kernel and one \
                 --arch (got {} kernel(s), {} arch(s))",
                picked.len(),
                opts.archs.len()
            ),
        ));
    }
    let resume = match &opts.resume {
        Some(path) => {
            let parsed = std::fs::read_to_string(path)
                .map_err(|e| format!("{path}: {e}"))
                .and_then(|text| Checkpoint::parse(&text).map_err(|e| format!("{path}: {e}")));
            match parsed {
                Ok(c) => Some(c),
                Err(e) => return cli::code(cli::fail("vtsweep", &format!("--resume {e}"))),
            }
        }
        None => None,
    };

    // In the session path, Ctrl-C cancels the running cell cooperatively
    // (yielding partial stats and a checkpoint) instead of killing us.
    let cancel = opts.uses_sessions().then(|| {
        let token = CancelToken::new();
        install_ctrl_c(token.clone());
        token
    });

    let started = Instant::now();
    let grid = run_grid(
        &opts,
        &picked,
        opts.threads,
        resume.as_ref(),
        cancel.as_ref(),
        opts.wants_ticker(),
    );
    let elapsed = started.elapsed();

    let mut records = Vec::new();
    let mut sim_failed = false;
    let mut cancelled = false;
    for cell in &grid {
        match cell {
            Ok(c) => {
                if !opts.json {
                    match c {
                        Cell::Done(r) => println!(
                            "{:<16} [{:<8}] {:>10} cycles  ipc {:>6.2}  swaps {}",
                            r.kernel,
                            r.arch.label(),
                            r.stats.cycles,
                            r.stats.ipc(),
                            r.stats.swaps.swaps_out,
                        ),
                        Cell::Cut {
                            kernel,
                            arch,
                            truncation,
                        } => println!(
                            "{:<16} [{:<8}] {:>10} cycles  TRUNCATED: {}",
                            kernel,
                            arch.label(),
                            truncation.stats.cycles,
                            reason_label(truncation.reason),
                        ),
                    }
                }
                if let Cell::Cut { truncation, .. } = c {
                    cancelled |= truncation.reason == StopReason::Cancelled;
                    if let Some(path) = &opts.checkpoint {
                        if let Err(e) = std::fs::write(path, truncation.checkpoint.to_text()) {
                            eprintln!("vtsweep: --checkpoint {path}: {e}");
                            sim_failed = true;
                        } else if !opts.json {
                            println!("checkpoint written to {path} (resume with --resume {path})");
                        }
                    }
                }
                records.push(cell_json(c));
            }
            Err(e) => {
                eprintln!("vtsweep: {e}");
                sim_failed = true;
            }
        }
    }
    if sim_failed {
        return cli::code(cli::EXIT_ERROR);
    }
    if opts.json {
        println!("{}", Json::Array(records).pretty());
    } else {
        println!(
            "{} cells, {} thread(s), engine {}, {:.2}s",
            grid.len(),
            opts.threads,
            if opts.uses_sessions() { "sm" } else { "grid" },
            elapsed.as_secs_f64()
        );
    }

    if opts.check {
        let reference = run_grid(&opts, &picked, 1, resume.as_ref(), None, false);
        let mut mismatches = 0usize;
        for (got, want) in grid.iter().zip(&reference) {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    let image_differs = match (g, w) {
                        (Cell::Done(g), Cell::Done(w)) => g.mem_image != w.mem_image,
                        // Truncated cells carry no final image; their
                        // checkpoints must instead be textually identical.
                        (Cell::Cut { truncation: g, .. }, Cell::Cut { truncation: w, .. }) => {
                            g.checkpoint.to_text() != w.checkpoint.to_text()
                        }
                        _ => true,
                    };
                    if g.stats() != w.stats() || image_differs {
                        mismatches += 1;
                        eprintln!("vtsweep: MISMATCH vs sequential:");
                        for line in diff_stats(g.stats(), w.stats()) {
                            eprintln!("  {line}");
                        }
                        if image_differs {
                            eprintln!("  final memory image / checkpoint differs");
                        }
                    }
                }
                (Err(g), Err(w)) if format!("{g}") == format!("{w}") => {}
                _ => mismatches += 1,
            }
        }
        if mismatches > 0 {
            eprintln!(
                "vtsweep: --check failed: {mismatches} cell(s) diverge from the sequential run"
            );
            return cli::code(cli::EXIT_FINDING);
        }
        println!(
            "check: ok ({} cells bit-identical at {} thread(s))",
            grid.len(),
            opts.threads
        );
    }
    if cancelled {
        // Extension to the shared contract: interrupted sweeps report the
        // conventional SIGINT code so shells can distinguish a Ctrl-C'd
        // (checkpointed) sweep from a finished or failed one.
        return ExitCode::from(130);
    }
    cli::code(cli::EXIT_OK)
}
