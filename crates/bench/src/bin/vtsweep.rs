//! `vtsweep` — parallel sweep runner for the experiment grid.
//!
//! Runs the suite-kernels × architectures grid on the deterministic
//! worker pool, either fanning whole grid cells across threads
//! (`--engine grid`, the default) or sharding the SMs of each run
//! (`--engine sm`). Results are bit-identical to a sequential run at any
//! thread count; `--check` verifies exactly that.
//!
//! ```text
//! cargo run --release -p vt-bench --bin vtsweep                  # full grid
//! cargo run --release -p vt-bench --bin vtsweep -- bfs spmv --threads 4
//! cargo run --release -p vt-bench --bin vtsweep -- --threads 2 --check
//! ```
//!
//! Exit codes: 0 success, 1 a `--check` mismatch, 2 usage or simulation
//! error.

use std::process::ExitCode;
use std::time::Instant;
use vt_core::{
    default_threads, run_matrix, Architecture, Gpu, GpuConfig, MemSwapParams, Pool, Report,
    RunStats, SimError,
};
use vt_json::Json;
use vt_workloads::{suite, Scale, Workload};

const USAGE: &str = "\
usage: vtsweep [KERNEL...] [options]

Runs the kernels x architectures grid on a deterministic worker pool and
prints one stats line (or JSON record) per cell. Any thread count gives
bit-identical statistics; threading only changes wall-clock time.

options:
  --arch LIST                        comma-separated subset of
                                     baseline,vt,ideal,memswap or `all`
                                     (default all)
  --scale test|small|paper           problem scale (default test)
  --sms N                            number of SMs (default config's 15)
  --threads N                        worker threads (default $VT_THREADS,
                                     else the machine's parallelism;
                                     1 = fully sequential)
  --engine grid|sm                   what to parallelise: independent grid
                                     cells (default) or the SMs inside
                                     each simulation
  --check                            re-run the grid single-threaded and
                                     fail (exit 1) unless every cell is
                                     bit-identical
  --json                             machine-readable results on stdout
  --list                             list suite kernel names and exit
  -h, --help                         this help";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    Grid,
    Sm,
}

struct Opts {
    kernels: Vec<String>,
    archs: Vec<Architecture>,
    scale: Scale,
    sms: Option<u32>,
    threads: usize,
    engine: Engine,
    check: bool,
    json: bool,
}

fn parse_archs(list: &str) -> Result<Vec<Architecture>, String> {
    if list == "all" {
        return Ok(all_archs());
    }
    list.split(',')
        .map(|a| match a.trim() {
            "baseline" => Ok(Architecture::Baseline),
            "vt" => Ok(Architecture::virtual_thread()),
            "ideal" => Ok(Architecture::Ideal),
            "memswap" => Ok(Architecture::MemSwap(MemSwapParams::default())),
            other => Err(format!("unknown architecture `{other}`")),
        })
        .collect()
}

fn all_archs() -> Vec<Architecture> {
    vec![
        Architecture::Baseline,
        Architecture::virtual_thread(),
        Architecture::Ideal,
        Architecture::MemSwap(MemSwapParams::default()),
    ]
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut o = Opts {
        kernels: Vec::new(),
        archs: all_archs(),
        scale: Scale::test(),
        sms: None,
        threads: default_threads(),
        engine: Engine::Grid,
        check: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    let mut list = false;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => list = true,
            "--check" => o.check = true,
            "--json" => o.json = true,
            "--arch" => o.archs = parse_archs(&value("--arch")?)?,
            "--scale" => {
                o.scale = match value("--scale")?.as_str() {
                    "test" => Scale::test(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--sms" => {
                o.sms = Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?);
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                o.threads = if n == 0 { default_threads() } else { n };
            }
            "--engine" => {
                o.engine = match value("--engine")?.as_str() {
                    "grid" => Engine::Grid,
                    "sm" => Engine::Sm,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            name => o.kernels.push(name.to_string()),
        }
    }
    if list {
        for w in suite(&Scale::test()) {
            println!("{}", w.name);
        }
        return Ok(None);
    }
    Ok(Some(o))
}

fn select<'a>(all: &'a [Workload], names: &[String]) -> Result<Vec<&'a Workload>, String> {
    if names.is_empty() {
        return Ok(all.iter().collect());
    }
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|w| w.name == n)
                .ok_or(format!("unknown kernel `{n}` (try --list)"))
        })
        .collect()
}

/// Runs the full grid under the chosen engine, returning cells in
/// kernel-major order.
fn run_grid(opts: &Opts, picked: &[&Workload], threads: usize) -> Vec<Result<Report, SimError>> {
    let mut cfg = GpuConfig::default();
    if let Some(sms) = opts.sms {
        cfg.core.num_sms = sms.max(1);
    }
    let pool = Pool::new(threads);
    match opts.engine {
        Engine::Grid => {
            let kernels: Vec<_> = picked.iter().map(|w| w.kernel.clone()).collect();
            run_matrix(&pool, &cfg.core, &cfg.mem, &opts.archs, &kernels)
        }
        Engine::Sm => {
            let sm_pool = if threads > 1 { Some(&pool) } else { None };
            picked
                .iter()
                .flat_map(|w| opts.archs.iter().map(move |&arch| (w, arch)))
                .map(|(w, arch)| {
                    Gpu::new(GpuConfig {
                        arch,
                        ..cfg.clone()
                    })
                    .run_on(&w.kernel, sm_pool)
                })
                .collect()
        }
    }
}

/// Names the `RunStats` fields that differ, for a readable `--check`
/// report.
fn diff_stats(got: &RunStats, want: &RunStats) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = |name: &str, a: String, b: String| {
        if a != b {
            out.push(format!("{name}: {a} != {b}"));
        }
    };
    field(
        "cycles",
        format!("{}", got.cycles),
        format!("{}", want.cycles),
    );
    field(
        "warp_instrs",
        format!("{}", got.warp_instrs),
        format!("{}", want.warp_instrs),
    );
    field(
        "thread_instrs",
        format!("{}", got.thread_instrs),
        format!("{}", want.thread_instrs),
    );
    field(
        "issue_cycles",
        format!("{}", got.issue_cycles),
        format!("{}", want.issue_cycles),
    );
    field(
        "idle",
        format!("{:?}", got.idle),
        format!("{:?}", want.idle),
    );
    field(
        "occupancy",
        format!("{:?}", got.occupancy),
        format!("{:?}", want.occupancy),
    );
    field(
        "swaps",
        format!("{:?}", got.swaps),
        format!("{:?}", want.swaps),
    );
    field("mem", format!("{:?}", got.mem), format!("{:?}", want.mem));
    if out.is_empty() && got != want {
        out.push("other fields differ (histograms/gauges/timeline)".to_string());
    }
    out
}

fn cell_json(r: &Report) -> Json {
    let s = &r.stats;
    Json::object(vec![
        ("kernel".into(), Json::Str(r.kernel.clone())),
        ("arch".into(), Json::Str(r.arch.label().to_string())),
        ("cycles".into(), Json::UInt(s.cycles)),
        ("ipc".into(), Json::Float(s.ipc())),
        ("warp_instrs".into(), Json::UInt(s.warp_instrs)),
        ("ctas_completed".into(), Json::UInt(s.ctas_completed)),
        ("issue_cycles".into(), Json::UInt(s.issue_cycles)),
        ("idle_cycles".into(), Json::UInt(s.idle.total())),
        ("swaps_out".into(), Json::UInt(s.swaps.swaps_out)),
        ("swaps_in".into(), Json::UInt(s.swaps.swaps_in)),
        ("l1_accesses".into(), Json::UInt(s.mem.l1_accesses)),
        ("l2_accesses".into(), Json::UInt(s.mem.l2_accesses)),
        ("dram_reads".into(), Json::UInt(s.mem.dram_reads)),
    ])
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vtsweep: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let all = suite(&opts.scale);
    let picked = match select(&all, &opts.kernels) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("vtsweep: {e}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let grid = run_grid(&opts, &picked, opts.threads);
    let elapsed = started.elapsed();

    let mut records = Vec::new();
    let mut sim_failed = false;
    for cell in &grid {
        match cell {
            Ok(r) => {
                if !opts.json {
                    println!(
                        "{:<16} [{:<8}] {:>10} cycles  ipc {:>6.2}  swaps {}",
                        r.kernel,
                        r.arch.label(),
                        r.stats.cycles,
                        r.stats.ipc(),
                        r.stats.swaps.swaps_out,
                    );
                }
                records.push(cell_json(r));
            }
            Err(e) => {
                eprintln!("vtsweep: {e}");
                sim_failed = true;
            }
        }
    }
    if sim_failed {
        return ExitCode::from(2);
    }
    if opts.json {
        println!("{}", Json::Array(records).pretty());
    } else {
        println!(
            "{} cells, {} thread(s), engine {}, {:.2}s",
            grid.len(),
            opts.threads,
            match opts.engine {
                Engine::Grid => "grid",
                Engine::Sm => "sm",
            },
            elapsed.as_secs_f64()
        );
    }

    if opts.check {
        let reference = run_grid(&opts, &picked, 1);
        let mut mismatches = 0usize;
        for (got, want) in grid.iter().zip(&reference) {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    if g.stats != w.stats || g.mem_image != w.mem_image {
                        mismatches += 1;
                        eprintln!(
                            "vtsweep: MISMATCH {} [{}] vs sequential:",
                            g.kernel,
                            g.arch.label()
                        );
                        for line in diff_stats(&g.stats, &w.stats) {
                            eprintln!("  {line}");
                        }
                        if g.mem_image != w.mem_image {
                            eprintln!("  final memory image differs");
                        }
                    }
                }
                (Err(g), Err(w)) if format!("{g}") == format!("{w}") => {}
                _ => mismatches += 1,
            }
        }
        if mismatches > 0 {
            eprintln!(
                "vtsweep: --check failed: {mismatches} cell(s) diverge from the sequential run"
            );
            return ExitCode::from(1);
        }
        println!(
            "check: ok ({} cells bit-identical at {} thread(s))",
            grid.len(),
            opts.threads
        );
    }
    ExitCode::SUCCESS
}
