//! **Figure 11 (extension)** — interaction with L1 capacity: VT's gain as
//! the L1D grows from 8 KiB to 64 KiB. Bigger L1s absorb the reuse that
//! extra residency otherwise evicts, so the cache-sensitive kernel
//! (`spmv`) recovers while the latency-bound kernels keep their gains.

use vt_bench::{geomean, Harness, Table};
use vt_core::Architecture;

const KERNELS: &[&str] = &["streamcluster", "kmeans", "spmv", "stencil"];

struct Point {
    l1_kib: u32,
    speedups: Vec<(String, f64)>,
    geomean: f64,
}

vt_json::impl_to_json!(Point {
    l1_kib,
    speedups,
    geomean
});

fn main() {
    let mut h = Harness::from_env();
    let suite = h.suite();
    let workloads: Vec<_> = suite.iter().filter(|w| KERNELS.contains(&w.name)).collect();
    let sizes: &[u32] = if h.quick {
        &[8, 16, 64]
    } else {
        &[8, 16, 32, 64]
    };
    let mut t = Table::new(
        std::iter::once("L1D".to_string())
            .chain(workloads.iter().map(|w| w.name.to_string()))
            .chain(std::iter::once("geomean".to_string()))
            .collect::<Vec<_>>(),
    );
    let mut points = Vec::new();
    for &kib in sizes {
        h.mem.l1_bytes = kib * 1024;
        let mut speedups = Vec::new();
        for w in &workloads {
            let base = h.run(Architecture::Baseline, &w.kernel);
            let vt = h.run(Architecture::virtual_thread(), &w.kernel);
            speedups.push((w.name.to_string(), vt.speedup_over(&base)));
        }
        let gm = geomean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        t.row(
            std::iter::once(format!("{kib} KiB"))
                .chain(speedups.iter().map(|(_, s)| format!("{s:.3}")))
                .chain(std::iter::once(format!("{gm:.3}")))
                .collect::<Vec<_>>(),
        );
        points.push(Point {
            l1_kib: kib,
            speedups,
            geomean: gm,
        });
    }
    let human = format!(
        "Fig. 11 — VT speedup vs. L1D capacity (cache-sensitivity interaction)\n\n{}",
        t.render()
    );
    h.emit("fig11_cache_sensitivity", &human, &points);

    let spmv_small = points
        .first()
        .and_then(|p| p.speedups.iter().find(|(n, _)| n == "spmv"))
        .map(|(_, s)| *s)
        .expect("spmv measured");
    let spmv_big = points
        .last()
        .and_then(|p| p.speedups.iter().find(|(n, _)| n == "spmv"))
        .map(|(_, s)| *s)
        .expect("spmv measured");
    assert!(
        spmv_big > spmv_small,
        "a larger L1 must recover spmv's cache-thrash loss ({spmv_small:.3} → {spmv_big:.3})"
    );
    assert!(
        points.iter().all(|p| p.geomean > 1.0),
        "VT wins at every L1 size on this subset"
    );
}
