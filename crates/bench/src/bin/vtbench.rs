//! `vtbench` — the pinned performance suite and regression gate.
//!
//! Runs the full workload suite under one fixed configuration (test
//! scale, 4 SMs, VT architecture, 512-cycle metric windows), prints a
//! per-kernel table and writes a `BENCH_<n>.json` record: geometric-mean
//! IPC, simulated cycles per wall-clock second, and per-kernel windowed
//! series summaries.
//!
//! `vtbench --diff OLD NEW` compares two records and exits nonzero when
//! the new geometric-mean IPC regresses by more than the threshold
//! (default 2%). IPC is deterministic, so the gate is noise-free; wall
//! clock is recorded but never gated. `--explain` augments the diff
//! with per-kernel CPI-stack attribution: which cycle-accounting bucket
//! the delta landed in (see also the standalone `vtdiff` binary).
//!
//! ```text
//! cargo run --release -p vt-bench --bin vtbench -- --out BENCH_0.json
//! cargo run --release -p vt-bench --bin vtbench -- --diff BENCH_0.json BENCH_1.json
//! ```
//!
//! Exit codes: 0 success, 1 the `--diff` gate tripped, 2 usage error or
//! incomparable records.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use vt_bench::cli;
use vt_bench::cpi::Attribution;
use vt_bench::record::{self, RECORD_VERSION};
use vt_bench::{geomean, Table};
use vt_core::{Architecture, Gpu, GpuConfig, MemSwapParams};
use vt_json::{req_f64, Json};
use vt_workloads::{full_suite, Scale};

const USAGE: &str = "\
usage: vtbench [options]
       vtbench --diff OLD.json NEW.json [--threshold PCT]
       vtbench --degrade PCT IN.json OUT.json

Runs the pinned kernel suite (test scale, 4 SMs, vt architecture,
512-cycle metric windows), prints a per-kernel table and writes a
BENCH_<n>.json record with geomean IPC, cycles/sec wall throughput and
per-kernel windowed series summaries.

options:
  --out FILE            record path (default: first free BENCH_<n>.json)
  --arch baseline|vt|ideal|memswap   architecture (default vt)
  --sms N               number of SMs (default 4)
  --window N            metric window in cycles (default 512)
  --json                print the record on stdout too
  --diff OLD NEW        compare two records: exit 1 when NEW's geomean
                        IPC is more than the threshold below OLD's,
                        2 when the records are not comparable
  --explain             with --diff: attribute each kernel's cycle delta
                        to CPI-stack buckets (see vtdiff for the full
                        differential report)
  --threshold PCT       --diff regression threshold in percent (default 2)
  --degrade PCT IN OUT  write a copy of IN with every IPC scaled down by
                        PCT percent (exercises the --diff gate)
  -h, --help            this help";

enum Mode {
    Run,
    Diff(String, String),
    Degrade(f64, String, String),
}

struct Opts {
    mode: Mode,
    out: Option<PathBuf>,
    arch: Architecture,
    sms: u32,
    window: u64,
    threshold: f64,
    json: bool,
    explain: bool,
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut o = Opts {
        mode: Mode::Run,
        out: None,
        arch: Architecture::virtual_thread(),
        sms: 4,
        window: 512,
        threshold: 2.0,
        json: false,
        explain: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--json" => o.json = true,
            "--explain" => o.explain = true,
            "--out" => o.out = Some(PathBuf::from(value("--out")?)),
            "--arch" => {
                o.arch = match value("--arch")?.as_str() {
                    "baseline" => Architecture::Baseline,
                    "vt" => Architecture::virtual_thread(),
                    "ideal" => Architecture::Ideal,
                    "memswap" => Architecture::MemSwap(MemSwapParams::default()),
                    other => return Err(format!("unknown architecture `{other}`")),
                };
            }
            "--sms" => o.sms = value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?,
            "--window" => {
                o.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--threshold" => {
                o.threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !o.threshold.is_finite() || o.threshold < 0.0 {
                    return Err("--threshold must be a nonnegative percentage".into());
                }
            }
            "--diff" => {
                let old = value("--diff (OLD)")?;
                let new = value("--diff (NEW)")?;
                o.mode = Mode::Diff(old, new);
            }
            "--degrade" => {
                let pct: f64 = value("--degrade (PCT)")?
                    .parse()
                    .map_err(|e| format!("--degrade: {e}"))?;
                if !pct.is_finite() || !(0.0..100.0).contains(&pct) {
                    return Err("--degrade PCT must be in [0, 100)".into());
                }
                let input = value("--degrade (IN)")?;
                let output = value("--degrade (OUT)")?;
                o.mode = Mode::Degrade(pct, input, output);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(o))
}

/// The first `BENCH_<n>.json` that does not exist yet.
fn next_record_path() -> PathBuf {
    (0..)
        .map(|n| PathBuf::from(format!("BENCH_{n}.json")))
        .find(|p| !p.exists())
        .expect("some index is free")
}

/// Mean/max/total summaries of one run's windowed series, for the
/// per-kernel record.
fn series_summary(m: &vt_core::MetricsRegistry) -> Json {
    let stat = |name: &str| -> Json {
        match m.get(name, None) {
            Some(s) => Json::object(vec![
                ("mean".into(), Json::Float(s.mean())),
                ("max".into(), Json::UInt(s.max())),
                ("total".into(), Json::UInt(s.total())),
            ]),
            None => Json::Null,
        }
    };
    Json::object(
        [
            "thread_instrs",
            "issue_cycles",
            "resident_ctas",
            "active_ctas",
            "resident_warps",
            "swaps_in",
            "swaps_out",
            "mshr_in_flight",
        ]
        .iter()
        .map(|&n| (n.to_string(), stat(n)))
        .collect(),
    )
}

fn run_suite(o: &Opts) -> Result<(), String> {
    let scale = Scale::test();
    let mut cfg = GpuConfig::with_arch(o.arch);
    cfg.core.num_sms = o.sms.max(1);
    cfg.core.metrics_window = Some(o.window);

    let mut table = Table::new(vec!["kernel", "cycles", "ipc", "windows", "wall ms"]);
    let mut kernels = Vec::new();
    let mut ipcs = Vec::new();
    let mut total_cycles = 0u64;
    let started = Instant::now();
    for w in full_suite(&scale) {
        let t0 = Instant::now();
        let report = Gpu::new(cfg.clone())
            .run(&w.kernel)
            .map_err(|e| format!("{}: {e}", w.name))?;
        let wall = t0.elapsed().as_secs_f64();
        let s = &report.stats;
        let m = s.metrics().expect("metrics enabled");
        total_cycles += s.cycles;
        ipcs.push(s.ipc());
        table.row(vec![
            w.name.to_string(),
            format!("{}", s.cycles),
            format!("{:.3}", s.ipc()),
            format!("{}", m.windows()),
            format!("{:.1}", wall * 1e3),
        ]);
        kernels.push(Json::object(vec![
            ("kernel".into(), Json::Str(w.name.to_string())),
            ("cycles".into(), Json::UInt(s.cycles)),
            ("thread_instrs".into(), Json::UInt(s.thread_instrs)),
            ("ipc".into(), Json::Float(s.ipc())),
            ("wall_s".into(), Json::Float(wall)),
            (
                "cycles_per_sec".into(),
                Json::Float(s.cycles as f64 / wall.max(1e-9)),
            ),
            ("windows".into(), Json::UInt(m.windows())),
            ("cpi".into(), s.cpi_stack().to_json()),
            ("series".into(), series_summary(m)),
        ]));
    }
    let wall = started.elapsed().as_secs_f64();
    let geomean_ipc = geomean(&ipcs);
    let record = Json::object(vec![
        ("version".into(), Json::UInt(RECORD_VERSION)),
        (
            "suite".into(),
            Json::object(vec![
                ("ctas".into(), Json::UInt(u64::from(scale.ctas))),
                ("iters".into(), Json::UInt(u64::from(scale.iters))),
            ]),
        ),
        ("arch".into(), Json::Str(o.arch.label().to_string())),
        ("sms".into(), Json::UInt(u64::from(o.sms))),
        ("metrics_window".into(), Json::UInt(o.window)),
        ("geomean_ipc".into(), Json::Float(geomean_ipc)),
        (
            "cycles_per_sec".into(),
            Json::Float(total_cycles as f64 / wall.max(1e-9)),
        ),
        ("kernels".into(), Json::Array(kernels)),
    ]);

    let path = o.out.clone().unwrap_or_else(next_record_path);
    fs::write(&path, record.pretty()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    println!("{}", table.render());
    println!(
        "geomean ipc {geomean_ipc:.3}, {total_cycles} cycles in {wall:.2}s \
         ({:.0} cycles/sec) -> {}",
        total_cycles as f64 / wall.max(1e-9),
        path.display()
    );
    if o.json {
        println!("{}", record.pretty());
    }
    Ok(())
}

/// Prints each kernel's cycle delta decomposed into CPI-stack bucket
/// deltas (the `--explain` report). Buckets partition SM-cycles, so the
/// decomposition is exhaustive; only moved buckets are shown.
fn explain(old: &Json, new: &Json) -> Result<(), String> {
    let old_kernels = record::kernels(old)?;
    let new_kernels = record::kernels(new)?;
    println!("cycle-delta attribution (SM-cycles, new - old):");
    for o in &old_kernels {
        let Some(n) = new_kernels.iter().find(|k| k.name == o.name) else {
            continue;
        };
        let a = Attribution::between(&o.cpi, &n.cpi);
        if a.ranked.iter().all(|&(_, d)| d == 0) {
            println!("  {}: no change", o.name);
            continue;
        }
        let moved: Vec<String> = a
            .ranked
            .iter()
            .filter(|&&(_, d)| d != 0)
            .map(|&(b, d)| format!("{b} {d:+}"))
            .collect();
        println!(
            "  {}: {:+} SM-cycles ({:.0}% attributed): {}",
            o.name,
            a.delta,
            a.coverage(),
            moved.join(", ")
        );
    }
    Ok(())
}

fn diff(
    old_path: &str,
    new_path: &str,
    threshold_pct: f64,
    explain_cpi: bool,
) -> Result<bool, String> {
    let old = record::load(old_path)?;
    let new = record::load(new_path)?;
    let (fp_old, fp_new) = (record::fingerprint(&old)?, record::fingerprint(&new)?);
    if fp_old != fp_new {
        return Err(format!(
            "records are not comparable:\n  {old_path}: {fp_old}\n  {new_path}: {fp_new}"
        ));
    }
    let g_old = req_f64(&old, "geomean_ipc")?;
    let g_new = req_f64(&new, "geomean_ipc")?;
    let floor = g_old * (1.0 - threshold_pct / 100.0);

    let mut table = Table::new(vec!["kernel", "old ipc", "new ipc", "delta"]);
    let old_kernels = record::kernels(&old)?;
    let new_kernels = record::kernels(&new)?;
    for o in &old_kernels {
        if let Some(n) = new_kernels.iter().find(|k| k.name == o.name) {
            table.row(vec![
                o.name.clone(),
                format!("{:.3}", o.ipc),
                format!("{:.3}", n.ipc),
                format!("{:+.1}%", (n.ipc / o.ipc - 1.0) * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    if explain_cpi {
        explain(&old, &new)?;
    }
    let delta_pct = (g_new / g_old - 1.0) * 100.0;
    println!(
        "geomean ipc: {g_old:.3} -> {g_new:.3} ({delta_pct:+.2}%), \
         gate: >{threshold_pct}% regression fails"
    );
    if g_new < floor {
        eprintln!(
            "vtbench: REGRESSION: geomean ipc {g_new:.3} is below the \
             {threshold_pct}% floor {floor:.3} (old {g_old:.3})"
        );
        return Ok(false);
    }
    println!("gate: ok");
    Ok(true)
}

/// Scales `ipc`/`geomean_ipc` fields down by `pct` percent, recursively.
fn scale_ipc(j: &Json, factor: f64) -> Json {
    match j {
        Json::Object(fields) => Json::object(
            fields
                .iter()
                .map(|(k, v)| {
                    let v = if k == "ipc" || k == "geomean_ipc" {
                        Json::Float(v.as_f64().unwrap_or(0.0) * factor)
                    } else {
                        scale_ipc(v, factor)
                    };
                    (k.clone(), v)
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(|v| scale_ipc(v, factor)).collect()),
        other => other.clone(),
    }
}

fn degrade(pct: f64, input: &str, output: &str) -> Result<(), String> {
    let record = record::load(input)?;
    let scaled = scale_ipc(&record, 1.0 - pct / 100.0);
    fs::write(output, scaled.pretty()).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {output} with every IPC scaled down {pct}%");
    Ok(())
}

fn main() -> ExitCode {
    let opts = match cli::parsed("vtbench", USAGE, parse_args()) {
        Ok(o) => o,
        Err(code) => return cli::code(code),
    };
    let result = match &opts.mode {
        Mode::Run => run_suite(&opts).map(|()| true),
        Mode::Diff(old, new) => diff(old, new, opts.threshold, opts.explain),
        Mode::Degrade(pct, input, output) => degrade(*pct, input, output).map(|()| true),
    };
    cli::code(cli::finish("vtbench", result))
}
