//! The exit-code contract shared by every vt-bench binary.
//!
//! All five CLIs (`vtprof`, `vtdiff`, `vtbench`, `vtsweep`, `vttrace`)
//! speak the same three codes:
//!
//! * **0** — success; the tool did what was asked and found nothing
//!   wrong.
//! * **1** — a *finding*: the tool ran correctly but what it was asked
//!   to check failed (a `--check` mismatch, a regression gate trip, a
//!   rejected trace, a nonzero `--assert-zero` diff).
//! * **2** — a usage error or an operational failure (bad flags,
//!   unreadable files, a simulation error).
//!
//! `vtsweep` additionally exits 130 when Ctrl-C cancels a run, matching
//! shell convention; everything else goes through the helpers here so
//! the contract cannot drift per binary. Helpers return the raw `u8`
//! (testable; [`ExitCode`] has no `PartialEq`) and `main` wraps it with
//! [`code`].

use std::process::ExitCode;

/// Exit code for success.
pub const EXIT_OK: u8 = 0;
/// Exit code for a finding: the requested check failed.
pub const EXIT_FINDING: u8 = 1;
/// Exit code for usage or operational errors.
pub const EXIT_ERROR: u8 = 2;

/// Converts a contract code to the [`ExitCode`] `main` returns.
pub fn code(c: u8) -> ExitCode {
    ExitCode::from(c)
}

/// Resolves a `parse_args`-style result: `Ok(Some(opts))` continues,
/// `Ok(None)` means help/list was printed (exit 0), `Err` prints the
/// message plus usage to stderr and exits 2.
///
/// # Errors
///
/// The `Err` arm carries the exit code `main` should return.
pub fn parsed<T>(tool: &str, usage: &str, parsed: Result<Option<T>, String>) -> Result<T, u8> {
    match parsed {
        Ok(Some(o)) => Ok(o),
        Ok(None) => Err(EXIT_OK),
        Err(e) => {
            eprintln!("{tool}: {e}\n\n{usage}");
            Err(EXIT_ERROR)
        }
    }
}

/// Reports an operational error to stderr and yields exit code 2.
pub fn fail(tool: &str, msg: &str) -> u8 {
    eprintln!("{tool}: {msg}");
    EXIT_ERROR
}

/// Maps a tool's outcome to the contract: `Ok(true)` → 0, `Ok(false)`
/// (a finding) → 1, `Err` → message on stderr and 2.
pub fn finish(tool: &str, result: Result<bool, String>) -> u8 {
    match result {
        Ok(true) => EXIT_OK,
        Ok(false) => EXIT_FINDING,
        Err(e) => fail(tool, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsed_passes_options_through() {
        assert_eq!(parsed("t", "u", Ok(Some(7))).unwrap(), 7);
    }

    #[test]
    fn parsed_maps_help_to_success() {
        assert_eq!(parsed::<u32>("t", "u", Ok(None)).unwrap_err(), EXIT_OK);
    }

    #[test]
    fn parsed_maps_usage_errors_to_two() {
        assert_eq!(
            parsed::<u32>("t", "u", Err("bad flag".into())).unwrap_err(),
            EXIT_ERROR
        );
    }

    #[test]
    fn finish_covers_the_three_codes() {
        assert_eq!(finish("t", Ok(true)), EXIT_OK);
        assert_eq!(finish("t", Ok(false)), EXIT_FINDING);
        assert_eq!(finish("t", Err("boom".into())), EXIT_ERROR);
    }
}
