//! # vt-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`). Every
//! binary prints the human-readable table or ASCII figure, writes a
//! machine-readable JSON record under `results/`, and — in `--quick`
//! mode — asserts its acceptance criterion from `DESIGN.md §5` so CI can
//! smoke-test the whole evaluation.
//!
//! ```text
//! cargo run --release -p vt-bench --bin fig03_speedup          # paper scale
//! cargo run --release -p vt-bench --bin fig03_speedup -- --quick
//! ```
#![forbid(unsafe_code)]

pub mod cli;
pub mod cpi;
pub mod hotspot;
pub mod record;

use std::fs;
use std::path::PathBuf;
use std::time::Instant;
use vt_core::{Architecture, CoreConfig, Gpu, GpuConfig, MemConfig, Report};
use vt_isa::Kernel;
use vt_json::ToJson;
use vt_workloads::{suite, Scale, Workload};

/// Common experiment context: hardware configuration, problem scale and
/// output directory.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Reduced problem size and relaxed assertions for CI smoke runs.
    pub quick: bool,
    /// Directory JSON records are written to.
    pub out_dir: PathBuf,
    /// Core configuration shared by every run.
    pub core: CoreConfig,
    /// Memory configuration shared by every run.
    pub mem: MemConfig,
}

impl Harness {
    /// Builds a harness from `std::env::args` (`--quick`,
    /// `--out <dir>`).
    pub fn from_env() -> Harness {
        let mut quick = false;
        let mut out_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    if let Some(d) = args.next() {
                        out_dir = PathBuf::from(d);
                    }
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
        }
        Harness {
            quick,
            out_dir,
            core: CoreConfig::default(),
            mem: MemConfig::default(),
        }
    }

    /// The problem scale experiments run at. Quick mode still
    /// oversubscribes every SM (the phenomenon under study needs more
    /// CTAs than the scheduling limit admits) but with fewer waves and
    /// shorter inner loops.
    pub fn scale(&self) -> Scale {
        if self.quick {
            Scale {
                ctas: 240,
                iters: 4,
            }
        } else {
            Scale::paper()
        }
    }

    /// The benchmark suite at this harness's scale.
    pub fn suite(&self) -> Vec<Workload> {
        suite(&self.scale())
    }

    /// Runs `kernel` under `arch`, logging wall time to stderr.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails; experiment inputs are all valid by
    /// construction, so a failure is a harness bug worth a loud stop.
    pub fn run(&self, arch: Architecture, kernel: &Kernel) -> Report {
        let t0 = Instant::now();
        let report = Gpu::new(GpuConfig {
            core: self.core.clone(),
            mem: self.mem.clone(),
            arch,
        })
        .run(kernel)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()));
        eprintln!(
            "  [{} / {}: {} cycles, {:.2}s]",
            kernel.name(),
            arch.label(),
            report.stats.cycles,
            t0.elapsed().as_secs_f64()
        );
        report
    }

    /// Prints the experiment output and writes its JSON record.
    pub fn emit<T: ToJson>(&self, name: &str, human: &str, record: &T) {
        println!("{human}");
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.json"));
        let json = record.to_json().pretty();
        if let Err(e) = fs::write(&path, json) {
            eprintln!("cannot write {}: {e}", path.display());
        } else {
            eprintln!("  [record: {}]", path.display());
        }
    }
}

/// Geometric mean of positive values (the paper's averaging convention
/// for speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A fixed-width ASCII horizontal bar for figure-style output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let max = if max <= 0.0 { 1.0 } else { max };
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    let mut s = "█".repeat(n);
    s.push_str(&" ".repeat(width - n));
    s
}

/// A minimal aligned-column table renderer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(out.chars().count().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The architecture set most figures compare.
pub fn standard_archs() -> Vec<Architecture> {
    vec![
        Architecture::Baseline,
        Architecture::virtual_thread(),
        Architecture::Ideal,
        Architecture::MemSwap(vt_core::MemSwapParams::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 1.0, 4), "████");
        assert_eq!(bar(0.0, 1.0, 4), "    ");
        assert_eq!(bar(0.5, 1.0, 4), "██  ");
        assert_eq!(bar(1.0, 0.0, 2).chars().count(), 2);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn standard_archs_are_the_paper_comparison() {
        let archs = standard_archs();
        assert_eq!(archs.len(), 4);
        assert_eq!(archs[0].label(), "baseline");
        assert_eq!(archs[1].label(), "vt");
    }
}
