//! Micro-benchmarks of the simulator's hot paths plus two end-to-end
//! kernel simulations (baseline and Virtual Thread), so
//! simulator-performance regressions are caught alongside the
//! architecture experiments.
//!
//! This is a plain `harness = false` benchmark (no external framework so
//! the workspace builds offline): each case is timed with
//! `std::time::Instant` over a fixed iteration count after a warm-up
//! pass, reporting mean ns/iter.

use std::hint::black_box;
use std::time::Instant;
use vt_core::{Architecture, Gpu, GpuConfig, Pool, RunRequest, Session};
use vt_isa::interp::Interpreter;
use vt_isa::SimtStack;
use vt_mem::cache::Cache;
use vt_mem::coalesce::{coalesce, shared_bank_conflicts};
use vt_mem::mshr::Mshr;
use vt_mem::{MemConfig, MemSystem, ReqKind};
use vt_trace::RingSink;
use vt_workloads::{suite, Scale};

/// Times `f` over `iters` iterations (after `iters / 10 + 1` warm-up
/// iterations) and prints mean ns/iter.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..iters / 10 + 1 {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{name:<32} {per_iter:>12.0} ns/iter  ({iters} iters)");
}

fn bench_coalescer() {
    let mut unit = [0u32; 32];
    let mut strided = [0u32; 32];
    let mut random = [0u32; 32];
    for i in 0..32u32 {
        unit[i as usize] = 0x1000 + i * 4;
        strided[i as usize] = 0x1000 + i * 512;
        random[i as usize] = i.wrapping_mul(2654435761) % (1 << 20);
    }
    bench("coalesce/unit-stride", 100_000, || {
        coalesce(black_box(&unit), u32::MAX, 128)
    });
    bench("coalesce/strided", 100_000, || {
        coalesce(black_box(&strided), u32::MAX, 128)
    });
    bench("coalesce/random", 100_000, || {
        coalesce(black_box(&random), u32::MAX, 128)
    });
    bench("smem-bank-conflicts", 100_000, || {
        shared_bank_conflicts(black_box(&random), u32::MAX, 32)
    });
}

fn bench_simt_stack() {
    bench("simt/diverge-reconverge", 100_000, || {
        let mut s = SimtStack::new(u32::MAX);
        s.branch(0x0000_ffff, 10, 20);
        for _ in 10..20 {
            s.advance();
        }
        for _ in 1..19 {
            s.advance();
        }
        s.depth()
    });
}

fn bench_cache() {
    bench("cache/probe-fill", 10_000, || {
        let mut cache = Cache::new(32, 4);
        for i in 0..256u64 {
            let _ = cache.probe(i % 192, i);
            let _ = cache.fill(i % 192, i, false);
        }
        cache.valid_lines()
    });
    bench("mshr/alloc-fill", 10_000, || {
        let mut mshr = Mshr::<u64>::new(64, 8);
        for i in 0..64u64 {
            let _ = mshr.alloc(i % 32, i);
        }
        let mut total = 0;
        for i in 0..32u64 {
            total += mshr.fill(i).len();
        }
        total
    });
}

fn bench_mem_system() {
    bench("mem-system/load-round-trip", 2_000, || {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        mem.tick(0);
        assert!(mem.try_submit(0, 1, 12345, ReqKind::Load).accepted());
        let mut cycle = 1;
        loop {
            mem.tick(cycle);
            if mem.pop_response(0).is_some() {
                break;
            }
            cycle += 1;
        }
        cycle
    });
}

fn bench_end_to_end() {
    let scale = Scale { ctas: 30, iters: 4 };
    let kernel = suite(&scale)
        .into_iter()
        .find(|w| w.name == "streamcluster")
        .expect("suite contains streamcluster")
        .kernel;
    let mut small = GpuConfig::default();
    small.core.num_sms = 4;

    let gpu = Gpu::new(small.clone());
    bench("sim/streamcluster-baseline", 10, || {
        gpu.run(&kernel).expect("run succeeds").stats.cycles
    });
    let mut vt_cfg = small.clone();
    vt_cfg.arch = Architecture::virtual_thread();
    let gpu_vt = Gpu::new(vt_cfg);
    bench("sim/streamcluster-vt", 10, || {
        gpu_vt.run(&kernel).expect("run succeeds").stats.cycles
    });
    bench("interp/streamcluster", 10, || {
        Interpreter::new(&kernel)
            .expect("valid kernel")
            .run()
            .expect("runs")
            .warp_instrs()
    });
}

/// Guard for the zero-overhead-tracing claim: `Gpu::run` (NullSink,
/// instrumentation monomorphized away) must track the pre-instrumentation
/// simulation speed, while an attached `RingSink` shows the real cost of
/// recording events.
fn bench_tracing_overhead() {
    let scale = Scale { ctas: 30, iters: 4 };
    let kernel = suite(&scale)
        .into_iter()
        .find(|w| w.name == "spmv")
        .expect("suite contains spmv")
        .kernel;
    let mut cfg = GpuConfig::default();
    cfg.core.num_sms = 4;
    cfg.arch = Architecture::virtual_thread();
    let gpu = Gpu::new(cfg);

    bench("trace/spmv-disabled", 10, || {
        gpu.run(&kernel).expect("run succeeds").stats.cycles
    });
    bench("trace/spmv-ring-sink", 10, || {
        let mut session = Session::new(gpu.config().clone()).with_sink(RingSink::new(1 << 20));
        let cycles = session
            .run(RunRequest::kernel(&kernel))
            .expect("run succeeds")
            .completed()
            .expect("unbudgeted")[0]
            .stats
            .cycles;
        (cycles, session.into_sink().len())
    });
}

/// Guard for the zero-overhead-metrics claim: with
/// `CoreConfig::metrics_window` unset, `execute` monomorphizes to the
/// unmetered loop (same speed as before the metrics layer existed);
/// enabling a 512-cycle window shows the real sampling cost.
fn bench_metrics_overhead() {
    let scale = Scale { ctas: 30, iters: 4 };
    let kernel = suite(&scale)
        .into_iter()
        .find(|w| w.name == "spmv")
        .expect("suite contains spmv")
        .kernel;
    let mut cfg = GpuConfig::default();
    cfg.core.num_sms = 4;
    cfg.arch = Architecture::virtual_thread();

    let gpu = Gpu::new(cfg.clone());
    bench("metrics/spmv-disabled", 10, || {
        gpu.run(&kernel).expect("run succeeds").stats.cycles
    });
    cfg.core.metrics_window = Some(512);
    let gpu_metered = Gpu::new(cfg);
    bench("metrics/spmv-window-512", 10, || {
        let stats = gpu_metered.run(&kernel).expect("run succeeds").stats;
        (stats.cycles, stats.metrics().map_or(0, |m| m.windows()))
    });
}

/// The sequential-vs-parallel sweep pair: the full kernels ×
/// architectures grid run on one thread and on a 4-worker pool. Results
/// are bit-identical (asserted here); only wall-clock should differ. The
/// speedup is bounded by the host's core count — on a single-core
/// machine the pool can only tie the sequential run.
fn bench_parallel_sweep() {
    let scale = Scale { ctas: 24, iters: 3 };
    let kernels: Vec<_> = suite(&scale).into_iter().map(|w| w.kernel).collect();
    let archs = [
        Architecture::Baseline,
        Architecture::virtual_thread(),
        Architecture::Ideal,
    ];
    let cfg = GpuConfig::default();

    let seq_session = Session::new(cfg.clone()).with_pool(Pool::new(1));
    let par_session = Session::new(cfg.clone()).with_pool(Pool::new(4));
    let seq: Vec<u64> = seq_session
        .sweep(&archs, &kernels)
        .into_iter()
        .map(|r| r.expect("cell runs").stats.cycles)
        .collect();
    let par: Vec<u64> = par_session
        .sweep(&archs, &kernels)
        .into_iter()
        .map(|r| r.expect("cell runs").stats.cycles)
        .collect();
    assert_eq!(seq, par, "parallel sweep must be bit-identical");

    bench("sweep/grid-1-thread", 3, || {
        seq_session.sweep(&archs, &kernels).len()
    });
    bench("sweep/grid-4-threads", 3, || {
        par_session.sweep(&archs, &kernels).len()
    });
}

fn main() {
    println!("{:<32} {:>12}", "benchmark", "mean");
    bench_coalescer();
    bench_simt_stack();
    bench_cache();
    bench_mem_system();
    bench_end_to_end();
    bench_tracing_overhead();
    bench_metrics_overhead();
    bench_parallel_sweep();
}
