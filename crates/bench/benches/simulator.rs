//! Criterion micro-benchmarks of the simulator's hot paths plus two
//! end-to-end kernel simulations (baseline and Virtual Thread), so
//! simulator-performance regressions are caught alongside the
//! architecture experiments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vt_core::{Architecture, Gpu, GpuConfig};
use vt_isa::interp::Interpreter;
use vt_isa::SimtStack;
use vt_mem::cache::Cache;
use vt_mem::coalesce::{coalesce, shared_bank_conflicts};
use vt_mem::mshr::Mshr;
use vt_mem::{MemConfig, MemSystem, ReqKind};
use vt_workloads::{suite, Scale};

fn bench_coalescer(c: &mut Criterion) {
    let mut unit = [0u32; 32];
    let mut strided = [0u32; 32];
    let mut random = [0u32; 32];
    for i in 0..32u32 {
        unit[i as usize] = 0x1000 + i * 4;
        strided[i as usize] = 0x1000 + i * 512;
        random[i as usize] = i.wrapping_mul(2654435761) % (1 << 20);
    }
    c.bench_function("coalesce/unit-stride", |b| {
        b.iter(|| coalesce(black_box(&unit), u32::MAX, 128))
    });
    c.bench_function("coalesce/strided", |b| {
        b.iter(|| coalesce(black_box(&strided), u32::MAX, 128))
    });
    c.bench_function("coalesce/random", |b| {
        b.iter(|| coalesce(black_box(&random), u32::MAX, 128))
    });
    c.bench_function("smem-bank-conflicts", |b| {
        b.iter(|| shared_bank_conflicts(black_box(&random), u32::MAX, 32))
    });
}

fn bench_simt_stack(c: &mut Criterion) {
    c.bench_function("simt/diverge-reconverge", |b| {
        b.iter(|| {
            let mut s = SimtStack::new(u32::MAX);
            s.branch(0x0000_ffff, 10, 20);
            for _ in 10..20 {
                s.advance();
            }
            for _ in 1..19 {
                s.advance();
            }
            black_box(s.depth())
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/probe-fill", |b| {
        b.iter_batched(
            || Cache::new(32, 4),
            |mut cache| {
                for i in 0..256u64 {
                    let _ = cache.probe(i % 192, i);
                    let _ = cache.fill(i % 192, i, false);
                }
                black_box(cache.valid_lines())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mshr/alloc-fill", |b| {
        b.iter_batched(
            || Mshr::<u64>::new(64, 8),
            |mut mshr| {
                for i in 0..64u64 {
                    let _ = mshr.alloc(i % 32, i);
                }
                for i in 0..32u64 {
                    black_box(mshr.fill(i).len());
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mem_system(c: &mut Criterion) {
    c.bench_function("mem-system/load-round-trip", |b| {
        b.iter_batched(
            || MemSystem::new(&MemConfig::default(), 1),
            |mut mem| {
                mem.tick(0);
                assert!(mem.try_submit(0, 1, 12345, ReqKind::Load).accepted());
                let mut cycle = 1;
                loop {
                    mem.tick(cycle);
                    if mem.pop_response(0).is_some() {
                        break;
                    }
                    cycle += 1;
                }
                black_box(cycle)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let scale = Scale { ctas: 30, iters: 4 };
    let kernel = suite(&scale)
        .into_iter()
        .find(|w| w.name == "streamcluster")
        .expect("suite contains streamcluster")
        .kernel;
    let mut small = GpuConfig::default();
    small.core.num_sms = 4;

    c.bench_function("sim/streamcluster-baseline", |b| {
        let gpu = Gpu::new(small.clone());
        b.iter(|| black_box(gpu.run(&kernel).expect("run succeeds").stats.cycles))
    });
    let mut vt_cfg = small.clone();
    vt_cfg.arch = Architecture::virtual_thread();
    c.bench_function("sim/streamcluster-vt", |b| {
        let gpu = Gpu::new(vt_cfg.clone());
        b.iter(|| black_box(gpu.run(&kernel).expect("run succeeds").stats.cycles))
    });
    c.bench_function("interp/streamcluster", |b| {
        b.iter(|| {
            black_box(
                Interpreter::new(&kernel)
                    .expect("valid kernel")
                    .run()
                    .expect("runs")
                    .warp_instrs(),
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_coalescer, bench_simt_stack, bench_cache, bench_mem_system, bench_end_to_end
);
criterion_main!(benches);
