//! Exit-code contract tests for the five vt-bench binaries.
//!
//! The shared contract (implemented by `vt_bench::cli`, documented in
//! each binary's module docs):
//!
//! * exit 0 — success (including `--help`);
//! * exit 1 — the tool ran and reported a finding (`--check` rejection,
//!   `--assert-zero` violation, validation failure);
//! * exit 2 — usage, I/O or simulation problems.
//!
//! `vtsweep` additionally exits 130 when interrupted, which is not
//! exercised here (it needs a live SIGINT).

use std::path::PathBuf;
use std::process::{Command, Output};
use vt_bench::cpi::CpiRecord;
use vt_bench::hotspot::{PcEntry, ProfileRecord};

fn run(bin: &str, args: &[&str]) -> Output {
    let exe = match bin {
        "vtprof" => env!("CARGO_BIN_EXE_vtprof"),
        "vtdiff" => env!("CARGO_BIN_EXE_vtdiff"),
        "vtbench" => env!("CARGO_BIN_EXE_vtbench"),
        "vtsweep" => env!("CARGO_BIN_EXE_vtsweep"),
        "vttrace" => env!("CARGO_BIN_EXE_vttrace"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("binary terminated by signal")
}

const ALL_BINS: [&str; 5] = ["vtprof", "vtdiff", "vtbench", "vtsweep", "vttrace"];

/// `--help` prints usage on stdout and exits 0, for every binary.
#[test]
fn help_exits_zero_everywhere() {
    for bin in ALL_BINS {
        let out = run(bin, &["--help"]);
        assert_eq!(code(&out), 0, "{bin} --help");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{bin}: no usage text:\n{stdout}");
    }
}

/// An unknown flag is a usage error (exit 2) with the usage text on
/// stderr, for every binary.
#[test]
fn unknown_flags_exit_two_everywhere() {
    for bin in ALL_BINS {
        let out = run(bin, &["--definitely-not-a-flag"]);
        assert_eq!(code(&out), 2, "{bin} --definitely-not-a-flag");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(bin) && stderr.contains("usage:"),
            "{bin}: diagnostic must name the tool and repeat usage:\n{stderr}"
        );
    }
}

/// Cheap per-binary usage/I-O error paths beyond the unknown-flag case.
#[test]
fn io_and_validation_problems_exit_two() {
    // Unknown kernel selections.
    let out = run("vtprof", &["no-such-kernel"]);
    assert_eq!(code(&out), 2, "vtprof unknown kernel");
    let out = run("vtsweep", &["no-such-kernel"]);
    assert_eq!(code(&out), 2, "vtsweep unknown kernel");

    // vtsweep's checkpoint/resume shape validation fires before any
    // simulation work.
    let out = run("vtsweep", &["--checkpoint", "/tmp/x.ckpt"]);
    assert_eq!(code(&out), 2, "vtsweep --checkpoint needs one kernel/arch");

    // Missing input files.
    let out = run("vtdiff", &["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(code(&out), 2, "vtdiff missing records");
    let out = run("vttrace", &["--run", "/nonexistent/x.trace"]);
    assert_eq!(code(&out), 2, "vttrace missing trace");

    // vtbench rejects a fig-bin directory that does not exist only via
    // env; its remaining cheap error is a malformed flag value.
    let out = run("vtbench", &["--sms", "zero"]);
    assert_eq!(code(&out), 2, "vtbench bad --sms value");
}

/// `vttrace --check` on a rejected file is a finding: exit 1, with a
/// per-file diagnostic rather than a crash.
#[test]
fn vttrace_check_rejection_is_a_finding() {
    let bad = fixture("garbage.trace", "this is not a trace\n");
    let out = run("vttrace", &["--check", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "rejected trace must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REJECTED"), "{stdout}");
    std::fs::remove_file(bad).ok();
}

/// `vtprof --list` succeeds without running any simulation.
#[test]
fn vtprof_list_exits_zero() {
    let out = run("vtprof", &["--list"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bfs"), "{stdout}");
}

fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("vt-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

/// A tiny conserving profile record: 2 PCs, memory stalls only, one
/// unattributed memory cycle.
fn toy_record(ld_issued: u64, ld_stall: u64) -> ProfileRecord {
    let entry = |pc: usize, op: &str, issued: u64, mem_stall: u64| PcEntry {
        pc,
        op: op.to_string(),
        issued,
        warp_issues: issued,
        thread_instrs: issued * 32,
        stalls: [mem_stall, 0, 0, 0, 0],
        mem: None,
        coalesce: None,
        smem: None,
        branches: 0,
        divergent: 0,
    };
    let pcs = vec![
        entry(0, "ld.g r1, [r0+0]", ld_issued, ld_stall),
        entry(1, "exit", 4, 0),
    ];
    let unattributed = [1, 0, 0, 0, 0];
    let cpi = CpiRecord {
        buckets: [ld_issued + 4, ld_stall + 1, 0, 0, 0, 0, 0, 0, 2],
    };
    let rec = ProfileRecord {
        kernel: "toy".to_string(),
        arch: "vt".to_string(),
        cycles: cpi.total() / 2,
        thread_instrs: (ld_issued + 4) * 32,
        cpi,
        pcs,
        unattributed,
    };
    rec.check_conservation().expect("toy record conserves");
    rec
}

/// `vtdiff --pc` exits 0 on identical records, and `--assert-zero`
/// turns any per-PC delta into a finding (exit 1).
#[test]
fn vtdiff_pc_assert_zero_contract() {
    let old = fixture("old.hotspots.json", &toy_record(10, 3).to_json().pretty());
    let new = fixture("new.hotspots.json", &toy_record(14, 9).to_json().pretty());
    let old_path = old.to_str().unwrap();
    let new_path = new.to_str().unwrap();

    let out = run("vtdiff", &["--pc", old_path, old_path, "--assert-zero"]);
    assert_eq!(
        code(&out),
        0,
        "identical records: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = run("vtdiff", &["--pc", old_path, new_path]);
    assert_eq!(code(&out), 0, "reporting deltas alone is not a finding");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ld.g"), "{stdout}");

    let out = run("vtdiff", &["--pc", old_path, new_path, "--assert-zero"]);
    assert_eq!(code(&out), 1, "--assert-zero with deltas must exit 1");

    std::fs::remove_file(old).ok();
    std::fs::remove_file(new).ok();
}
