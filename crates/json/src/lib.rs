//! Minimal JSON emission for experiment results.
//!
//! The bench harness writes every figure/table record to `results/*.json`.
//! The workspace builds fully offline, so instead of `serde`/`serde_json`
//! this crate provides a tiny JSON value model, a [`ToJson`] conversion
//! trait, and an [`impl_to_json!`] macro that derives the trait for plain
//! record structs. Output is deterministic: object keys keep declaration
//! order and the pretty printer is stable.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer, emitted exactly.
    Int(i64),
    /// Unsigned integer, emitted exactly.
    UInt(u64),
    /// Floating point; non-finite values emit as `null`.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(String, Json)>) -> Json {
        Json::Object(fields)
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// body, matching typical pretty-printer output.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value. Implemented for primitives,
/// strings, slices/vectors, options and references; derive it for record
/// structs with [`impl_to_json!`].
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

macro_rules! impl_uint {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        })+
    };
}

macro_rules! impl_int {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        })+
    };
}

impl_uint!(u8, u16, u32, u64);
impl_int!(i8, i16, i32, i64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use vt_json::{impl_to_json, ToJson};
///
/// struct Row {
///     name: String,
///     cycles: u64,
/// }
/// impl_to_json!(Row { name, cycles });
///
/// let r = Row { name: "sgemm".into(), cycles: 10 };
/// assert_eq!(r.to_json().compact(), r#"{"name":"sgemm","cycles":10}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::Bool(true).compact(), "true");
        assert_eq!(Json::Int(-3).compact(), "-3");
        assert_eq!(Json::UInt(u64::MAX).compact(), u64::MAX.to_string());
        assert_eq!(Json::Float(1.5).compact(), "1.5");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = Json::Object(vec![
            ("xs".into(), Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("e".into(), Json::Array(vec![])),
        ]);
        assert_eq!(v.compact(), r#"{"xs":[1,2],"e":[]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::Array(vec![Json::Object(vec![("k".into(), Json::UInt(7))])]);
        assert_eq!(v.pretty(), "[\n  {\n    \"k\": 7\n  }\n]");
    }

    #[test]
    fn to_json_primitives() {
        assert_eq!(42u32.to_json().compact(), "42");
        assert_eq!((-1i32).to_json().compact(), "-1");
        assert_eq!("hi".to_json().compact(), "\"hi\"");
        assert_eq!(Some(3u8).to_json().compact(), "3");
        assert_eq!(None::<u8>.to_json().compact(), "null");
        assert_eq!(vec![1u32, 2].to_json().compact(), "[1,2]");
        assert_eq!(("a".to_string(), 0.5f64).to_json().compact(), "[\"a\",0.5]");
    }

    #[test]
    fn derive_macro_preserves_field_order() {
        struct R {
            b: u32,
            a: String,
        }
        impl_to_json!(R { b, a });
        let r = R {
            b: 9,
            a: "x".into(),
        };
        assert_eq!(r.to_json().compact(), r#"{"b":9,"a":"x"}"#);
    }
}
