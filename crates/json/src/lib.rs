//! Minimal JSON emission and parsing for experiment results.
//!
//! The bench harness writes every figure/table record to `results/*.json`,
//! and the execution-control layer round-trips simulator checkpoints
//! through the same value model. The workspace builds fully offline, so
//! instead of `serde`/`serde_json` this crate provides a tiny JSON value
//! model, a [`ToJson`] conversion trait, an [`impl_to_json!`] macro that
//! derives the trait for plain record structs, and a recursive-descent
//! [`Json::parse`]. Output is deterministic: object keys keep declaration
//! order and the pretty printer is stable; `parse(pretty()) == value` for
//! every value this crate can emit (non-finite floats emit as `null`).
#![forbid(unsafe_code)]

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer, emitted exactly.
    Int(i64),
    /// Unsigned integer, emitted exactly.
    UInt(u64),
    /// Floating point; non-finite values emit as `null`.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(String, Json)>) -> Json {
        Json::Object(fields)
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// body, matching typical pretty-printer output.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Parses a JSON document.
    ///
    /// Non-negative integers parse as [`Json::UInt`] (so `u64::MAX`
    /// round-trips), negative ones as [`Json::Int`], and anything with a
    /// fraction or exponent as [`Json::Float`]. Duplicate object keys are
    /// kept in document order.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a field of an object (first match wins). `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a `bool` if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "invalid surrogate pair at byte {}",
                                        self.pos
                                    ));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| format!("invalid codepoint {c:#x}"))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("control character in string at byte {}", self.pos));
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !float {
            // Try u64 first so u64::MAX round-trips, then i64 for
            // negatives; overflow of both falls through to f64.
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// Fetches `key` from an object or fails with a message naming it.
///
/// # Errors
///
/// Returns an error if `v` is not an object or lacks `key`.
pub fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

/// Fetches `key` as a `u64`.
///
/// # Errors
///
/// Returns an error if the field is missing or not a non-negative integer.
pub fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not a u64"))
}

/// Fetches `key` as an `f64`.
///
/// # Errors
///
/// Returns an error if the field is missing or not a number.
pub fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

/// Fetches `key` as a `bool`.
///
/// # Errors
///
/// Returns an error if the field is missing or not a boolean.
pub fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

/// Fetches `key` as a string slice.
///
/// # Errors
///
/// Returns an error if the field is missing or not a string.
pub fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

/// Fetches `key` as an array slice.
///
/// # Errors
///
/// Returns an error if the field is missing or not an array.
pub fn req_array<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

/// Fetches element `i` of a tuple-encoded array.
///
/// # Errors
///
/// Returns an error if the array is too short.
pub fn elem(a: &[Json], i: usize) -> Result<&Json, String> {
    a.get(i).ok_or_else(|| format!("missing element {i}"))
}

/// Fetches element `i` of a tuple-encoded array as a `u64`.
///
/// # Errors
///
/// Returns an error if the element is missing or not a non-negative
/// integer.
pub fn elem_u64(a: &[Json], i: usize) -> Result<u64, String> {
    elem(a, i)?
        .as_u64()
        .ok_or_else(|| format!("element {i} is not a u64"))
}

/// Fetches element `i` of a tuple-encoded array as a `bool`.
///
/// # Errors
///
/// Returns an error if the element is missing or not a boolean.
pub fn elem_bool(a: &[Json], i: usize) -> Result<bool, String> {
    elem(a, i)?
        .as_bool()
        .ok_or_else(|| format!("element {i} is not a bool"))
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value. Implemented for primitives,
/// strings, slices/vectors, options and references; derive it for record
/// structs with [`impl_to_json!`].
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

macro_rules! impl_uint {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        })+
    };
}

macro_rules! impl_int {
    ($($t:ty),+) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        })+
    };
}

impl_uint!(u8, u16, u32, u64);
impl_int!(i8, i16, i32, i64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use vt_json::{impl_to_json, ToJson};
///
/// struct Row {
///     name: String,
///     cycles: u64,
/// }
/// impl_to_json!(Row { name, cycles });
///
/// let r = Row { name: "sgemm".into(), cycles: 10 };
/// assert_eq!(r.to_json().compact(), r#"{"name":"sgemm","cycles":10}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::Bool(true).compact(), "true");
        assert_eq!(Json::Int(-3).compact(), "-3");
        assert_eq!(Json::UInt(u64::MAX).compact(), u64::MAX.to_string());
        assert_eq!(Json::Float(1.5).compact(), "1.5");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = Json::Object(vec![
            ("xs".into(), Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("e".into(), Json::Array(vec![])),
        ]);
        assert_eq!(v.compact(), r#"{"xs":[1,2],"e":[]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::Array(vec![Json::Object(vec![("k".into(), Json::UInt(7))])]);
        assert_eq!(v.pretty(), "[\n  {\n    \"k\": 7\n  }\n]");
    }

    #[test]
    fn to_json_primitives() {
        assert_eq!(42u32.to_json().compact(), "42");
        assert_eq!((-1i32).to_json().compact(), "-1");
        assert_eq!("hi".to_json().compact(), "\"hi\"");
        assert_eq!(Some(3u8).to_json().compact(), "3");
        assert_eq!(None::<u8>.to_json().compact(), "null");
        assert_eq!(vec![1u32, 2].to_json().compact(), "[1,2]");
        assert_eq!(("a".to_string(), 0.5f64).to_json().compact(), "[\"a\",0.5]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse(&i64::MIN.to_string()).unwrap(),
            Json::Int(i64::MIN)
        );
    }

    #[test]
    fn parse_strings_with_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0001é""#).unwrap(),
            Json::Str("a\"b\\c\nd\u{1}é".to_string())
        );
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        assert!(Json::parse(r#""\ud83d x""#).is_err(), "lone surrogate");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = Json::Object(vec![
            ("max".into(), Json::UInt(u64::MAX)),
            ("neg".into(), Json::Int(-7)),
            ("f".into(), Json::Float(0.125)),
            (
                "xs".into(),
                Json::Array(vec![Json::Null, Json::Bool(false), Json::Str("s\n".into())]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn accessors_and_req_helpers() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":true,"xs":[1],"f":0.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(req_u64(&v, "n").unwrap(), 3);
        assert_eq!(req_str(&v, "s").unwrap(), "x");
        assert!(req_bool(&v, "b").unwrap());
        assert_eq!(req_array(&v, "xs").unwrap().len(), 1);
        assert_eq!(req_f64(&v, "f").unwrap(), 0.5);
        assert_eq!(Json::UInt(9).as_i64(), Some(9));
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert!(req_u64(&v, "missing").unwrap_err().contains("missing"));
        assert!(req_str(&v, "n").unwrap_err().contains("not a string"));
    }

    #[test]
    fn derive_macro_preserves_field_order() {
        struct R {
            b: u32,
            a: String,
        }
        impl_to_json!(R { b, a });
        let r = R {
            b: 9,
            a: "x".into(),
        };
        assert_eq!(r.to_json().compact(), r#"{"b":9,"a":"x"}"#);
    }
}
